#!/usr/bin/env python3
"""Sharded scale-out: one logical set over N independent Setchain instances.

A single Setchain instance has a committed-throughput ceiling: with 2 ms
element validation and two blocks per second, one 3-server cluster sustains
roughly 1300 el/s before proof-bearing blocks queue behind the validation
backlog and commits starve.  This script drives the same oversubscribed
workload (2500 el/s for 4 s) against 1, 2, and 4 shards and shows:

1. the scale-out curve — each shard is an independent Setchain instance
   (a multi-tenant algorithm group over the shared ledger) taking a
   hash-partitioned slice of the element space, so committed throughput
   grows near-linearly until the offered load is cleared,
2. the cross-shard report (``RunResult.shards``): per-shard added/committed
   counts, the router's accepted/deferred/rejected admission counters, and
   the partition skew ratio (max/mean per-shard load; 1.0 is perfectly
   even),
3. the merged **logical view**: the union of the per-shard sets with epochs
   renumbered across shards, on which Properties 1-8 hold just as they do
   per shard.

Everything is seed-deterministic — rerunning reproduces the same partition,
the same skew, and the same commit counts.

Run with::

    python examples/shard_scaleout.py
"""

from __future__ import annotations

from repro import Scenario


def scale_config(shards: int):
    return (Scenario.hashchain().servers(3).byzantine(f=1).shards(shards)
            .rate(2_500).collector(50).setchain(element_validation_time=2e-3)
            .block_rate(2.0).inject_for(4).drain(8).backend("ideal")
            .label(f"scaleout-s{shards}").seed(7))


def main() -> None:
    print("committed throughput vs shard count (same 2500 el/s workload):")
    results = {}
    for shards in (1, 2, 4):
        result = scale_config(shards).run()
        results[shards] = result
        print(f"  {shards} shard(s): committed {result.committed:>6} "
              f"of {result.injected} injected "
              f"({result.committed_fraction:.1%})")

    baseline = max(results[1].committed, 1)
    print(f"  4-shard speedup over 1 shard: "
          f"{results[4].committed / baseline:.1f}x committed elements")

    print("\ncross-shard report for the 4-shard run:")
    shards = results[4].shards
    print(f"  router: {shards['router']}  skew={shards['skew_ratio']}")
    for index, entry in sorted(shards["per_shard"].items(), key=lambda kv: int(kv[0])):
        print(f"  shard {index}: servers={len(entry['servers'])} "
              f"added={entry['added']:>5} committed={entry['committed']:>5} "
              f"avg thpt 50s={entry['avg_throughput_50s']}")

    print("\nmerged logical view (4 shards as one Setchain):")
    with scale_config(4).session() as session:
        session.run_to_completion()
        view = session.logical_view()
        print(f"  |Set|={len(view.the_set)} over {view.epoch} logical epochs")
        print(f"  per-shard Properties 1-8 violations: "
              f"{session.check_properties()}")
        print(f"  merged-view Properties 1-8 violations: "
              f"{session.check_logical_properties()}")


if __name__ == "__main__":
    main()
