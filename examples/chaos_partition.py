#!/usr/bin/env python3
"""Chaos engineering on a Setchain cluster: partition, crash, recover, measure.

A Jepsen-style nemesis timeline declared with the :mod:`repro.faults` DSL:

1. at t=3 s a random minority of servers is partitioned away (heals at t=6 s),
2. at t=8 s one named server crash-faults, losing its in-memory collector,
3. at t=12 s it recovers: the co-located ledger node replays the missed
   blocks and the server pulls unknown batch contents from its peers through
   the Hashchain ``Request_batch`` hash-reversal path,
4. the resilience report quantifies the damage: per-window availability,
   commit latency during vs outside the fault windows, and the recovery time
   to the first post-heal commit.

Everything is seed-deterministic — rerunning this script reproduces the same
chaos, the same drops, and the same report.

Run with::

    python examples/chaos_partition.py
"""

from __future__ import annotations

from repro import Scenario


def main() -> None:
    scenario = (Scenario.hashchain()
                .servers(4)
                .rate(300)
                .collector(25)
                .inject_for(15)
                .drain(60)
                .backend("ideal")
                .partition(3.0, until=6.0, count=1, role="servers")
                .crash(8.0, "server-3", until=12.0)
                .label("chaos-partition"))

    with scenario.session() as session:
        session.run_to_completion()
        result = session.result()
        deployment = session.deployment
    report = result.faults
    assert report is not None

    print(f"Scenario: {result.label}")
    print("  chaos timeline:")
    for event in report["events"]:
        until = f" until t={event['until']:g}s" if "until" in event else ""
        targets = ", ".join(event["targets"]) or "-"
        print(f"    t={event['at']:>5.1f}s  {event['kind']:<10} {targets}{until}")

    print(f"  injected / committed : {result.injected} / {result.committed} "
          f"({result.committed_fraction:.1%})")
    print(f"  messages dropped     : {report['messages_dropped']}")
    print(f"  adds refused (down)  : {report['rejected_while_crashed']}")

    print("  availability by window:")
    for window in report["availability"]["windows"]:
        start = window["start"]
        width = report["availability"]["window_s"]
        bar = "#" * round(40 * window["availability"])
        print(f"    [{start:>4.0f}s-{start + width:>3.0f}s) "
              f"{window['availability']:>6.1%}  {bar}")

    latency = report["commit_latency_s"]
    if latency["during_faults"] is not None and latency["fault_free"] is not None:
        print(f"  commit latency       : {latency['during_faults']:.2f} s during "
              f"faults vs {latency['fault_free']:.2f} s fault-free")
    for entry in report["recovery"]:
        if entry["recovery_s"] is not None:
            print(f"  recovery ({entry['kind']:<9}) : first commit "
                  f"{entry['recovery_s']:.2f} s after heal")

    # The guarantees story: the never-crashed servers keep Properties 1-8
    # (the crashed server is a faulty process in the paper's model — it may
    # hold elements it lost in its wiped collector forever).
    from repro.core.properties import check_all

    views = {server.name: server.get() for server in deployment.servers
             if server.name != "server-3"}
    violations = check_all(views, quorum=deployment.config.setchain.quorum,
                           all_added=deployment.injected_elements)
    print(f"  correct-server check : {'OK' if not violations else violations[:3]}")


if __name__ == "__main__":
    main()
