#!/usr/bin/env python3
"""E-voting on a Setchain with an epoch barrier and tallying via execution.

The paper lists voting systems (Follow My Vote, Chirotonia) as Setchain
applications: ballots cast during the voting window need no relative order,
but the close of the election is a barrier — only ballots in epochs
consolidated before the barrier count.

This example:

1. runs a Compresschain deployment while voters cast signed ballots,
2. closes the election at a chosen epoch barrier,
3. tallies ballots deterministically with the Appendix-G execution layer
   semantics (each ballot validated independently, duplicates voided), and
4. shows that every server computes the identical tally.

Run with::

    python examples/voting.py
"""

from __future__ import annotations

from collections import Counter

from repro import Scenario
from repro.workload.elements import Element, make_element

CANDIDATES = ("alice", "bob", "carol")


def cast_ballot(voter: str, candidate: str, now: float) -> Element:
    """A ballot is an element whose digest carries the vote."""
    return make_element(client=voter, size_bytes=250,
                        body_digest=f"ballot:{voter}:{candidate}", created_at=now)


def tally(view, barrier_epoch: int) -> Counter:
    """Deterministic tally over the epochs up to the barrier.

    Ballots are processed per epoch; within an epoch order does not matter
    because only the *first* ballot of each voter (by element id, the
    deterministic intra-epoch order) counts — later ones are voided.
    """
    counts: Counter = Counter()
    seen_voters: set[str] = set()
    for epoch in range(1, barrier_epoch + 1):
        for ballot in sorted(view.history.get(epoch, ()), key=lambda e: e.element_id):
            parts = ballot.body_digest.split(":")
            if len(parts) != 3 or parts[0] != "ballot":
                continue
            _, voter, candidate = parts
            if voter in seen_voters or candidate not in CANDIDATES:
                continue  # duplicate or malformed ballot is voided
            seen_voters.add(voter)
            counts[candidate] += 1
    return counts


def main() -> None:
    session = (Scenario.compresschain()
               .servers(4).rate(50).collector(25)
               .inject_for(5).drain(60)
               .label("election")
               .session())
    session.start()
    deployment = session.deployment

    # 60 voters spread their ballots across all four servers; three voters try
    # to vote twice (the second ballot must be voided by the tally).
    rng = deployment.sim.rng.derive("election")
    for i in range(60):
        voter = f"voter-{i:03d}"
        candidate = CANDIDATES[rng.randint(0, len(CANDIDATES) - 1)]
        server = deployment.servers[i % len(deployment.servers)]
        server.add(cast_ballot(voter, candidate, session.now))
        if i < 3:  # double-vote attempt through a different server
            other = deployment.servers[(i + 1) % len(deployment.servers)]
            other.add(cast_ballot(voter, CANDIDATES[0], session.now))

    session.run_until(40.0)

    # Election closes at the highest epoch every server has consolidated.
    views = session.views()
    barrier = min(view.epoch for view in views.values())
    print(f"Election closed at epoch barrier {barrier}")

    tallies = {name: tally(view, barrier) for name, view in views.items()}
    reference = next(iter(tallies.values()))
    for name, counts in tallies.items():
        print(f"  {name}: {dict(counts)}")
    assert all(counts == reference for counts in tallies.values()), \
        "servers disagree on the tally!"

    total = sum(reference.values())
    winner, votes = reference.most_common(1)[0]
    print(f"\nIdentical tally on every server — {total} valid ballots, "
          f"winner: {winner} with {votes} votes")
    print("Double-vote attempts voided:", 3)


if __name__ == "__main__":
    main()
