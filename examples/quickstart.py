#!/usr/bin/env python3
"""Quickstart: run a small Hashchain deployment and inspect the results.

This is the 60-second tour of the library, using the public ``repro.api``:

1. describe a scenario with the typed :class:`Scenario` builder,
2. run it interactively through a :class:`Session` on the simulated
   CometBFT-backed cluster,
3. look at throughput, efficiency, commit latency, and the Setchain
   correctness properties — and keep the run as a JSON-serialisable
   :class:`RunResult`.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Scenario


def main() -> None:
    # A 4-server Hashchain cluster ingesting 200 elements/s for 10 seconds.
    scenario = (Scenario.hashchain()
                .servers(4)
                .rate(200)
                .collector(25)
                .inject_for(10)
                .drain(60)
                .label("quickstart"))

    with scenario.session() as session:
        print(f"Running scenario: {session.config.label}")
        session.run()
        result = session.result()

        deployment = session.deployment
        print(f"  elements injected : {session.injected_count}")
        print(f"  elements committed: {session.committed_count}")
        print(f"  epochs created    : {max(s.epoch for s in deployment.servers)}")
        print(f"  avg throughput    : {result.avg_throughput_50s:.1f} el/s (first 50 s)")
        print(f"  analytical bound  : {result.analytical_throughput:.0f} el/s")
        print(f"  efficiency @50s   : {result.efficiency['50s']:.2f}")
        print(f"  efficiency @100s  : {result.efficiency['100s']:.2f}")

        latencies = deployment.metrics.commit_latencies()
        if latencies:
            median = latencies[len(latencies) // 2]
            p90 = latencies[int(0.9 * (len(latencies) - 1))]
            print(f"  commit latency    : median {median:.2f} s, p90 {p90:.2f} s")

        violations = session.check_properties()
        print(f"  property check    : {'OK' if not violations else violations}")

        # Peek at one server's Setchain view (the paper's get() tuple).
        view = session.view(0)
        print(f"  server-0 view     : |the_set|={len(view.the_set)}, "
              f"epoch={view.epoch}, |proofs|={len(view.proofs)}")

        # The result is a plain-data artifact: result.save("quickstart.json")
        # persists it, RunResult.load() round-trips it exactly.


if __name__ == "__main__":
    main()
