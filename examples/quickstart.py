#!/usr/bin/env python3
"""Quickstart: run a small Hashchain deployment and inspect the results.

This is the 60-second tour of the library:

1. describe a scenario (algorithm + cluster + workload),
2. run it on the simulated CometBFT-backed cluster,
3. look at throughput, efficiency, commit latency, and the Setchain
   correctness properties.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import base_scenario, run_scenario


def main() -> None:
    # A 4-server Hashchain cluster ingesting 200 elements/s for 10 seconds.
    config = base_scenario(
        "hashchain",
        n_servers=4,
        sending_rate=200,
        collector_limit=25,
        injection_duration=10,
        drain_duration=60,
        label="quickstart",
    )
    print(f"Running scenario: {config.label}")
    result = run_scenario(config, scale=1.0)

    deployment = result.deployment
    print(f"  elements injected : {len(deployment.injected_elements)}")
    print(f"  elements committed: {result.metrics.committed_count}")
    print(f"  epochs created    : {max(s.epoch for s in deployment.servers)}")
    print(f"  avg throughput    : {result.avg_throughput_50s:.1f} el/s (first 50 s)")
    print(f"  analytical bound  : {result.analytical_throughput:.0f} el/s")
    print(f"  efficiency @50s   : {result.efficiency.at_50:.2f}")
    print(f"  efficiency @100s  : {result.efficiency.at_100:.2f}")

    latencies = result.metrics.commit_latencies()
    if latencies:
        median = latencies[len(latencies) // 2]
        p90 = latencies[int(0.9 * (len(latencies) - 1))]
        print(f"  commit latency    : median {median:.2f} s, p90 {p90:.2f} s")

    violations = deployment.check_properties()
    print(f"  property check    : {'OK' if not violations else violations}")

    # Peek at one server's Setchain view (the paper's get() tuple).
    view = deployment.servers[0].get()
    print(f"  server-0 view     : |the_set|={len(view.the_set)}, "
          f"epoch={view.epoch}, |proofs|={len(view.proofs)}")


if __name__ == "__main__":
    main()
