#!/usr/bin/env python3
"""Digital credential registry on a Setchain (the paper's motivating use case).

The paper motivates Setchain with digital registries such as the MIT digital
diplomas: credentials must be durably recorded and individually verifiable,
but credentials issued in the same period need no order between them — exactly
the "unordered within an epoch" relaxation Setchain exploits.

This example:

1. builds a 4-server Hashchain deployment,
2. has a university registrar issue diplomas through a *single* server,
3. lets a graduate (a light client) verify their diploma against a *different*
   single server using the f+1 epoch-proof rule — without trusting either one.

Run with::

    python examples/digital_registry.py
"""

from __future__ import annotations

from repro import Scenario
from repro.core.client import SetchainClient
from repro.workload.elements import make_element


def main() -> None:
    session = (Scenario.hashchain()
               .servers(4)
               .rate(50)                  # background registry traffic
               .collector(20)
               .inject_for(10)
               .drain(90)
               .label("digital-registry")
               .session())
    session.start()
    deployment = session.deployment
    quorum = session.config.setchain.quorum

    graduates = [f"grad-{i:03d}" for i in range(12)]

    # Issue one diploma per graduate through server-0 only.  Session.inject
    # delivers the element and records it as client-added (so the
    # deployment-wide Add-before-Get property checker knows a client created
    # it), raising if the server were to reject it.
    diplomas = {}
    for graduate in graduates:
        credential = make_element(client="registrar", size_bytes=600,
                                  body_digest=f"diploma:{graduate}:MSc-2026",
                                  created_at=session.now)
        session.inject(element=credential, server=0)
        diplomas[graduate] = credential
    print(f"Issued {len(diplomas)} diplomas through server-0 "
          f"(quorum needed for trust: {quorum} epoch-proofs)")

    # Let the system run: batches flush, hashes consolidate, proofs accumulate.
    session.run_until(60.0)

    # Each graduate verifies through a different server than the registrar used.
    verified = 0
    for index, (graduate, credential) in enumerate(diplomas.items()):
        verifier = deployment.servers[1 + index % 3]   # never server-0
        holder = SetchainClient(graduate, deployment.scheme, quorum=quorum)
        check = holder.check_commit(holder.get(verifier), credential)
        status = "COMMITTED" if check.committed else "pending"
        if check.committed:
            verified += 1
        print(f"  {graduate}: epoch={check.epoch}, "
              f"valid proofs={check.valid_proofs}/{quorum} -> {status} "
              f"(checked via {verifier.name})")

    print(f"\n{verified}/{len(diplomas)} diplomas verified through single-server reads.")
    violations = session.check_properties(include_liveness=False)
    print(f"Safety properties: {'OK' if not violations else violations}")


if __name__ == "__main__":
    main()
