#!/usr/bin/env python3
"""Elastic scaling: grow a live Setchain cluster under load, then shrink it.

The dynamic-membership drill from the ``member/service/elastic`` scenario,
spelled out:

1. the cluster starts at n=4 (f=1, so epoch commits need 2 correct signers),
2. at t=2 s and t=4 s two fresh servers join *while injection is live*: each
   bootstraps by replaying the committed chain (state transfer), primes its
   batch store from a live peer, and only counts toward quorums once caught
   up — after which the membership epoch flips to n=5 then n=6 (f=2,
   quorum 3), activating at a block boundary,
3. at t=8 s one original server drains out: it stops accepting elements,
   flushes its collector, hands its batch store off to the survivors, and
   retires — a clean departure, not a crash,
4. the membership timeline in the result quantifies the elasticity:
   per-epoch f/quorum, each joiner's catch-up time and join-to-first-commit
   time, and the drained server's handoff.

Everything is seed-deterministic — rerunning this script reproduces the same
joins, the same catch-up, and the same timeline.

Run with::

    python examples/elastic_scale.py
"""

from __future__ import annotations

from repro import run


def main() -> None:
    result = run("member/service/elastic")
    block = result.membership
    assert block is not None

    print(f"Scenario: {result.label}")
    print("  membership epochs:")
    for epoch in block["epochs"]:
        members = len(epoch["members"])
        change = ("initial set" if epoch["reason"] == "initial"
                  else f"{epoch['reason']} {epoch['node']}")
        print(f"    epoch {epoch['index']}  t={epoch['at']:>5.2f}s  "
              f"height>={epoch['effective_height']:<3} n={members} "
              f"f={epoch['f']} quorum={epoch['quorum']}  ({change})")

    print("  joins (state transfer, then quorum entry):")
    for entry in block["joins"]:
        print(f"    {entry['node']}: caught up in {entry['catch_up_s']:.2f} s, "
              f"first commit {entry['join_to_first_commit_s']:.2f} s "
              f"after joining")

    for entry in block["leaves"]:
        mode = "drained" if entry["drained"] else "immediate"
        print(f"  leave: {entry['node']} retired at t={entry['retired_at']:.2f} s "
              f"({mode}, {entry['drained_rejects']} adds refused while "
              f"draining)")

    current = block["current"]
    print(f"  final membership     : n={current['size']} "
          f"(quorum {current['quorum']})")
    print(f"  injected / committed : {result.injected} / {result.committed} "
          f"({result.committed_fraction:.1%})")
    assert result.committed_fraction >= 0.90


if __name__ == "__main__":
    main()
