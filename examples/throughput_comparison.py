#!/usr/bin/env python3
"""Miniature Figure-1-style comparison of the three algorithms.

Runs Vanilla, Compresschain, and Hashchain on the same (scaled-down) workload
and prints the rolling-throughput series plus the analytical bounds from the
paper's Appendix D — the same comparison the full benchmark harness performs
at larger scale for Figure 1 and Table 2.  Each run comes back as a
serialisable :class:`RunResult`, so everything printed here could equally be
re-rendered later from saved JSON artifacts (``python -m repro report``).

Run with::

    python examples/throughput_comparison.py
"""

from __future__ import annotations

from repro import Scenario, run
from repro.analysis.report import render_series, render_table

#: Down-scale factor relative to the paper's 5,000 el/s scenario (see
#: EXPERIMENTS.md for why ratios are preserved under this scaling).
SCALE = 25.0


def main() -> None:
    rows = []
    series = {}
    for algorithm in ("vanilla", "compresschain", "hashchain"):
        scenario = (Scenario(algorithm)
                    .rate(5_000).collector(100).servers(10).drain(70)
                    .label(f"mini-fig1 {algorithm}"))
        result = run(scenario, scale=SCALE)
        series[algorithm] = result.throughput
        rows.append([
            algorithm,
            f"{result.config['workload']['sending_rate']:.0f}",
            f"{result.avg_throughput_50s:.1f}",
            f"{result.analytical_throughput:.0f}",
            f"{result.efficiency['50s']:.2f}",
            f"{result.efficiency['100s']:.2f}",
        ])

    print(render_table(
        ["algorithm", "offered el/s", "measured el/s (50s)", "analytical el/s",
         "efficiency@50s", "efficiency@100s"],
        rows,
        title=f"Throughput comparison (paper scenario scaled 1/{SCALE:g})"))
    print()
    print(render_series(series, sample_every=10.0,
                        title="Rolling throughput (el/s, 9 s window)"))
    print("\nExpected shape (paper Fig. 1 left): Vanilla saturates far below the "
          "offered rate, Compresschain improves on it, Hashchain keeps up.")


if __name__ == "__main__":
    main()
