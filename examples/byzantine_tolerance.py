#!/usr/bin/env python3
"""Byzantine tolerance demo: a withholding Hashchain server cannot break safety.

The most interesting attack against Hashchain is *batch withholding*: a
Byzantine server appends a signed hash-batch to the ledger but refuses to
serve the batch contents, hoping either to stall the system or to get an
unverifiable epoch accepted.  The f+1-signer consolidation rule neutralises
it: a hash only becomes an epoch after f+1 distinct servers signed it, so at
least one signer is correct and can serve the contents.

This example builds a 4-server cluster where one server withholds, and shows

* elements injected through correct servers still commit,
* the withholder's own (unrecoverable) batches never consolidate,
* the correct servers' views satisfy all safety properties.

Run with::

    python examples/byzantine_tolerance.py
"""

from __future__ import annotations

from repro.compressor.model import ModelCompressor  # noqa: F401  (kept for symmetry with docs)
from repro.config import SetchainConfig, LedgerConfig
from repro.core.byzantine import WithholdingHashchainServer
from repro.core.hashchain import HashchainServer
from repro.core.properties import check_consistent_gets, check_unique_epoch
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import SimulatedScheme
from repro.ledger.ideal import IdealLedger
from repro.net.latency import lan_profile
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.workload.elements import make_element


def main() -> None:
    sim = Simulator(seed=7)
    network = Network(sim, latency=lan_profile())
    scheme = SimulatedScheme(PublicKeyInfrastructure())
    config = SetchainConfig(n_servers=4, collector_limit=10, collector_timeout=0.5,
                            batch_request_timeout=0.5)
    ledger = IdealLedger(sim, LedgerConfig(block_size_bytes=200_000, block_rate=2.0))
    ledger.start()

    servers = []
    for index in range(config.n_servers):
        name = f"server-{index}"
        keypair = scheme.generate_keypair(name)
        cls = WithholdingHashchainServer if index == 3 else HashchainServer
        server = cls(name, sim, config, scheme, keypair)
        network.register(server)
        server.connect_ledger(ledger.handle_for(name))
        servers.append(server)
    correct, withholder = servers[:3], servers[3]
    print(f"Cluster: {len(correct)} correct Hashchain servers + 1 withholding server "
          f"(f={config.max_faulty}, quorum={config.quorum})")

    # Honest traffic through the correct servers.
    honest = []
    for i in range(30):
        element = make_element(f"client-{i % 3}", 300, created_at=sim.now)
        correct[i % 3].add(element)
        honest.append(element)
    # Traffic injected only through the withholder: its hash-batches will be
    # unrecoverable, so these elements must never consolidate at correct servers.
    orphaned = []
    for i in range(10):
        element = make_element("client-victim", 300, created_at=sim.now)
        withholder.add(element)
        orphaned.append(element)

    sim.run_until(60.0)

    views = {s.name: s.get() for s in correct}
    committed = sum(1 for e in honest
                    if all(e in v.elements_in_epochs() for v in views.values()))
    leaked = sum(1 for e in orphaned
                 if any(e in v.elements_in_epochs() for v in views.values()))
    failed_reversals = sum(s.batch_requests_failed for s in correct)

    print(f"  honest elements epoched on every correct server : {committed}/{len(honest)}")
    print(f"  withheld elements epoched anywhere              : {leaked}/{len(orphaned)}")
    print(f"  hash-reversal requests that timed out           : {failed_reversals}")

    violations = check_consistent_gets(views)
    for name, view in views.items():
        violations += check_unique_epoch(view, name)
    print(f"  safety properties on correct servers            : "
          f"{'OK' if not violations else violations}")
    print("\nThe withholder delayed nothing it was not part of, and could not get "
          "unverifiable content accepted as an epoch.")


if __name__ == "__main__":
    main()
