#!/usr/bin/env python3
"""Byzantine nemeses as schedule events: servers turn Byzantine and back.

The mirror of ``chaos_partition.py`` for adversarial faults.  A deterministic
timeline declared with the :mod:`repro.faults` DSL:

1. at t=3 s one named server adopts the ``withhold`` behaviour: it keeps
   appending signed hash-batches but refuses to serve their contents — the
   attack the f+1 consolidation rule is designed to neutralise,
2. at t=10 s it becomes correct again, answering its buffered
   ``Request_batch`` messages so consolidation of the withheld hashes
   resumes,
3. at t=12 s a *different* server crash-faults and recovers at t=15 s —
   crash and Byzantine nemeses composing in one schedule,
4. the resilience report attributes the damage: which servers turned, how
   many requests they withheld, and the usual availability/recovery metrics.

Build-time validation enforces the f-budget: a schedule whose Byzantine plus
crashed servers could reach the quorum at any instant is rejected before a
single event runs.

Everything is seed-deterministic — rerunning this script reproduces the same
chaos, the same withheld requests, and the same report.

Run with::

    python examples/chaos_byzantine.py
"""

from __future__ import annotations

from repro import Scenario


def main() -> None:
    scenario = (Scenario.hashchain()
                .servers(4)
                .rate(300)
                .collector(25)
                .inject_for(15)
                .drain(60)
                .backend("ideal")
                .become_byzantine(3.0, "server-3", behaviour="withhold",
                                  until=10.0)
                .crash(12.0, "server-2", until=15.0)
                .label("chaos-byzantine"))

    with scenario.session() as session:
        session.run_to_completion()
        result = session.result()
        deployment = session.deployment
    report = result.faults
    assert report is not None

    print(f"Scenario: {result.label}")
    print("  chaos timeline:")
    for event in report["events"]:
        until = f" until t={event['until']:g}s" if "until" in event else ""
        targets = ", ".join(event["targets"]) or "-"
        note = f"  [{event['note']}]" if "note" in event else ""
        print(f"    t={event['at']:>5.1f}s  {event['kind']:<16} "
              f"{targets}{until}{note}")

    byzantine = report["byzantine"]
    print(f"  servers turned       : {', '.join(byzantine['servers'])}")
    for counter, value in byzantine["counters"].items():
        print(f"  {counter.replace('_', ' '):<21}: {value}")
    print(f"  injected / committed : {result.injected} / {result.committed} "
          f"({result.committed_fraction:.1%})")
    print(f"  adds refused (down)  : {report['rejected_while_crashed']}")

    # The guarantees story: Properties 1-8 hold at every never-crashed,
    # never-Byzantine server (the withholder and the crashed server are
    # faulty processes in the paper's model).  Because the withholder served
    # its buffered replies on reversion, even its own hashes consolidated —
    # every server converged on the same epoch sequence.
    from repro.core.properties import check_all

    views = {server.name: server.get() for server in deployment.servers
             if server.name not in ("server-2", "server-3")}
    violations = check_all(views, quorum=deployment.config.setchain.quorum,
                           all_added=deployment.injected_elements)
    print(f"  correct-server check : {'OK' if not violations else violations[:3]}")
    epochs = {server.get().epoch for server in deployment.servers}
    print(f"  epoch convergence    : "
          f"{'OK' if len(epochs) == 1 else sorted(epochs)} "
          f"(all servers at epoch {epochs.pop()})")


if __name__ == "__main__":
    main()
