#!/usr/bin/env python3
"""Observability tour: trace an element's lifecycle and read the telemetry.

Every element a Setchain deployment commits passes through the same
pipeline::

    injected -> collector_queued -> flushed -> signed -> in_ledger
             -> epoch_assigned -> committed

This example enables the deterministic tracer on a small chaos scenario
(one mid-run crash, so the fault annotation shows up on the timeline),
then:

1. reads the per-phase latency percentiles from ``RunResult.telemetry``,
2. exports the timeline as a Chrome ``trace_event`` file — open it at
   https://ui.perfetto.dev (one named track per server, plus the
   ``collector`` and ``ledger`` tracks),
3. shows the always-on hot-seam counters (signature verify-cache,
   hashchain scan-cache, event queue).

Tracing draws from its own seeded RNG stream, never the simulation's, so a
traced run commits exactly what the untraced run commits — enabling it
changes the artifact only by adding the ``telemetry`` section.

Run with::

    python examples/trace_lifecycle.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Scenario
from repro.obs.export import validate_trace_file, write_trace

TRACE_PATH = Path("results/lifecycle.trace.json")


def main() -> None:
    scenario = (Scenario.hashchain()
                .servers(4)
                .rate(200)
                .collector(25)
                .inject_for(5)
                .drain(60)
                .crash(2.0, "server-1", until=3.5)
                .label("trace-lifecycle")
                .trace(1.0))          # sample every element

    with scenario.session() as session:
        session.run()
        result = session.result()
        tracer = session.deployment.tracer

        print(f"scenario          : {result.label}")
        print(f"committed         : {result.committed}/{result.injected}")

        telemetry = result.telemetry
        print(f"sampled elements  : {telemetry['sampled_elements']}")
        print("phase latencies since injection (seconds):")
        for phase, stats in telemetry["phases"].items():
            print(f"  {phase:16s} p50={stats['p50']:.3f}  "
                  f"p95={stats['p95']:.3f}  p99={stats['p99']:.3f}  "
                  f"(n={stats['count']})")

        counters = telemetry["counters"]
        print("hot-seam counters :")
        print(f"  verify cache    : {counters['verify_cache_hits']} hits / "
              f"{counters['verify_cache_misses']} misses")
        print(f"  scan cache hits : {counters['scan_cache_hits']}")
        print(f"  events executed : {counters['events_executed']}")

        write_trace(tracer, TRACE_PATH, fmt="chrome", label=result.label)
        stats = validate_trace_file(TRACE_PATH)
        print(f"trace file        : {TRACE_PATH} "
              f"({stats['events']} events on {len(stats['tracks'])} tracks)")
        print(f"tracks            : {', '.join(stats['tracks'])}")
        print("open it at https://ui.perfetto.dev to see the timeline")


if __name__ == "__main__":
    main()
