#!/usr/bin/env python3
"""Service-mode backpressure under sustained overload.

A :class:`repro.service.ServiceRuntime` runs a small hashchain cluster as a
long-lived service: producers stream elements into a *bounded* ingress queue,
and each tick drains the queue into the live servers while the simulation
advances.  Here the producers offer far more load than the deployment can
absorb, so the three-stage backpressure verdicts become visible:

* ``accepted``  — enqueued with headroom,
* ``deferred``  — enqueued past the queue watermark (slow down!),
* ``rejected``  — queue full, submission dropped at the door.

Once the producers stop, the service works the queue down and the committed
fraction recovers — overload degrades admission, never safety: every element
the service accepted is eventually committed, and the Setchain Properties
still hold.

Run with::

    python examples/service_overload.py
"""

from __future__ import annotations

from repro import Scenario
from repro.service import ServiceRuntime


def main() -> None:
    scenario = (Scenario.hashchain()
                .servers(4)
                .rate(100)            # deployment sizing; ingest is streamed
                .collector(25)
                .inject_for(10)
                .drain(60)
                .backend("ideal")
                .label("service-overload"))

    runtime = ServiceRuntime(scenario, seed=11, queue_limit=2_000,
                             drain_per_tick=60)
    print("offered load: 1000 el/s against 600 el/s of drain capacity")
    print("  t(s)  queue  accepted  deferred  rejected  committed")
    for second in range(1, 11):
        runtime.submit_many(1_000, client=f"producer-{second % 2}")
        runtime.run_for(1.0)
        snap = runtime.metrics_snapshot()
        ingress = snap["ingress"]
        print(f"  {snap['now']:4.0f}  {ingress['queue_depth']:5d}  "
              f"{ingress['accepted']:8d}  {ingress['deferred']:8d}  "
              f"{ingress['rejected']:8d}  {snap['committed']:9d}")

    print("producers stopped; draining the ingress queue...")
    while runtime.queue_depth > 0:
        runtime.run_for(1.0)
    runtime.run_for(10.0)  # let the tail of in-flight batches commit

    snap = runtime.metrics_snapshot()
    ingress = snap["ingress"]
    admitted = ingress["accepted"] + ingress["deferred"]
    print(f"admitted {admitted} of {admitted + ingress['rejected']} offered "
          f"({ingress['rejected']} rejected by backpressure)")
    print(f"committed {snap['committed']}/{snap['injected']} admitted elements "
          f"({snap['committed_fraction']:.1%})")
    violations = runtime.session.check_properties()
    print(f"property check    : {'OK' if not violations else violations}")
    runtime.stop()


if __name__ == "__main__":
    main()
