"""Ablation — compression codec choice for Compresschain (DESIGN.md §5).

Compares the paper-calibrated ratio-model codec against the real zlib codec on
Arbitrum-statistics batches: the model reproduces the paper's ratios by
construction, and zlib lands in the same regime (a few x), which is what makes
Compresschain's throughput sit between Vanilla's and Hashchain's.
"""

import pytest

from conftest import run_once
from repro.compressor.model import ModelCompressor
from repro.compressor.zlib_compressor import ZlibCompressor
from repro.config import PAPER_COMPRESSION_RATIO
from repro.sim.rng import DeterministicRNG
from repro.workload.generator import ArbitrumLikeGenerator


def compress_batches(codec, batch_size, batches=20):
    generator = ArbitrumLikeGenerator(DeterministicRNG(11))
    ratios = []
    compressed_sizes = []
    for _ in range(batches):
        batch = generator.batch("client", batch_size)
        original = sum(e.size_bytes for e in batch)
        result = codec.compress(batch, original)
        ratios.append(result.ratio)
        compressed_sizes.append(result.compressed_size)
    return (sum(ratios) / len(ratios), sum(compressed_sizes) / len(compressed_sizes))


@pytest.mark.parametrize("batch_size", [100, 500])
def test_codec_ratios(benchmark, batch_size):
    model_ratio, model_size = compress_batches(ModelCompressor(), batch_size)
    zlib_ratio, zlib_size = run_once(benchmark, compress_batches, ZlibCompressor(),
                                     batch_size)
    paper = PAPER_COMPRESSION_RATIO[batch_size]
    print(f"\nAblation — codecs at collector {batch_size}: "
          f"model ratio {model_ratio:.2f} ({model_size:.0f} B), "
          f"zlib ratio {zlib_ratio:.2f} ({zlib_size:.0f} B), paper {paper}")
    # The model codec is pinned to the paper's ratio.
    assert model_ratio == pytest.approx(paper, rel=0.02)
    # The real codec compresses by at least ~2x — same regime the paper reports
    # (2.5-3.5x), so conclusions drawn with either codec agree qualitatively.
    assert zlib_ratio > 2.0
    # Paper: compressed batch ~16 kB at c=100 and ~66 kB at c=500.
    if batch_size == 100:
        assert 10_000 < model_size < 20_000
    else:
        assert 50_000 < model_size < 80_000
