"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Simulation-
backed benchmarks run each scenario exactly once (``benchmark.pedantic`` with
one round) — the quantity of interest is the simulated-system behaviour, not
the wall-clock of the harness itself — and print the regenerated rows/series
so ``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's numbers.
"""

from __future__ import annotations

import pytest

#: Default down-scale factor for simulation-backed benchmarks (see EXPERIMENTS.md).
BENCH_SCALE = 25.0
#: Heavier scenarios (Fig. 2 left saturation runs) use a larger scale.
BENCH_SCALE_HEAVY = 100.0


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture
def bench_scale_heavy() -> float:
    return BENCH_SCALE_HEAVY
