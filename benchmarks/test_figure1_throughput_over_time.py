"""Fig. 1 — throughput over time for the three evaluation scenarios.

Paper shape to reproduce (at the documented scale factor):

* left  (5,000 el/s, c=100):  Vanilla and Compresschain saturate far below the
  offered rate and keep committing long after injection stops; Hashchain keeps
  up and finishes shortly after the 50 s injection window.
* center (10,000 el/s, c=100): both Compresschain and Hashchain are stressed,
  Compresschain much more so.
* right (10,000 el/s, c=500): the larger collector relieves Hashchain but
  helps Compresschain far less.
"""

import pytest

from conftest import BENCH_SCALE, run_once
from repro.experiments import figures


@pytest.fixture(scope="module")
def figure1_data():
    return figures.figure1(scale=BENCH_SCALE)


def test_figure1_panels(benchmark, figure1_data):
    data = run_once(benchmark, lambda: figure1_data)
    print(f"\nFig. 1 — rolling throughput (scale 1/{BENCH_SCALE:g})")
    for panel, curves in data.items():
        print(f"  panel {panel}:")
        for curve in curves:
            peak = curve.series.peak()
            print(f"    {curve.label:14s} offered {curve.sending_rate:8.1f} el/s  "
                  f"peak {peak:8.1f} el/s  analytical {curve.analytical:8.1f} el/s")
    assert set(data) == {"left", "center", "right"}


def test_figure1_left_orderings(figure1_data):
    curves = {c.label: c for c in figure1_data["left"]}
    offered = curves["hashchain"].sending_rate
    # Hashchain keeps up with the offered rate; Vanilla and Compresschain do not.
    assert curves["hashchain"].series.peak() >= 0.5 * offered
    assert curves["compresschain"].series.peak() < 0.5 * offered
    assert curves["vanilla"].series.peak() < curves["compresschain"].series.peak() * 2
    # Ordering of sustained throughput matches the paper.
    assert (curves["hashchain"].series.peak() > curves["compresschain"].series.peak()
            > curves["vanilla"].series.peak() * 0.9)


def test_figure1_center_both_stressed(figure1_data):
    curves = {c.label: c for c in figure1_data["center"]}
    offered = curves["hashchain"].sending_rate
    assert curves["hashchain"].series.peak() < offered          # stressed
    assert curves["compresschain"].series.peak() < curves["hashchain"].series.peak()


def test_figure1_right_collector_500_helps_hashchain_more(figure1_data):
    center = {c.label: c for c in figure1_data["center"]}
    right = {c.label: c for c in figure1_data["right"]}
    hash_gain = right["hashchain"].series.peak() / max(center["hashchain"].series.peak(), 1e-9)
    comp_gain = right["compresschain"].series.peak() / max(center["compresschain"].series.peak(), 1e-9)
    print(f"\n  collector 100->500 peak gain: hashchain x{hash_gain:.2f}, "
          f"compresschain x{comp_gain:.2f}")
    assert hash_gain > comp_gain
