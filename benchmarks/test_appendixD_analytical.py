"""Appendix D.1 — analytical throughput of the three algorithms.

Regenerates the five analytical values the paper reports (Tv, Tc[100],
Tc[500], Th[100], Th[500]) and checks them against the paper's numbers and
ratios (Th[500]/Tv ≈ 155, Th[500]/Tc[500] ≈ 44).
"""

import pytest

from conftest import run_once
from repro.experiments import tables


def test_appendix_d1_analytical_throughput(benchmark):
    values = run_once(benchmark, tables.appendix_d1)
    print("\nAppendix D.1 — analytical throughput (el/s)")
    for key, value in values.items():
        paper = tables.PAPER_ANALYTICAL_VALUES[key]
        print(f"  {key:22s} measured {value:10.0f}   paper {paper:10.0f}")
        assert value == pytest.approx(paper, rel=0.02)
    assert values["hashchain c=500"] / values["vanilla"] == pytest.approx(155, rel=0.03)
    assert (values["hashchain c=500"] / values["compresschain c=500"]
            == pytest.approx(44, rel=0.05))
