"""Fig. 2 (left) — pushing the Hashchain limits; hash reversal as the bottleneck.

Paper shape to reproduce: full Hashchain hits a throughput ceiling well below
its analytical bound because of the hash-reversal service; "Hashchain light"
(no hash reversal / validation) sustains a far higher rate; Compresschain and
Vanilla sit well below both.
"""

import pytest

from conftest import BENCH_SCALE_HEAVY, run_once
from repro.experiments import figures


@pytest.fixture(scope="module")
def figure2_data():
    return figures.figure2_left(scale=BENCH_SCALE_HEAVY)


def test_figure2_left_saturation(benchmark, figure2_data):
    results = run_once(benchmark, lambda: figure2_data)
    print(f"\nFig. 2 left — highest achieved throughput (scale 1/{BENCH_SCALE_HEAVY:g})")
    by_algo = {}
    for result in results:
        peak = result.throughput.peak()
        by_algo[result.config.algorithm] = result
        print(f"  {result.config.algorithm:22s} offered {result.sending_rate:9.1f} el/s  "
              f"avg(50s) {result.avg_throughput_50s:9.1f}  peak {peak:9.1f}  "
              f"analytical {result.analytical_throughput:9.1f}")
    full = by_algo["hashchain"]
    light = by_algo["hashchain-light"]
    peak = {name: result.throughput.peak() for name, result in by_algo.items()}
    # Hash reversal is the bottleneck: the light variant sustains a higher rate
    # and a higher sustained average than the full algorithm, despite being
    # offered 6x the load (paper: ~134k el/s vs ~20k el/s).
    assert peak["hashchain-light"] > peak["hashchain"]
    assert light.avg_throughput_50s > full.avg_throughput_50s
    assert light.metrics.committed_count > 2 * full.metrics.committed_count
    # The full algorithm cannot keep up with its offered rate (the per-element
    # hash-reversal ceiling sits below it), while the light variant clears a
    # large fraction of a 6x heavier load.
    assert full.efficiency.at_100 < 0.95
    assert light.efficiency.at_100 > full.efficiency.at_100 - 0.05
    # Vanilla stays far below Hashchain at its own (much lower) offered rate.
    assert peak["vanilla"] < peak["hashchain"]
