"""Ablation — the f+1 signer consolidation rule in Hashchain (DESIGN.md §5).

The paper consolidates a hash into an epoch only after f+1 distinct servers
signed it, so at least one correct server can serve the batch contents.  This
bench compares f (hence the consolidation quorum) at the same cluster size and
checks the safety/latency trade-off: a larger quorum needs more ledger traffic
per epoch and slightly more time before consolidation, but under a withholding
attacker only the quorum rule keeps unrecoverable content out of epochs (the
attack itself is exercised in tests/test_byzantine.py).
"""

import pytest

from dataclasses import replace

from conftest import run_once
from repro.config import base_scenario
from repro.experiments.runner import run_scenario

SCALE = 25.0


def run_with_quorum(f_value):
    config = base_scenario("hashchain", sending_rate=2_000, collector_limit=100,
                           n_servers=10, drain_duration=70,
                           label=f"ablation quorum f={f_value}")
    config = replace(config, setchain=replace(config.setchain, f=f_value))
    return run_scenario(config, scale=SCALE)


def test_consolidation_quorum_tradeoff(benchmark):
    results = run_once(benchmark, lambda: {f: run_with_quorum(f) for f in (0, 2, 4)})
    print(f"\nAblation — Hashchain consolidation quorum (n=10, scale 1/{SCALE:g})")
    medians = {}
    for f_value, result in results.items():
        latencies = result.metrics.commit_latencies()
        median = latencies[len(latencies) // 2] if latencies else float("nan")
        medians[f_value] = median
        print(f"  f={f_value} (quorum {f_value + 1}): committed "
              f"{result.metrics.committed_count}/{len(result.deployment.injected_elements)}  "
              f"median commit latency {median:.2f}s  eff100 {result.efficiency.at_100:.2f}")
    # Every quorum choice is live when all servers are correct.
    for result in results.values():
        assert result.efficiency.at_100 > 0.9
    # A larger quorum cannot make commits faster.
    assert medians[4] >= medians[0] - 0.5
