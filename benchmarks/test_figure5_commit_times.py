"""Fig. 5 (Appendix F) — commit times of the first element and of 10-50 % of elements.

Shapes to reproduce on the sending-rate dimension (the other two dimensions
share the same machinery and are exercised by the Fig. 3 benches):

* at low rates, commit times grow slowly and regularly with the fraction;
* at 10,000 el/s, the stressed algorithms (Vanilla, Compresschain) either
  never reach 50 % or reach it far later than Hashchain.
"""

import pytest

from conftest import BENCH_SCALE, run_once
from repro.experiments import figures


@pytest.fixture(scope="module")
def figure5_rate_rows():
    return figures.figure5(scale=BENCH_SCALE, dimensions=("rate",))["rate"]


def test_figure5_commit_time_quantiles(benchmark, figure5_rate_rows):
    rows = run_once(benchmark, lambda: figure5_rate_rows)
    print(f"\nFig. 5a — commit times (s) vs sending rate (scale 1/{BENCH_SCALE:g})")
    for row in rows:
        summary = row["commit_times"]
        half = summary.time_for(0.5)
        print(f"  {row['algorithm']:15s} c={row['collector']:<4d} "
              f"rate={row['sending_rate']:8.1f}  first={summary.first_element}  "
              f"50%={'never' if half is None else f'{half:.1f}'}")
    assert rows


def test_figure5_low_rate_commits_promptly(figure5_rate_rows):
    # Rows carry the paper's (unscaled) sending-rate labels.
    low = [r for r in figure5_rate_rows if r["sending_rate"] <= 1_000]
    assert low
    for row in low:
        summary = row["commit_times"]
        # Every low-rate run starts committing, and the first commits land well
        # inside the run (the 10% mark stays far from the horizon even with the
        # scale-inflated collector timeout; see EXPERIMENTS.md).
        assert summary.first_element is not None
        assert summary.time_for(0.1) is not None
        assert summary.time_for(0.1) < 120.0
    # The unstressed Hashchain runs reach the 50% mark promptly.
    for row in low:
        if row["algorithm"] == "hashchain":
            assert row["commit_times"].reached_half


def test_figure5_stress_separates_algorithms(figure5_rate_rows):
    high = [r for r in figure5_rate_rows if r["sending_rate"] == 10_000]
    by_algo = {}
    for row in high:
        key = (row["algorithm"], row["collector"])
        by_algo[key] = row["commit_times"]
    hash_half = by_algo[("hashchain", 500)].time_for(0.5)
    comp_half = by_algo[("compresschain", 500)].time_for(0.5)
    assert hash_half is not None
    # Compresschain either never reaches 50 % or does so later than Hashchain.
    assert comp_half is None or comp_half >= hash_half
    vanilla_half = by_algo[("vanilla", 100)].time_for(0.5)
    assert vanilla_half is None or vanilla_half >= hash_half
