"""Fig. 3 — efficiency (committed / added) under varying rate, servers, delay.

Three benches, one per panel, each over a representative subset of the paper's
grid.  Shapes to reproduce:

* 3a: every algorithm reaches (near-)full efficiency at low rates; at 10,000
  el/s Vanilla collapses, Compresschain degrades badly and a larger collector
  barely helps it, Hashchain stays far ahead and benefits from c=500.
* 3b: Vanilla is the least efficient at every cluster size.
* 3c: adding network delay reduces efficiency.
"""

import pytest

from conftest import BENCH_SCALE, run_once
from repro.experiments import figures


def by_key(rows, **filters):
    out = []
    for row in rows:
        if all(row[k] == v for k, v in filters.items()):
            out.append(row)
    return out


def show(rows, title):
    print(f"\n{title}")
    for row in rows:
        print(f"  {row['algorithm']:15s} c={row['collector']:<4d} "
              f"rate={row['sending_rate']:8.1f} n={row['n_servers']:<3d} "
              f"delay={row['network_delay_ms']:<4.0f}ms  "
              f"eff50={row['efficiency_50s']:.2f} eff75={row['efficiency_75s']:.2f} "
              f"eff100={row['efficiency_100s']:.2f}")


def test_figure3a_efficiency_vs_sending_rate(benchmark):
    rows = run_once(benchmark, figures.figure3a, scale=BENCH_SCALE,
                    rates=(1_000, 10_000))
    show(rows, f"Fig. 3a — efficiency vs sending rate (scale 1/{BENCH_SCALE:g})")
    # Rows are labelled with the paper's (unscaled) sending rates.
    low = by_key(rows, sending_rate=1_000.0)
    high = by_key(rows, sending_rate=10_000.0)
    # Low rate: every algorithm keeps committing after injection (tails are
    # delayed at this scale by the scaled collector timeout; see EXPERIMENTS.md).
    assert all(row["efficiency_100s"] > 0.4 for row in low)
    assert all(row["efficiency_100s"] >= row["efficiency_50s"] for row in low)
    # High rate: Vanilla has very low efficiency.
    vanilla_high = by_key(high, algorithm="vanilla")[0]
    assert vanilla_high["efficiency_50s"] < 0.3
    # Hashchain dominates (or matches, at c=500 where the down-scaled block
    # granularity flatters Compresschain) Compresschain at the same collector.
    for collector in (100, 500):
        hash_eff = by_key(high, algorithm="hashchain", collector=collector)[0]
        comp_eff = by_key(high, algorithm="compresschain", collector=collector)[0]
        assert hash_eff["efficiency_50s"] >= comp_eff["efficiency_50s"] - 0.05
    assert (by_key(high, algorithm="hashchain", collector=100)[0]["efficiency_50s"]
            > by_key(high, algorithm="compresschain", collector=100)[0]["efficiency_50s"])
    # Collector 500 helps Hashchain at the stressed rate.
    h100 = by_key(high, algorithm="hashchain", collector=100)[0]
    h500 = by_key(high, algorithm="hashchain", collector=500)[0]
    assert h500["efficiency_100s"] >= h100["efficiency_100s"] - 0.05


def test_figure3b_efficiency_vs_servers(benchmark):
    rows = run_once(benchmark, figures.figure3b, scale=BENCH_SCALE,
                    server_counts=(4, 10))
    show(rows, f"Fig. 3b — efficiency vs number of servers (scale 1/{BENCH_SCALE:g})")
    for servers in (4, 10):
        subset = by_key(rows, n_servers=servers)
        vanilla = by_key(subset, algorithm="vanilla")[0]
        # Vanilla sits at the bottom at every cluster size (paper Fig. 3b);
        # Hashchain (either collector size) is far ahead of it.  Compresschain
        # is not compared pointwise here because the down-scaled block
        # granularity penalises it more than the paper's setup does (see
        # EXPERIMENTS.md).
        for hash_row in by_key(subset, algorithm="hashchain"):
            assert vanilla["efficiency_50s"] <= hash_row["efficiency_50s"] + 1e-9
            assert vanilla["efficiency_100s"] <= hash_row["efficiency_100s"] + 1e-9
        assert vanilla["efficiency_50s"] < 0.3


def test_figure3c_efficiency_vs_network_delay(benchmark):
    rows = run_once(benchmark, figures.figure3c, scale=BENCH_SCALE,
                    delays_ms=(0, 100))
    show(rows, f"Fig. 3c — efficiency vs network delay (scale 1/{BENCH_SCALE:g})")
    for algorithm, collector in (("hashchain", 500), ("compresschain", 500)):
        no_delay = by_key(rows, algorithm=algorithm, collector=collector,
                          network_delay_ms=0.0)[0]
        delayed = by_key(rows, algorithm=algorithm, collector=collector,
                         network_delay_ms=100.0)[0]
        # Delay never improves efficiency.
        assert delayed["efficiency_50s"] <= no_delay["efficiency_50s"] + 0.05
    # Hashchain c=500 still reaches (near-)full efficiency by 100 s with 100 ms
    # delay (paper: full efficiency in 100 s).
    h500 = by_key(rows, algorithm="hashchain", collector=500, network_delay_ms=100.0)[0]
    assert h500["efficiency_100s"] > 0.7
