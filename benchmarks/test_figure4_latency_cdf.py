"""Fig. 4 — latency CDFs to the five processing stages.

Scenario: 10 servers, 1,250 el/s, collector 100, no delay (lightly scaled).
Shapes to reproduce:

* Vanilla reaches the mempools almost immediately (elements are sent straight
  to the ledger), while Compresschain/Hashchain pay the collector wait first.
* For Vanilla, the gap from mempool to ledger/commit is tens of seconds.
* For Compresschain and Hashchain, commit happens within seconds of reaching
  the mempool, and commit latency stays in the single-digit-seconds range
  (paper: below 4 s with probability ~1).
"""

import pytest

from conftest import run_once
from repro.experiments import figures

#: Fig. 4 is a low-rate scenario, so a small scale keeps it faithful and fast.
FIG4_SCALE = 12.5


@pytest.fixture(scope="module")
def figure4_data():
    return figures.figure4(scale=FIG4_SCALE)


def test_figure4_latency_cdfs(benchmark, figure4_data):
    data = run_once(benchmark, lambda: figure4_data)
    print(f"\nFig. 4 — median latency per stage in seconds (scale 1/{FIG4_SCALE:g})")
    for algorithm, cdfs in data.items():
        medians = {stage: cdfs[stage].quantile(0.5) for stage in cdfs if cdfs[stage].count}
        line = "  ".join(f"{stage}={value:6.2f}" for stage, value in medians.items())
        print(f"  {algorithm:15s} {line}")
    assert set(data) == {"vanilla", "compresschain", "hashchain"}
    for cdfs in data.values():
        assert {"first_mempool", "quorum_mempools", "all_mempools", "ledger",
                "committed"} <= set(cdfs)


def test_figure4_stage_ordering_and_mempool_gap(figure4_data):
    for algorithm, cdfs in figure4_data.items():
        # Stages are reached in order for the median element.
        assert (cdfs["first_mempool"].quantile(0.5)
                <= cdfs["quorum_mempools"].quantile(0.5) + 1e-9)
        assert (cdfs["quorum_mempools"].quantile(0.5)
                <= cdfs["all_mempools"].quantile(0.5) + 1e-9)
        assert cdfs["first_mempool"].quantile(0.5) <= cdfs["ledger"].quantile(0.5)
        assert cdfs["ledger"].quantile(0.5) <= cdfs["committed"].quantile(0.5)
    # Vanilla hits the mempool faster than the collector-based algorithms.
    vanilla_mempool = figure4_data["vanilla"]["first_mempool"].quantile(0.5)
    for algorithm in ("compresschain", "hashchain"):
        assert vanilla_mempool <= figure4_data[algorithm]["first_mempool"].quantile(0.5)


def test_figure4_commit_latency_shape(figure4_data):
    vanilla_commit = figure4_data["vanilla"]["committed"].quantile(0.5)
    for algorithm in ("compresschain", "hashchain"):
        commit = figure4_data[algorithm]["committed"]
        # Commit latency is seconds-scale and far below Vanilla's.
        assert commit.quantile(0.9) < 60.0
        assert commit.quantile(0.5) < vanilla_commit
