"""Table 1 — the evaluation parameter grid.

Regenerates the parameter table and checks the scenario generator covers the
full cross product the paper evaluates.
"""

from conftest import run_once
from repro.config import table1_grid
from repro.experiments import tables


def test_table1_parameter_grid(benchmark):
    text = run_once(benchmark, tables.table1)
    print("\n" + text)
    grid = table1_grid()
    assert len(grid) == 180  # 36 vanilla + 72 compresschain + 72 hashchain
    assert {c.algorithm for c in grid} == {"vanilla", "compresschain", "hashchain"}
    for token in ("10000, 5000, 1000, 500", "100, 500", "4, 7, 10", "0, 30, 100"):
        assert token in text
