"""Table 2 — average throughput up to 50 s for the Fig. 1 scenarios.

Measured values are produced at the documented scale; the assertion targets
the *shape*: Hashchain ≫ Compresschain > Vanilla in every panel, and the
measured-to-(scaled-)paper ratios stay within a factor that reflects the
simulation substitution rather than an algorithmic divergence.
"""

import pytest

from conftest import BENCH_SCALE, run_once
from repro.experiments import tables


def test_table2_average_throughput(benchmark):
    rows = run_once(benchmark, tables.table2, scale=BENCH_SCALE)
    print("\n" + tables.render_table2(rows))
    by_panel: dict[str, dict[str, float]] = {}
    for row in rows:
        by_panel.setdefault(str(row["panel"]), {})[str(row["algorithm"])] = \
            float(row["avg_throughput_50s"])
    # Orderings of Table 2 hold in every panel.
    left = by_panel["left"]
    assert left["hashchain"] > left["compresschain"] > left["vanilla"]
    for panel in ("center", "right"):
        # ">=" rather than ">" for the right panel: at the benchmark scale the
        # c=500 collector takes several seconds to fill, which eats into the
        # 50 s average of both algorithms equally (see EXPERIMENTS.md).
        assert by_panel[panel]["hashchain"] >= by_panel[panel]["compresschain"]
    # Hashchain's advantage over Compresschain is large (paper: 4-10x).
    assert left["hashchain"] / left["compresschain"] > 2.0
    # (The paper's right-vs-center Hashchain gain shows up in sustained/peak
    # throughput — asserted in the Fig. 1 bench — rather than in the 50 s
    # average, which at this scale is dominated by the longer collector fill
    # time of c=500; see EXPERIMENTS.md.)
    # Where the paper value is known, the measured/scaled-paper ratio is sane.
    for row in rows:
        ratio = row["ratio_vs_paper"]
        if ratio is not None:
            assert 0.1 < float(ratio) < 10.0
