"""Ablation — collector size sweep for Hashchain (design choice in DESIGN.md §5).

The collector size c sets the batch the ledger never sees in full: analytical
throughput scales with (c - n), and the measured saturation point moves with
it.  This bench sweeps c at a fixed offered rate and checks the monotone
improvement the paper exploits when moving from c=100 to c=500.
"""

import pytest

from conftest import BENCH_SCALE, run_once
from repro.config import base_scenario
from repro.experiments.runner import run_scenario

COLLECTORS = (50, 100, 250, 500)


def sweep():
    results = {}
    for collector in COLLECTORS:
        config = base_scenario("hashchain", sending_rate=10_000,
                               collector_limit=collector, n_servers=10,
                               drain_duration=70,
                               label=f"ablation collector={collector}")
        results[collector] = run_scenario(config, scale=BENCH_SCALE)
    return results


def test_collector_size_sweep(benchmark):
    results = run_once(benchmark, sweep)
    print(f"\nAblation — Hashchain collector sweep at 10,000 el/s (scale 1/{BENCH_SCALE:g})")
    for collector, result in results.items():
        print(f"  c={collector:<4d} analytical={result.analytical_throughput:9.1f} el/s  "
              f"avg(50s)={result.avg_throughput_50s:8.1f}  eff100={result.efficiency.at_100:.2f}")
    analytical = [results[c].analytical_throughput for c in COLLECTORS]
    assert all(a < b for a, b in zip(analytical, analytical[1:]))
    # Efficiency at the stressed rate improves (weakly) with the collector size.
    eff = [results[c].efficiency.at_100 for c in COLLECTORS]
    assert eff[-1] >= eff[0] - 0.05
    assert results[500].efficiency.at_100 > 0.5
