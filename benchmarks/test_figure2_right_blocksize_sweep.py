"""Fig. 2 (right) — analytical throughput versus ledger block size.

The paper highlights that with CometBFT's usual 4 MB blocks Hashchain reaches
~10^6 el/s and with 128 MB blocks more than 3x10^7 el/s; Vanilla and
Compresschain stay orders of magnitude lower at every block size.
"""

import pytest

from conftest import run_once
from repro.experiments import figures


def test_figure2_right_blocksize_sweep(benchmark):
    data = run_once(benchmark, figures.figure2_right)
    print("\nFig. 2 right — analytical throughput vs block size (el/s)")
    print(f"  {'MB':>6s} {'vanilla':>12s} {'compresschain':>14s} {'hashchain':>12s}")
    for i, mb in enumerate(data["block_size_mb"]):
        print(f"  {mb:6g} {data['vanilla'][i]:12.0f} {data['compresschain'][i]:14.0f} "
              f"{data['hashchain'][i]:12.0f}")
    sizes = data["block_size_mb"]
    hashchain = dict(zip(sizes, data["hashchain"]))
    # Paper's two headline points.
    assert hashchain[4] == pytest.approx(1.18e6, rel=0.05)
    assert hashchain[128] > 3e7
    # Hashchain dominates at every block size; everything is monotone in C.
    for algo in ("vanilla", "compresschain", "hashchain"):
        series = data[algo]
        assert all(a < b for a, b in zip(series, series[1:]))
    for v, c, h in zip(data["vanilla"], data["compresschain"], data["hashchain"]):
        assert h > c > v
