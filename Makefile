PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-pytest bench-smoke list-scenarios clean

test:
	$(PYTHON) -m pytest -q

# Wall-clock perf trajectory on the pinned bench-smoke set (repro.bench).
bench:
	$(PYTHON) -m repro.bench --jobs auto --out results/BENCH.json

bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# One registry scenario through the CLI, persisting its RunResult artifact.
bench-smoke:
	$(PYTHON) -m repro run quickstart --scale 1 --json results/bench-smoke.json
	$(PYTHON) -m repro report results/bench-smoke.json

list-scenarios:
	$(PYTHON) -m repro list-scenarios

clean:
	rm -rf results .pytest_cache
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
