PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-pytest bench-smoke million million-smoke profile chaos-smoke byz-smoke membership-smoke shard-smoke service-smoke trace-smoke trace-smoke-core trace-bench-gate list-scenarios clean

# Scenario to profile with `make profile` (override: make profile SCENARIO=...).
SCENARIO ?= bench/hashchain-heavy

test:
	$(PYTHON) -m pytest -q

# Wall-clock perf trajectory on the pinned bench-smoke set (repro.bench).
bench:
	$(PYTHON) -m repro.bench --jobs auto --out results/BENCH.json

bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

# Million-element trajectory (batched algorithms; serial so numbers are clean).
million:
	$(PYTHON) -m repro.bench --set million --jobs 1 --out results/BENCH_MILLION.json

# CI-sized 100k variant of the million set, all three algorithms.
million-smoke:
	$(PYTHON) -m repro.bench --set million-smoke --jobs 1 --out results/BENCH_MILLION_SMOKE.json

# cProfile one scenario (override the target: make profile SCENARIO=bench/vanilla).
profile:
	$(PYTHON) -m repro.bench profile $(SCENARIO) --limit 30 \
	  --out-collapsed results/profile-collapsed.txt

# One registry scenario through the CLI, persisting its RunResult artifact.
bench-smoke:
	$(PYTHON) -m repro run quickstart --scale 1 --json results/bench-smoke.json
	$(PYTHON) -m repro report results/bench-smoke.json

# One chaos scenario end to end: run it, render the resilience report, and
# prove the fault schedule is byte-identical under serial vs parallel sweeps.
chaos-smoke:
	$(PYTHON) -m repro run chaos/smoke --json results/chaos-smoke.json
	$(PYTHON) -m repro report results/chaos-smoke.json
	$(PYTHON) -m repro sweep --contains chaos/smoke --jobs 1 --quiet --seed 7 --out results/chaos-j1
	$(PYTHON) -m repro sweep --contains chaos/smoke --jobs 4 --quiet --seed 7 --out results/chaos-j4
	cmp results/chaos-j1/chaos__smoke.json results/chaos-j4/chaos__smoke.json
	@echo "chaos/smoke byte-identical under --jobs 1 vs --jobs 4"

# One adversarial scenario end to end: run it, render the resilience and
# Byzantine-attribution reports, and prove the schedule is byte-identical
# under serial vs parallel sweeps.
byz-smoke:
	$(PYTHON) -m repro run byz/smoke --json results/byz-smoke.json
	$(PYTHON) -m repro report results/byz-smoke.json
	$(PYTHON) -m repro sweep --contains byz/smoke --jobs 1 --quiet --seed 7 --out results/byz-j1
	$(PYTHON) -m repro sweep --contains byz/smoke --jobs 4 --quiet --seed 7 --out results/byz-j4
	cmp results/byz-j1/byz__smoke.json results/byz-j4/byz__smoke.json
	@echo "byz/smoke byte-identical under --jobs 1 vs --jobs 4"

# The whole dynamic-membership family (runtime joins with state transfer,
# draining leaves, validator replacement, elastic service shapes) under
# serial vs parallel sweeps: every artifact must be byte-identical, then the
# report renders the membership timelines.
membership-smoke:
	$(PYTHON) -m repro sweep --contains member/ --jobs 1 --quiet --seed 7 --out results/member-j1
	$(PYTHON) -m repro sweep --contains member/ --jobs 4 --quiet --seed 7 --out results/member-j4
	@for artifact in results/member-j1/*.json; do \
	  cmp "$$artifact" "results/member-j4/$$(basename $$artifact)" || exit 1; \
	done
	@echo "member/ family byte-identical under --jobs 1 vs --jobs 4"
	$(PYTHON) -m repro report results/member-j1/member__service__elastic.json \
	  results/member-j1/member__smoke.json

# Sharded scale-out drill: the 2- and 4-shard scale scenarios run and render
# their per-shard tables, the whole shard/ family is byte-identical under
# serial vs parallel sweeps, and Properties 1-8 hold on the merged logical
# view of a sharded run.
shard-smoke:
	mkdir -p results
	$(PYTHON) -m repro run shard/scale/s2 --json results/shard-s2.json --quiet
	$(PYTHON) -m repro run shard/scale/s4 --json results/shard-s4.json --quiet
	$(PYTHON) -m repro report results/shard-s2.json results/shard-s4.json
	$(PYTHON) -m repro sweep --family shard --jobs 1 --quiet --seed 7 --out results/shard-j1
	$(PYTHON) -m repro sweep --family shard --jobs 4 --quiet --seed 7 --out results/shard-j4
	@for artifact in results/shard-j1/*.json; do \
	  cmp "$$artifact" "results/shard-j4/$$(basename $$artifact)" || exit 1; \
	done
	@echo "shard/ family byte-identical under --jobs 1 vs --jobs 4"
	$(PYTHON) -c "from repro import Scenario; \
	  session = (Scenario.hashchain().servers(2).shards(2).rate(300) \
	    .collector(20).inject_for(5).drain(30).backend('ideal').seed(11) \
	    .session().start()); \
	  session.run_to_completion(); \
	  violations = session.check_logical_properties(); \
	  assert violations == [], violations; \
	  print('merged logical view: Properties 1-8 hold over', \
	        len(session.logical_view().the_set), 'elements')"

# Service mode end to end: start a service on a durable sqlite ledger,
# stream 1k elements through the ingress queue while probing /metrics every
# tick (the run fails below 90% probe availability), shut down cleanly, then
# restart on the same database (resume) and audit the persisted chain.
service-smoke:
	mkdir -p results && rm -f results/service-smoke.sqlite
	$(PYTHON) -m repro serve service/smoke --db results/service-smoke.sqlite \
	  --rate 250 --duration 4 --settle 6 --min-availability 0.9
	$(PYTHON) -m repro serve service/smoke --db results/service-smoke.sqlite \
	  --rate 100 --duration 2 --settle 6 --min-availability 0.9
	$(PYTHON) -m repro service inspect results/service-smoke.sqlite

# Observability end to end: trace a chaos and a service scenario (both export
# formats), validate the trace schemas, prove trace files byte-identical
# under serial vs parallel sweeps, validate the Prometheus exposition against
# a live endpoint, and gate a tracing-disabled bench run within 2% of the
# checked-in PR 8 baseline (tracing must cost nothing when off).  The gate
# lives in its own target so CI can run it non-blocking on noisy runners.
trace-smoke: trace-smoke-core trace-bench-gate

trace-smoke-core:
	$(PYTHON) -m repro trace chaos/smoke --seed 7 \
	  --out results/trace-chaos.trace.json
	$(PYTHON) -m repro.obs validate-trace results/trace-chaos.trace.json \
	  --min-tracks 3
	$(PYTHON) -m repro trace service/smoke --seed 7 --format jsonl \
	  --out results/trace-service.trace.jsonl
	$(PYTHON) -m repro.obs validate-trace results/trace-service.trace.jsonl \
	  --min-tracks 3
	$(PYTHON) -m repro sweep --contains chaos/smoke --jobs 1 --quiet --seed 7 \
	  --trace-sample 1.0 --trace-dir results/trace-j1 --out results/trace-j1
	$(PYTHON) -m repro sweep --contains chaos/smoke --jobs 4 --quiet --seed 7 \
	  --trace-sample 1.0 --trace-dir results/trace-j4 --out results/trace-j4
	cmp results/trace-j1/chaos__smoke.trace.json results/trace-j4/chaos__smoke.trace.json
	@echo "chaos/smoke trace byte-identical under --jobs 1 vs --jobs 4"
	$(PYTHON) -m repro.obs prom-smoke

trace-bench-gate:
	$(PYTHON) -m repro.bench run --jobs 1 --repeat 3 --label trace-smoke-untraced \
	  --out results/BENCH_TRACE_SMOKE.json
	$(PYTHON) -m repro.bench compare BENCH_PR8.json results/BENCH_TRACE_SMOKE.json \
	  --max-regression 0.02

list-scenarios:
	$(PYTHON) -m repro list-scenarios

clean:
	rm -rf results .pytest_cache
	find . -type d -name __pycache__ -prune -exec rm -rf {} +
