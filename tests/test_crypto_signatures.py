"""Tests for signature schemes and the PKI."""

import pytest

from repro.crypto.keys import KeyPair, PublicKeyInfrastructure, derive_secret_seed
from repro.crypto.signatures import Ed25519Scheme, SimulatedScheme, make_scheme
from repro.errors import ConfigurationError, CryptoError


@pytest.fixture(params=["simulated", "ed25519"])
def any_scheme(request):
    return make_scheme(request.param, PublicKeyInfrastructure())


def test_make_scheme_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        make_scheme("rsa")


def test_make_scheme_types():
    assert isinstance(make_scheme("ed25519"), Ed25519Scheme)
    assert isinstance(make_scheme("simulated"), SimulatedScheme)


def test_sign_verify_roundtrip(any_scheme):
    keypair = any_scheme.generate_keypair("server-0")
    signature = any_scheme.sign(keypair, "epoch|1|abc")
    assert any_scheme.verify("server-0", "epoch|1|abc", signature)


def test_verify_rejects_wrong_message(any_scheme):
    keypair = any_scheme.generate_keypair("server-0")
    signature = any_scheme.sign(keypair, "hello")
    assert not any_scheme.verify("server-0", "goodbye", signature)


def test_verify_rejects_wrong_claimed_owner(any_scheme):
    kp0 = any_scheme.generate_keypair("server-0")
    any_scheme.generate_keypair("server-1")
    signature = any_scheme.sign(kp0, "msg")
    assert not any_scheme.verify("server-1", "msg", signature)


def test_verify_unknown_owner_is_false(any_scheme):
    keypair = any_scheme.generate_keypair("server-0")
    signature = any_scheme.sign(keypair, "msg")
    assert not any_scheme.verify("stranger", "msg", signature)


def test_keypairs_are_deterministic_per_deployment_seed(any_scheme):
    a = any_scheme.generate_keypair("server-7", deployment_seed=3)
    fresh = type(any_scheme)(PublicKeyInfrastructure())
    b = fresh.generate_keypair("server-7", deployment_seed=3)
    c = fresh.generate_keypair("server-8", deployment_seed=3)
    assert a.public == b.public
    assert b.public != c.public


def test_signature_is_64_bytes(any_scheme):
    keypair = any_scheme.generate_keypair("server-0")
    assert len(any_scheme.sign(keypair, "x")) == 64


# -- PKI ---------------------------------------------------------------------------

def test_pki_register_and_lookup():
    pki = PublicKeyInfrastructure()
    pki.register("a", b"key-a")
    assert pki.public_key_of("a") == b"key-a"
    assert pki.knows("a") and not pki.knows("b")
    assert pki.owners() == ["a"]
    assert len(pki) == 1


def test_pki_unknown_owner_raises():
    with pytest.raises(CryptoError):
        PublicKeyInfrastructure().public_key_of("ghost")


def test_pki_conflicting_reregistration_rejected():
    pki = PublicKeyInfrastructure()
    pki.register("a", b"key-1")
    pki.register("a", b"key-1")  # same key is fine
    with pytest.raises(CryptoError):
        pki.register("a", b"key-2")


def test_pki_empty_owner_rejected():
    with pytest.raises(CryptoError):
        PublicKeyInfrastructure().register("", b"key")


# -- KeyPair / seed derivation ----------------------------------------------------------

def test_keypair_validation():
    with pytest.raises(CryptoError):
        KeyPair(owner="", secret=b"0" * 32, public=b"p")
    with pytest.raises(CryptoError):
        KeyPair(owner="a", secret=b"short", public=b"p")
    with pytest.raises(CryptoError):
        KeyPair(owner="a", secret=b"0" * 32, public=b"")


def test_derive_secret_seed_is_stable_and_distinct():
    assert derive_secret_seed("s0", 1) == derive_secret_seed("s0", 1)
    assert derive_secret_seed("s0", 1) != derive_secret_seed("s1", 1)
    assert derive_secret_seed("s0", 1) != derive_secret_seed("s0", 2)
    assert len(derive_secret_seed("s0")) == 32
