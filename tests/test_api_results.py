"""RunResult: exact serialisation round-trips and config reconstruction."""

import json

import pytest

from repro.api import RunResult, Scenario, run
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def result() -> RunResult:
    """One tiny ideal-ledger run shared by every test in this module."""
    return run("smoke")


def test_run_returns_a_populated_result(result: RunResult):
    assert result.label == "smoke"
    assert result.algorithm == "hashchain"
    assert result.injected > 0
    assert result.committed == result.injected
    assert result.committed_fraction == 1.0
    assert result.efficiency["100s"] == pytest.approx(1.0)
    assert len(result.throughput_times) == len(result.throughput_values) > 0
    assert result.first_commit is not None


def test_dict_round_trip_is_exact(result: RunResult):
    assert RunResult.from_dict(result.to_dict()) == result


def test_json_round_trip_is_exact(result: RunResult):
    assert RunResult.from_json(result.to_json()) == result
    # ... even through an actual parse/re-serialise cycle.
    reparsed = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert reparsed == result


def test_file_round_trip_is_exact(result: RunResult, tmp_path):
    path = result.save(tmp_path / "nested" / "smoke.json")
    assert path.exists()
    assert RunResult.load(path) == result


def test_to_dict_is_pure_json_types(result: RunResult):
    def check(value):
        if isinstance(value, dict):
            for key, nested in value.items():
                assert isinstance(key, str)
                check(nested)
        elif isinstance(value, list):
            for nested in value:
                check(nested)
        else:
            assert value is None or isinstance(value, (str, int, float, bool))

    check(result.to_dict())


def test_experiment_config_reconstruction(result: RunResult):
    config = result.experiment_config()
    assert config.algorithm == "hashchain"
    assert config.label == "smoke"
    assert config.ledger_backend == "ideal"
    # The echo captures the *scaled* config, which re-validates on rebuild.
    assert config.workload.sending_rate == result.config["workload"]["sending_rate"]


def test_missing_fields_rejected(result: RunResult):
    with pytest.raises(ConfigurationError, match="missing RunResult fields"):
        RunResult.from_dict({"label": "x"})
    truncated = result.to_dict()
    del truncated["throughput_times"]
    with pytest.raises(ConfigurationError, match="throughput_times"):
        RunResult.from_dict(truncated)


def test_truncated_nested_shapes_rejected(result: RunResult):
    no_workload = result.to_dict()
    del no_workload["config"]["workload"]
    with pytest.raises(ConfigurationError, match="config echo"):
        RunResult.from_dict(no_workload)
    bad_efficiency = result.to_dict()
    bad_efficiency["efficiency"] = {"50s": 1.0}
    with pytest.raises(ConfigurationError, match="efficiency"):
        RunResult.from_dict(bad_efficiency)


def test_malformed_values_rejected(result: RunResult):
    stringy = result.to_dict()
    stringy["schema_version"] = "1"
    with pytest.raises(ConfigurationError, match="must be an integer"):
        RunResult.from_dict(stringy)
    garbled = result.to_dict()
    garbled["throughput_values"] = ["high", "low"]
    with pytest.raises(ConfigurationError, match="malformed RunResult"):
        RunResult.from_dict(garbled)
    stringy_scalar = result.to_dict()
    stringy_scalar["avg_throughput_50s"] = "not-a-number"
    with pytest.raises(ConfigurationError, match="malformed RunResult"):
        RunResult.from_dict(stringy_scalar)
    bad_eff = result.to_dict()
    bad_eff["efficiency"]["50s"] = "high"
    with pytest.raises(ConfigurationError, match="malformed RunResult"):
        RunResult.from_dict(bad_eff)


def test_unknown_fields_and_future_schema_rejected(result: RunResult):
    data = result.to_dict()
    data["surprise"] = 1
    with pytest.raises(ConfigurationError, match="surprise"):
        RunResult.from_dict(data)
    future = result.to_dict()
    future["schema_version"] = 999
    with pytest.raises(ConfigurationError, match="schema version"):
        RunResult.from_dict(future)


def test_throughput_property_rebuilds_the_series(result: RunResult):
    series = result.throughput
    assert series.times == result.throughput_times
    assert series.values == result.throughput_values
    assert series.peak() > 0


def test_summary_row_shape(result: RunResult):
    row = result.summary_row()
    assert row[0] == "hashchain"
    assert len(row) == 6


def test_run_accepts_builder_config_and_name():
    builder = (Scenario.hashchain().servers(4).rate(100).collector(10)
               .inject_for(5).drain(30).backend("ideal"))
    from_builder = run(builder)
    from_config = run(builder.build())
    assert from_builder.injected == from_config.injected > 0
    with pytest.raises(ConfigurationError):
        run(42)  # type: ignore[arg-type]
