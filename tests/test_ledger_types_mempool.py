"""Tests for ledger transactions, blocks, and the mempool."""

import pytest

from repro.errors import LedgerError, MempoolFullError
from repro.ledger.mempool import Mempool
from repro.ledger.types import Block, Transaction, new_transaction


def tx(size=100, origin="server-0", payload="x"):
    return new_transaction(payload, size, origin)


# -- transactions / blocks ---------------------------------------------------------

def test_transaction_ids_are_unique():
    ids = {tx().tx_id for _ in range(50)}
    assert len(ids) == 50


def test_transaction_negative_size_rejected():
    with pytest.raises(LedgerError):
        new_transaction("p", -1, "o")


def test_block_indexing_and_iteration():
    txs = tuple(tx(size=10 * i) for i in range(1, 4))
    block = Block(height=1, transactions=txs, proposer="p", timestamp=1.0)
    assert len(block) == 3
    assert block[0] is txs[0]
    assert list(block) == list(txs)
    assert block.size_bytes == 10 + 20 + 30


def test_block_height_must_start_at_one():
    with pytest.raises(LedgerError):
        Block(height=0, transactions=(), proposer="p", timestamp=0.0)


# -- mempool -------------------------------------------------------------------------

def test_mempool_add_and_contains():
    pool = Mempool(max_txs=10, max_bytes=10_000)
    t = tx()
    assert pool.add(t, now=1.0)
    assert t.tx_id in pool
    assert len(pool) == 1
    assert pool.size_bytes == 100
    assert pool.arrival_times[t.tx_id] == 1.0


def test_mempool_duplicate_add_is_noop():
    pool = Mempool(max_txs=10, max_bytes=10_000)
    t = tx()
    assert pool.add(t, now=1.0)
    assert not pool.add(t, now=2.0)
    assert len(pool) == 1
    assert pool.arrival_times[t.tx_id] == 1.0  # first arrival is kept


def test_mempool_count_cap():
    pool = Mempool(max_txs=2, max_bytes=10_000)
    pool.add(tx(), 0.0)
    pool.add(tx(), 0.0)
    with pytest.raises(MempoolFullError):
        pool.add(tx(), 0.0)
    assert pool.rejected == 1


def test_mempool_byte_cap():
    pool = Mempool(max_txs=100, max_bytes=250)
    pool.add(tx(size=200), 0.0)
    with pytest.raises(MempoolFullError):
        pool.add(tx(size=100), 0.0)


def test_reap_respects_fifo_and_byte_budget():
    pool = Mempool(max_txs=100, max_bytes=100_000)
    txs = [tx(size=100) for _ in range(5)]
    for i, t in enumerate(txs):
        pool.add(t, float(i))
    reaped = pool.reap(max_bytes=250)
    assert reaped == txs[:2]
    # Reaping does not remove.
    assert len(pool) == 5


def test_reap_oversized_head_goes_alone():
    pool = Mempool(max_txs=100, max_bytes=100_000)
    big, small = tx(size=1000), tx(size=10)
    pool.add(big, 0.0)
    pool.add(small, 0.0)
    # An oversized FIFO head is reaped alone (never wedges the mempool), but a
    # tx that merely exceeds the remaining budget stops the reap.
    assert pool.reap(max_bytes=100) == [big]
    pool.remove_committed([big])
    medium = tx(size=80)
    pool.add(medium, 0.0)
    assert pool.reap(max_bytes=85) == [small]


def test_remove_committed_frees_space():
    pool = Mempool(max_txs=100, max_bytes=100_000)
    txs = [tx(size=100) for _ in range(3)]
    for t in txs:
        pool.add(t, 0.0)
    pool.remove_committed(txs[:2])
    assert len(pool) == 1
    assert pool.size_bytes == 100
    assert pool.pending() == [txs[2]]
    # Removing a tx that is not present is harmless.
    pool.remove_committed([tx()])
    assert len(pool) == 1


def test_arrival_times_survive_removal():
    pool = Mempool(max_txs=100, max_bytes=100_000)
    t = tx()
    pool.add(t, 3.5)
    pool.remove_committed([t])
    assert pool.arrival_times[t.tx_id] == 3.5
