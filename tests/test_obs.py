"""The observability stack: telemetry registry, tracer, exporters, Prometheus.

Covers the ``repro.obs`` package end to end: the dependency-free metric
primitives, the deterministic lifecycle tracer (sampling policy, zero-cost
disabled path, phase stamping), the Chrome/JSONL exporters and their
validators, the Prometheus exposition renderer + parser pair, the HTTP
surfacing (``/metrics?format=prometheus``, health caching headers), and the
byte-identity guarantees: untraced artifacts match the pre-observability
schema, and trace files are a pure function of ``(scenario, seed, sample)``
regardless of worker-process count.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.api import Scenario, run
from repro.api.parallel import RunSpec, execute_spec, reset_run_counters, run_specs
from repro.api.results import RunResult
from repro.errors import ConfigurationError
from repro.obs.export import (
    export_chrome,
    export_jsonl,
    validate_chrome_trace,
    validate_jsonl_trace,
    validate_trace_file,
    write_trace,
)
from repro.obs.prom import parse_exposition, render_snapshot
from repro.obs.registry import (
    Histogram,
    Registry,
    flush_size_summary,
    phase_percentiles,
)
from repro.obs.trace import PHASES, TRACK_COLLECTOR, TRACK_LEDGER, Tracer

GOLDEN_DIR = Path(__file__).parent / "golden"


def traced_scenario():
    return (Scenario.hashchain().servers(4).rate(200).collector(10)
            .inject_for(3).drain(30).backend("ideal").trace(1.0))


# -- registry primitives -------------------------------------------------------


def test_counter_gauge_histogram_snapshots_are_json_stable():
    registry = Registry()
    registry.counter("hits", help="cache hits").inc()
    registry.counter("hits").inc(4)
    registry.gauge("depth").set(12.5)
    histogram = registry.histogram("latency")
    histogram.observe(0.0125)
    histogram.observe(0.0125)
    snap = registry.snapshot()
    assert snap["hits"] == 5
    assert snap["depth"] == 12.5
    assert snap["latency"]["count"] == 2
    assert sum(snap["latency"]["buckets"].values()) == 2
    # Snapshots are plain JSON types with sorted keys.
    assert list(snap) == sorted(snap)
    json.dumps(snap)


def test_registry_rejects_kind_conflicts():
    registry = Registry()
    registry.counter("x")
    with pytest.raises(ConfigurationError, match="already registered"):
        registry.gauge("x")


def test_histogram_quantile_and_overflow_bucket():
    histogram = Histogram("h", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 1.5, 3.0, 100.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.counts[-1] == 1  # 100.0 overflows to +Inf
    assert histogram.quantile(0.5) in (1.0, 2.0)
    with pytest.raises(ConfigurationError):
        histogram.quantile(1.5)
    with pytest.raises(ConfigurationError, match="sorted"):
        Histogram("bad", bounds=(2.0, 1.0))


def test_registry_prometheus_rendering_passes_the_validator():
    registry = Registry()
    registry.counter("flushes_total", help="Batch flushes.").inc(3)
    registry.histogram("flush_seconds").observe(0.25)
    metrics = parse_exposition(registry.render_prometheus())
    assert metrics["repro_flushes_total"]["type"] == "counter"
    assert metrics["repro_flush_seconds"]["type"] == "histogram"


def test_phase_percentiles_shape():
    stats = phase_percentiles(sorted([0.1, 0.2, 0.3, 0.4]))
    assert stats["count"] == 4
    assert stats["max"] == 0.4
    assert stats["p50"] <= stats["p95"] <= stats["p99"] <= stats["max"]


def test_phase_percentiles_empty_is_a_zeroed_row():
    # Regression: a zero-commit run (every server crashed before the first
    # epoch) produces empty latency lists; this used to index past the end.
    assert phase_percentiles([]) == {
        "count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}


def test_flush_size_summary_empty_and_populated():
    assert flush_size_summary([]) is None

    class Flush:
        def __init__(self, n):
            self.n_items = n

    summary = flush_size_summary([Flush(10), Flush(30)])
    assert summary["count"] == 2
    assert summary["sum"] == 40
    assert summary["max"] == 30


# -- tracer --------------------------------------------------------------------


def test_tracer_stamps_each_phase_once_and_measures_from_injection():
    tracer = Tracer(sample=1.0, seed=1)
    tracer.injected_many([1, 2], t=0.0)
    tracer.phase_many([1, 2], "flushed", 0.5, "server-0")
    tracer.phase_many([1, 2], "flushed", 0.9, "server-1")  # re-observation
    tracer.phase_one(1, "committed", 1.5, "server-0")
    spans = tracer.spans()
    assert spans[1]["flushed"] == 0.5  # first observation wins
    assert tracer.phase_latencies["flushed"] == [0.5, 0.5]
    assert tracer.phase_latencies["committed"] == [1.5]
    summary = tracer.phase_summary()
    assert summary["flushed"]["count"] == 2
    assert "committed" in summary and "in_ledger" not in summary


def test_tracer_sampling_is_deterministic_and_bounded():
    first = Tracer(sample=0.5, seed=42)
    second = Tracer(sample=0.5, seed=42)
    ids = list(range(200))
    first.injected_many(ids, t=0.0)
    second.injected_many(ids, t=0.0)
    assert first.spans().keys() == second.spans().keys()
    assert 0 < first.sampled_elements < 200
    assert first.sampled_elements + first.skipped_elements == 200
    # Unsampled elements never accumulate phase state.
    first.phase_many(ids, "committed", 1.0, "server-0")
    assert len(first.phase_latencies["committed"]) == first.sampled_elements
    with pytest.raises(ConfigurationError):
        Tracer(sample=0.0)
    with pytest.raises(ConfigurationError):
        Tracer(sample=1.5)


def test_tracer_annotations_and_tracks():
    tracer = Tracer()
    tracer.injected(7, t=0.0)
    tracer.phase_one(7, "in_ledger", 0.2, TRACK_LEDGER)
    tracer.annotate(0.3, "server-1", "fault:crash")
    assert tracer.tracks() == [TRACK_COLLECTOR, TRACK_LEDGER, "server-1"]
    assert (300_000, "server-1", "fault:crash", 0) in tracer.events


# -- exporters and validators --------------------------------------------------


def driven_tracer() -> Tracer:
    tracer = Tracer(sample=1.0, seed=3)
    tracer.injected_many([1, 2, 3], t=0.0)
    tracer.phase_many([1, 2, 3], "flushed", 0.25, "server-0")
    tracer.phase_many([1, 2], "in_ledger", 0.5, TRACK_LEDGER)
    tracer.phase_one(1, "committed", 0.75, "server-0")
    tracer.annotate(0.8, "server-1", "membership:join")
    return tracer


def test_chrome_export_validates_and_names_every_track():
    text = export_chrome(driven_tracer(), label="unit")
    stats = validate_chrome_trace(text)
    assert stats["tracks"] == ["collector", "ledger", "server-0", "server-1"]
    assert stats["events"] == 5
    document = json.loads(text)
    assert document["displayTimeUnit"] == "ms"
    # All timestamps are integer microseconds (byte-stable in JSON).
    assert all(isinstance(e["ts"], int)
               for e in document["traceEvents"] if e["ph"] == "i")


def test_jsonl_export_validates_and_round_trips_spans():
    text = export_jsonl(driven_tracer(), label="unit")
    stats = validate_jsonl_trace(text)
    assert stats == {"events": 5, "spans": 3,
                     "tracks": ["collector", "ledger", "server-0", "server-1"]}
    span_lines = [json.loads(line) for line in text.splitlines()
                  if '"type":"span"' in line]
    by_id = {record["element_id"]: record["phases"] for record in span_lines}
    assert by_id[1] == {"injected": 0, "flushed": 250_000,
                        "in_ledger": 500_000, "committed": 750_000}


def test_exports_are_byte_deterministic():
    assert export_chrome(driven_tracer()) == export_chrome(driven_tracer())
    assert export_jsonl(driven_tracer()) == export_jsonl(driven_tracer())


def test_write_trace_sniffs_format_and_rejects_unknown(tmp_path):
    chrome = write_trace(driven_tracer(), tmp_path / "t.trace.json")
    jsonl = write_trace(driven_tracer(), tmp_path / "t.trace.jsonl",
                        fmt="jsonl")
    assert validate_trace_file(chrome)["format"] == "chrome"
    assert validate_trace_file(jsonl)["format"] == "jsonl"
    with pytest.raises(ConfigurationError, match="unknown trace format"):
        write_trace(driven_tracer(), tmp_path / "t.bin", fmt="protobuf")


def test_validators_reject_structural_violations():
    with pytest.raises(ConfigurationError, match="unnamed track"):
        validate_chrome_trace(json.dumps(
            {"traceEvents": [{"name": "x", "ph": "i", "pid": 0,
                              "tid": 9, "ts": 1}]}))
    with pytest.raises(ConfigurationError, match="ts must be"):
        validate_chrome_trace(json.dumps(
            {"traceEvents": [{"args": {"name": "t"}, "name": "thread_name",
                              "ph": "M", "pid": 0, "tid": 0},
                             {"name": "x", "ph": "i", "pid": 0, "tid": 0,
                              "ts": 0.5}]}))
    with pytest.raises(ConfigurationError, match="header"):
        validate_jsonl_trace('{"type":"event"}\n')


# -- traced runs ---------------------------------------------------------------


def test_traced_run_carries_telemetry_and_matches_untraced_outputs():
    reset_run_counters()
    untraced = run(traced_scenario().build().with_overrides(trace_sample=None),
                   seed=11)
    reset_run_counters()
    traced = run(traced_scenario(), seed=11)
    # Tracing never touches sim.rng: the simulation outputs are identical.
    assert traced.committed == untraced.committed
    assert traced.commit_fractions == untraced.commit_fractions
    telemetry = traced.telemetry
    assert telemetry is not None
    assert telemetry["sample"] == 1.0
    assert telemetry["sampled_elements"] == traced.injected
    phases = telemetry["phases"]
    assert set(phases) <= set(PHASES[1:])
    assert phases["committed"]["count"] == traced.committed
    counters = telemetry["counters"]
    assert counters["verify_cache_hits"] + counters["verify_cache_misses"] > 0
    assert counters["events_executed"] > 0
    # The untraced artifact stays on the pre-observability schema.
    assert untraced.telemetry is None
    assert "telemetry" not in untraced.to_dict()
    assert "trace_sample" not in untraced.to_dict()["config"]


def test_traced_result_round_trips_through_json():
    reset_run_counters()
    result = run(traced_scenario(), seed=11)
    data = result.to_dict()
    assert data["config"]["trace_sample"] == 1.0
    restored = RunResult.from_dict(json.loads(result.to_json()))
    assert restored.telemetry == result.telemetry
    assert restored.experiment_config().trace_sample == 1.0


def test_builder_trace_round_trips_and_validates():
    config = traced_scenario().build()
    assert config.trace_sample == 1.0
    from repro.api.builder import ScenarioBuilder
    assert ScenarioBuilder.from_config(config).build().trace_sample == 1.0
    with pytest.raises(ConfigurationError):
        Scenario.hashchain().trace(0.0)
    with pytest.raises(ConfigurationError):
        Scenario.hashchain().trace(2.0)


def test_goldens_stay_byte_identical_after_a_traced_run_in_process():
    """Counter-reset hygiene: a traced run must not poison later goldens."""
    reset_run_counters()
    run(traced_scenario(), seed=11)
    reset_run_counters()
    result = run("smoke", seed=7)
    golden = (GOLDEN_DIR / "smoke.json").read_text()
    assert result.to_json() + "\n" == golden


@pytest.mark.parametrize("fmt,suffix", [("chrome", ".trace.json"),
                                        ("jsonl", ".trace.jsonl")])
def test_trace_files_are_byte_identical_across_worker_counts(
        tmp_path, fmt, suffix):
    def spec(tag: str, name: str) -> RunSpec:
        return RunSpec(name=name, seed=7, trace_sample=1.0, trace_format=fmt,
                       trace_out=str(tmp_path / f"{tag}-{name.replace('/', '_')}{suffix}"))

    scenarios = ["smoke", "bench/vanilla"]
    run_specs([spec("serial", name) for name in scenarios], jobs=1)
    run_specs([spec("pool", name) for name in scenarios], jobs=4)
    for name in scenarios:
        safe = name.replace("/", "_")
        serial = (tmp_path / f"serial-{safe}{suffix}").read_bytes()
        pooled = (tmp_path / f"pool-{safe}{suffix}").read_bytes()
        assert serial == pooled
        assert validate_trace_file(tmp_path / f"pool-{safe}{suffix}")[
            "format"] == fmt


def test_execute_spec_traced_result_matches_untraced_simulation():
    traced = execute_spec(RunSpec(name="smoke", seed=7, trace_sample=1.0))
    untraced = execute_spec(RunSpec(name="smoke", seed=7))
    assert traced.committed == untraced.committed
    assert traced.telemetry is not None and untraced.telemetry is None


# -- commit latency memoisation (PR 8 seam) ------------------------------------


def test_commit_latencies_memoised_until_next_commit():
    from repro.analysis.metrics import MetricsCollector
    from repro.workload.elements import make_element

    metrics = MetricsCollector()
    elements = [make_element(f"client-{i}", 100) for i in range(3)]
    for element in elements:
        metrics.record_injected(element, time=0.0)
    metrics.record_epoch_committed(1, elements[:2], time=1.0,
                                   observer="server-0")
    first = metrics.commit_latencies()
    assert first == [1.0, 1.0]
    assert metrics.commit_latencies() is first  # cache hit: same object
    metrics.record_epoch_committed(2, elements[2:], time=2.0,
                                   observer="server-0")
    second = metrics.commit_latencies()
    assert second is not first
    assert second == [1.0, 1.0, 2.0]


# -- prometheus exposition -----------------------------------------------------


def test_render_snapshot_passes_exposition_validation():
    runtime_snapshot = {
        "label": "unit", "algorithm": "hashchain", "now": 3.25, "ticks": 5,
        "injected": 100, "committed": 90, "committed_this_run": 90,
        "recovered_commits": 0, "committed_fraction": 0.9,
        "first_commit": 0.5, "rolling_throughput": 42.0,
        "ingress": {"accepted": 100, "deferred": 0, "rejected": 0,
                    "drained": 100, "server_rejected": 0,
                    "queue_depth": 0, "queue_limit": 10_000},
        "servers": {"server-0": {"crashed": False, "byzantine": False,
                                 "backlog": 2, "epoch": 7}},
        "ledger": {"height": 12, "pending": 1},
        "recovered_blocks": 0,
        "membership": {"epoch": 1, "size": 4, "quorum": 3},
    }
    tracer = driven_tracer()
    text = render_snapshot(runtime_snapshot,
                           healthz={"status": "ok", "live_servers": 4,
                                    "quorum": 3},
                           tracer=tracer)
    metrics = parse_exposition(text)
    assert metrics["repro_injected_total"]["samples"] == [({}, 100.0)]
    verdicts = {labels["verdict"]: value for labels, value
                in metrics["repro_ingress_total"]["samples"]}
    assert verdicts["accepted"] == 100.0
    assert metrics["repro_server_backlog"]["samples"] == [
        ({"server": "server-0"}, 2.0)]
    assert metrics["repro_healthy"]["samples"] == [({}, 1.0)]
    summary = metrics["repro_phase_latency_seconds"]
    assert summary["type"] == "summary"
    assert any(labels.get("quantile") == "0.99"
               for labels, _ in summary["samples"])


def test_parse_exposition_rejects_malformed_text():
    with pytest.raises(ConfigurationError, match="without a # TYPE"):
        parse_exposition("repro_x 1\n")
    with pytest.raises(ConfigurationError, match="invalid metric type"):
        parse_exposition("# TYPE repro_x widget\nrepro_x 1\n")
    with pytest.raises(ConfigurationError, match="non-numeric"):
        parse_exposition("# TYPE repro_x gauge\nrepro_x banana\n")
    with pytest.raises(ConfigurationError, match="newline"):
        parse_exposition("# TYPE repro_x gauge\nrepro_x 1")
    with pytest.raises(ConfigurationError, match=r"\+Inf"):
        parse_exposition("# TYPE repro_h histogram\n"
                         'repro_h_bucket{le="1.0"} 1\n'
                         "repro_h_sum 0.5\nrepro_h_count 1\n")


# -- http surfacing ------------------------------------------------------------


def test_http_prometheus_format_and_health_caching_headers():
    from repro.service.http import MetricsEndpoint
    from repro.service.runtime import ServiceRuntime

    scenario = (Scenario.hashchain().servers(4).rate(100).collector(10)
                .inject_for(5).drain(30).backend("ideal").trace(1.0))
    runtime = ServiceRuntime(scenario, seed=5)
    runtime.submit_many(50)
    runtime.run_for(4.0)
    endpoint = MetricsEndpoint(runtime)
    try:
        with urllib.request.urlopen(
                endpoint.url + "/metrics?format=prometheus") as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4")
            text = response.read().decode()
        metrics = parse_exposition(text)
        assert metrics["repro_injected_total"]["samples"] == [({}, 50.0)]
        assert "repro_phase_latency_seconds" in metrics
        # JSON stays the default scrape format.
        with urllib.request.urlopen(endpoint.url + "/metrics") as response:
            assert response.headers["Content-Type"] == "application/json"
            assert json.loads(response.read())["injected"] == 50
        with urllib.request.urlopen(endpoint.url + "/healthz") as response:
            assert response.headers["Cache-Control"] == "no-store"
            assert response.headers["Retry-After"] is None
        for server in list(runtime.deployment.servers):
            runtime.deployment.crash_node(server.name)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(endpoint.url + "/healthz")
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Cache-Control"] == "no-store"
        assert excinfo.value.headers["Retry-After"] == "1"
    finally:
        endpoint.stop()
        runtime.stop()
