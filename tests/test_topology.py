"""The pluggable deployment architecture: registries, topologies, regions.

Covers the tentpole of the topology refactor: the algorithm/ledger/latency
registries (including third-party registrations from user code, no core
edits), the ``TopologyConfig`` layer, the regional latency models, the
builder knobs (``.region()/.wan()/.link()/.mixed()``), the new scenario
families, and the golden byte-identity guarantee for legacy homogeneous
configs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import RunResult, Scenario, get_scenario, run, scenario_names
from repro.api.cli import main
from repro.api.parallel import reset_run_counters
from repro.config import ExperimentConfig, RegionSpec, SetchainConfig, TopologyConfig
from repro.core.deployment import Deployment, build_deployment, build_latency
from repro.core.vanilla import VanillaServer
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, RegionalLatency
from repro.sim.rng import DeterministicRNG
from repro.topology import (
    DeploymentContext,
    LedgerBackend,
    evenly_split,
    has_algorithm,
    register_algorithm,
    register_latency_profile,
    register_ledger_backend,
    unregister_algorithm,
    unregister_latency_profile,
    unregister_ledger_backend,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

# (registered scenario, golden artifact) pairs spanning the three algorithms,
# captured from the pre-refactor deployment builder.
GOLDEN_RUNS = [
    ("smoke", "smoke.json"),
    ("bench/vanilla", "bench__vanilla.json"),
    ("bench/compresschain", "bench__compresschain.json"),
]


# -- golden byte-identity ------------------------------------------------------

@pytest.mark.parametrize("scenario,artifact", GOLDEN_RUNS)
def test_legacy_scenarios_are_byte_identical_to_pre_refactor_goldens(
        scenario, artifact):
    """Homogeneous LAN configs must build byte-identical RunResult JSON."""
    reset_run_counters()
    result = run(scenario, seed=7)
    golden = (GOLDEN_DIR / artifact).read_text()
    assert result.to_json() + "\n" == golden


def test_homogeneous_artifacts_carry_no_topology_or_regions_keys():
    reset_run_counters()
    result = run("smoke", seed=3)
    data = result.to_dict()
    assert "topology" not in data["config"]
    assert "regions" not in data
    assert result.regions is None


# -- registries ----------------------------------------------------------------

def test_registering_duplicate_algorithm_is_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_algorithm("vanilla")(lambda ctx, name, keypair: None)


def test_unknown_algorithm_gets_did_you_mean():
    with pytest.raises(ConfigurationError, match="hashchain"):
        Scenario("hashchian")
    with pytest.raises(ConfigurationError, match="unknown algorithm"):
        ExperimentConfig(algorithm="bitcoin")


def test_unknown_backend_and_profile_get_did_you_mean():
    with pytest.raises(ConfigurationError, match="ideal"):
        Scenario.hashchain().backend("idael")
    with pytest.raises(ConfigurationError, match="wan"):
        Scenario.hashchain().wan(intra="wann")


def test_third_party_algorithm_runs_in_a_deployment_without_core_edits():
    """A user-registered algorithm is valid everywhere a name is and runs e2e."""

    class ShoutingVanillaServer(VanillaServer):
        algorithm = "shouting-vanilla"

    @register_algorithm("shouting-vanilla")
    def _build(ctx: DeploymentContext, name, keypair):
        return ShoutingVanillaServer(name, ctx.sim, ctx.config.setchain,
                                     ctx.scheme, keypair, metrics=ctx.metrics)

    try:
        assert has_algorithm("shouting-vanilla")
        config = (Scenario("shouting-vanilla").servers(4).rate(200)
                  .inject_for(5).drain(40).backend("ideal").build())
        deployment = build_deployment(config)
        assert all(isinstance(s, ShoutingVanillaServer)
                   for s in deployment.servers)
        deployment.start()
        deployment.run_to_completion()
        assert deployment.committed_fraction == 1.0
        assert deployment.check_properties() == []
    finally:
        unregister_algorithm("shouting-vanilla")
    with pytest.raises(ConfigurationError):
        Scenario("shouting-vanilla")


def test_third_party_algorithm_in_a_region_of_a_mixed_cluster():
    @register_algorithm("vanilla-prime")
    def _build(ctx: DeploymentContext, name, keypair):
        return VanillaServer(name, ctx.sim, ctx.config.setchain, ctx.scheme,
                             keypair, metrics=ctx.metrics)

    try:
        config = (Scenario.hashchain()
                  .region("prime", 2, "vanilla-prime")
                  .region("hash", 2, "hashchain")
                  .byzantine(f=1).rate(200).collector(20)
                  .inject_for(5).drain(60).backend("ideal").build())
        deployment = build_deployment(config)
        deployment.start()
        deployment.run_to_completion()
        assert deployment.committed_fraction == 1.0
        assert deployment.check_properties() == []
    finally:
        unregister_algorithm("vanilla-prime")


def test_third_party_ledger_backend_and_latency_profile():
    from repro.ledger.ideal import IdealLedger

    @register_ledger_backend("ideal-twin")
    def _backend(sim, network, n, config):
        ledger = IdealLedger(sim, config.ledger)
        return ledger, [ledger.handle_for(f"server-{i}") for i in range(n)]

    @register_latency_profile("zero")
    def _zero(network_delay):
        return ConstantLatency(base=0.0, extra_delay=network_delay)

    try:
        config = (Scenario.hashchain().region("site", 4)
                  .wan(inter_ms=0, jitter_ms=0, intra="zero")
                  .rate(200).collector(20).inject_for(5).drain(40)
                  .backend("ideal-twin").build())
        assert config.ledger_backend == "ideal-twin"
        deployment = build_deployment(config)
        assert isinstance(deployment.ledger_backend, IdealLedger)
        assert isinstance(deployment.ledger_backend, LedgerBackend)
        deployment.start()
        deployment.run_to_completion()
        assert deployment.committed_fraction == 1.0
    finally:
        unregister_ledger_backend("ideal-twin")
        unregister_latency_profile("zero")


# -- TopologyConfig ------------------------------------------------------------

def test_topology_validation():
    with pytest.raises(ConfigurationError, match="at least one region"):
        TopologyConfig(regions=())
    with pytest.raises(ConfigurationError, match="duplicate region names"):
        TopologyConfig(regions=(RegionSpec("us", 2), RegionSpec("us", 2)))
    with pytest.raises(ConfigurationError, match="unknown region"):
        TopologyConfig(regions=(RegionSpec("us", 2), RegionSpec("eu", 2)),
                       links=(("us", "mars", 0.04),))
    with pytest.raises(ConfigurationError, match="distinct regions"):
        TopologyConfig(regions=(RegionSpec("us", 2),), links=(("us", "us", 0.01),))
    with pytest.raises(ConfigurationError, match="duplicate link"):
        TopologyConfig(regions=(RegionSpec("us", 2), RegionSpec("eu", 2)),
                       links=(("us", "eu", 0.04), ("eu", "us", 0.08)))
    with pytest.raises(ConfigurationError, match="at least one server"):
        RegionSpec("us", 0)


def test_topology_must_match_n_servers():
    topology = TopologyConfig(regions=(RegionSpec("us", 2), RegionSpec("eu", 2)))
    with pytest.raises(ConfigurationError, match="n_servers"):
        ExperimentConfig(setchain=SetchainConfig(n_servers=10), topology=topology)


def test_topology_rejects_unknown_region_algorithm():
    topology = TopologyConfig(regions=(RegionSpec("us", 4, "no-such-algo"),))
    with pytest.raises(ConfigurationError, match="no-such-algo"):
        ExperimentConfig(setchain=SetchainConfig(n_servers=4), topology=topology)


def test_topology_round_trips_through_dict():
    topology = TopologyConfig(
        regions=(RegionSpec("us", 3, "vanilla"), RegionSpec("eu", 2)),
        intra_profile="wan", inter_delay=0.05, inter_jitter=0.01,
        links=(("us", "eu", 0.04),))
    assert TopologyConfig.from_dict(topology.to_dict()) == topology


def test_evenly_split_is_deterministic():
    topology = evenly_split(["a", "b", "c"], 10)
    assert [r.servers for r in topology.regions] == [4, 3, 3]
    with pytest.raises(ConfigurationError):
        evenly_split(["a", "b", "c"], 2)


def test_assignments_and_heterogeneity():
    topology = TopologyConfig(regions=(RegionSpec("us", 1, "vanilla"),
                                       RegionSpec("eu", 2)))
    assert topology.assignments("hashchain") == [
        ("us", "vanilla"), ("eu", "hashchain"), ("eu", "hashchain")]
    assert topology.is_heterogeneous("hashchain")
    assert not topology.is_heterogeneous("vanilla")
    assert topology.link_delay("us", "eu") == 0.0  # default inter_delay


# -- RegionalLatency -----------------------------------------------------------

def test_regional_latency_adds_cross_region_delay():
    rng = DeterministicRNG(1)
    model = RegionalLatency({"a": "us", "b": "us", "c": "eu"},
                            intra=ConstantLatency(base=0.001),
                            inter_delay=0.040)
    assert model.delay(rng, "a", "b", 0) == pytest.approx(0.001)
    assert model.delay(rng, "a", "c", 0) == pytest.approx(0.041)
    # Unknown nodes are treated as co-located.
    assert model.delay(rng, "a", "mystery", 0) == pytest.approx(0.001)


def test_regional_latency_link_matrix_and_jitter():
    rng = DeterministicRNG(2)
    model = RegionalLatency(
        {"a": "us", "b": "eu", "c": "ap"},
        intra=ConstantLatency(base=0.0),
        inter_delay=0.080, inter_jitter=0.010,
        links={frozenset(("us", "eu")): 0.040})
    assert model.pair_delay("us", "eu") == pytest.approx(0.040)
    assert model.pair_delay("us", "ap") == pytest.approx(0.080)
    assert model.pair_delay("us", "us") == 0.0
    for _ in range(50):
        d = model.delay(rng, "a", "b", 0)
        assert 0.040 <= d <= 0.050 + 1e-12


def test_regional_latency_rejects_negative_parameters():
    with pytest.raises(ConfigurationError):
        RegionalLatency({}, intra=ConstantLatency(), inter_delay=-1)
    with pytest.raises(ConfigurationError):
        RegionalLatency({}, intra=ConstantLatency(),
                        links={frozenset(("a", "b")): -0.1})


def test_deployment_colocates_ledger_nodes_with_servers():
    config = (Scenario.hashchain().region("us", 2).region("eu", 2)
              .wan(inter_ms=40, jitter_ms=0).rate(200).build())
    model = build_latency(config)
    assert isinstance(model, RegionalLatency)
    assert model.region_of == {"server-0": "us", "server-1": "us",
                               "server-2": "eu", "server-3": "eu"}
    # Ledger nodes are mapped per handle once the backend builds them, so
    # the co-location works for any backend, not one naming convention.
    deployment = build_deployment(config)
    regional = deployment.network.latency
    assert isinstance(regional, RegionalLatency)
    assert regional.region_of["cometbft-0"] == "us"
    assert regional.region_of["cometbft-3"] == "eu"


# -- builder knobs -------------------------------------------------------------

def test_region_knob_sets_server_count_from_regions():
    config = Scenario.hashchain().region("us", 3).region("eu", 4).build()
    assert config.setchain.n_servers == 7
    assert config.topology.region_names == ("us", "eu")


def test_servers_conflicting_with_regions_is_rejected():
    with pytest.raises(ConfigurationError, match="conflicts"):
        Scenario.hashchain().servers(10).region("us", 2).region("eu", 2).build()


def test_wan_without_regions_is_rejected_at_build():
    with pytest.raises(ConfigurationError, match="declare regions"):
        Scenario.hashchain().wan(inter_ms=60).build()


def test_mixed_knob_builds_one_region_per_algorithm():
    config = Scenario.hashchain().mixed(vanilla=2, hashchain_light=2).build()
    assert config.setchain.n_servers == 4
    assert [(r.name, r.algorithm) for r in config.topology.regions] == [
        ("vanilla", "vanilla"), ("hashchain-light", "hashchain-light")]
    assert config.is_heterogeneous


def test_mixed_rejects_unknown_algorithm_with_hint():
    with pytest.raises(ConfigurationError, match="vanilla"):
        Scenario.hashchain().mixed(vanila=2)
    with pytest.raises(ConfigurationError, match="at least one"):
        Scenario.hashchain().mixed()


def test_mixed_accepts_third_party_names_containing_underscores():
    register_algorithm("my_algo")(
        lambda ctx, name, keypair: VanillaServer(
            name, ctx.sim, ctx.config.setchain, ctx.scheme, keypair,
            metrics=ctx.metrics))
    try:
        config = Scenario.hashchain().mixed(my_algo=2, hashchain=2).build()
        assert [r.algorithm for r in config.topology.regions] == [
            "my_algo", "hashchain"]
    finally:
        unregister_algorithm("my_algo")


def test_builder_from_config_round_trips_topology():
    from repro.api.builder import ScenarioBuilder
    config = (Scenario.hashchain().region("us", 2).region("eu", 2)
              .wan(inter_ms=60, jitter_ms=5).link("us", "eu", 40)
              .rate(500).build())
    rebuilt = ScenarioBuilder.from_config(config).build()
    assert rebuilt.topology == config.topology
    assert rebuilt == config


def test_builder_forks_do_not_alias_topology():
    base = Scenario.hashchain().region("us", 2)
    two = base.region("eu", 2)
    # Forking into `two` must not have mutated `base`'s region list.
    assert base.build().setchain.n_servers == 2
    assert two.build().setchain.n_servers == 4
    with pytest.raises(ConfigurationError, match="conflicts"):
        base.servers(4).build()


# -- results plumbing ----------------------------------------------------------

def test_run_result_regions_round_trip_and_rebuild():
    reset_run_counters()
    result = run("wan/hashchain/smoke", seed=5)
    assert result.regions is not None
    assert set(result.regions) == {"us", "eu"}
    for stats in result.regions.values():
        assert stats["servers"] == 2
        assert stats["added"] > 0
    assert sum(s["committed"] for s in result.regions.values()) == result.committed
    clone = RunResult.from_json(result.to_json())
    assert clone == result
    rebuilt = clone.experiment_config()
    assert rebuilt.topology is not None
    assert rebuilt.topology.region_names == ("us", "eu")


# -- scenario families ---------------------------------------------------------

def test_catalog_registers_at_least_thirty_topology_scenarios():
    names = (scenario_names(contains="wan/") + scenario_names(contains="geo/")
             + scenario_names(contains="mixed/"))
    assert len(names) >= 30


@pytest.mark.parametrize("family", ["wan/", "geo/", "mixed/"])
def test_every_topology_scenario_builds_a_valid_config(family):
    names = scenario_names(contains=family)
    assert names
    for name in names:
        config = get_scenario(name)
        assert config.topology is not None
        assert config.topology.n_servers == config.setchain.n_servers


def test_topology_scenarios_run_end_to_end_via_cli(tmp_path, capsys):
    artifact = tmp_path / "geo.json"
    assert main(["run", "geo/hashchain/smoke", "--quiet",
                 "--json", str(artifact)]) == 0
    capsys.readouterr()
    assert main(["report", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "per-region breakdown" in out
    assert "ap" in out


def test_list_scenarios_groups_by_family_and_filters(capsys):
    assert main(["list-scenarios"]) == 0
    out = capsys.readouterr().out
    assert "[wan]" in out and "[geo]" in out and "[mixed]" in out
    assert main(["list-scenarios", "--family", "mixed"]) == 0
    out = capsys.readouterr().out
    assert "[mixed]" in out and "[wan]" not in out
    assert main(["list-scenarios", "--family", "no-such-family"]) == 1


def test_list_scenarios_json_includes_family(capsys):
    import json
    assert main(["list-scenarios", "--family", "geo", "--json"]) == 0
    records = [json.loads(line)
               for line in capsys.readouterr().out.splitlines()]
    assert records
    assert all(r["family"] == "geo" for r in records)


# -- deployment shape ----------------------------------------------------------

def test_heterogeneous_deployment_builds_declared_algorithms():
    config = get_scenario("mixed/smoke")
    deployment = build_deployment(config)
    algorithms = [server.algorithm for server in deployment.servers]
    assert algorithms == ["vanilla", "vanilla", "hashchain", "hashchain"]
    assert deployment.region_of == {"server-0": "vanilla",
                                    "server-1": "vanilla",
                                    "server-2": "hashchain",
                                    "server-3": "hashchain"}
    assert isinstance(deployment, Deployment)
