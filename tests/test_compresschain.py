"""Algorithm-level tests for Compresschain over the ideal ledger."""

import pytest

from repro.compressor.base import CompressedBatch
from repro.core.properties import check_all
from repro.workload.elements import make_element

from conftest import build_servers


@pytest.fixture
def cluster(sim, network, scheme, small_setchain_config, ideal_ledger):
    return build_servers("compresschain", sim, network, scheme,
                         small_setchain_config, ideal_ledger)


def test_add_goes_to_collector_not_ledger(cluster, ideal_ledger):
    server = cluster[0]
    server.add(make_element("c", 100))
    assert len(server.collector) == 1
    assert ideal_ledger.pending_count() == 0


def test_collector_limit_triggers_compressed_append(sim, cluster, ideal_ledger,
                                                    small_setchain_config):
    server = cluster[0]
    for _ in range(small_setchain_config.collector_limit):
        server.add(make_element("c", 100))
    assert server.batches_appended == 1
    assert len(server.collector) == 0
    assert ideal_ledger.pending_count() == 1


def test_collector_timeout_flushes_partial_batch(sim, cluster):
    server = cluster[0]
    server.add(make_element("c", 100))
    sim.run_until(1.0)  # timeout is 0.5s in the fixture config
    assert server.batches_appended == 1


def test_each_batch_becomes_one_epoch(sim, cluster, small_setchain_config):
    limit = small_setchain_config.collector_limit
    # Two full batches from server 0.
    for _ in range(2 * limit):
        cluster[0].add(make_element("c", 100))
    sim.run_until(10.0)
    view = cluster[1].get()
    assert view.epoch >= 2
    sizes = sorted(len(e) for e in view.history.values() if e)
    assert limit in sizes


def test_elements_commit_with_quorum_proofs(sim, cluster, small_setchain_config):
    elements = [make_element("c", 100) for _ in range(25)]
    for i, element in enumerate(elements):
        cluster[i % 4].add(element)
    sim.run_until(30.0)
    views = {s.name: s.get() for s in cluster}
    assert not check_all(views, quorum=small_setchain_config.quorum, all_added=elements)


def test_compression_reduces_appended_bytes(sim, cluster, ideal_ledger,
                                            small_setchain_config):
    server = cluster[0]
    for _ in range(small_setchain_config.collector_limit):
        server.add(make_element("c", 438))
    tx = ideal_ledger._pending[0]
    assert isinstance(tx.payload, CompressedBatch)
    assert tx.size_bytes < small_setchain_config.collector_limit * 438
    assert tx.payload.ratio > 2.0


def test_foreign_garbage_transactions_are_skipped(sim, cluster, ideal_ledger):
    from repro.ledger.types import new_transaction
    ideal_ledger.submit(new_transaction("not-a-batch", 50, "byzantine"))
    cluster[0].add(make_element("c", 100))
    sim.run_until(5.0)
    views = {s.name: s.get() for s in cluster}
    assert all(view.epoch >= 1 for view in views.values())
    assert not check_all(views, quorum=3)


def test_invalid_elements_inside_batches_are_filtered(sim, cluster, ideal_ledger):
    from repro.compressor.model import ModelCompressor
    from repro.ledger.types import new_transaction
    bad = make_element("byz", 100, valid=False)
    good_foreign = make_element("byz", 100)
    batch = ModelCompressor().compress([bad, good_foreign], 200)
    ideal_ledger.submit(new_transaction(batch, batch.compressed_size, "byzantine"))
    sim.run_until(5.0)
    for server in cluster:
        view = server.get()
        assert bad not in view.the_set
        assert good_foreign in view.the_set
        assert good_foreign in view.elements_in_epochs()


def test_light_mode_produces_same_epochs(sim, network, scheme, small_setchain_config,
                                         ideal_ledger):
    cluster = build_servers("compresschain", sim, network, scheme,
                            small_setchain_config, ideal_ledger, light=True)
    elements = [make_element("c", 100) for _ in range(15)]
    for i, element in enumerate(elements):
        cluster[i % 4].add(element)
    sim.run_until(20.0)
    views = {s.name: s.get() for s in cluster}
    assert not check_all(views, quorum=small_setchain_config.quorum, all_added=elements)
    assert all(s.light for s in cluster)
