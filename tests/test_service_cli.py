"""CLI surface of service mode: ``repro serve`` and ``repro service inspect``."""

import json
import sqlite3

from repro.api.cli import main
from repro.workload.traces import record_trace


def test_serve_streams_persists_and_probes_metrics(tmp_path, capsys):
    db = tmp_path / "serve.sqlite"
    rc = main(["serve", "service/smoke", "--db", str(db),
               "--rate", "250", "--duration", "4", "--settle", "6",
               "--min-availability", "0.9"])
    out = capsys.readouterr().out
    assert rc == 0
    assert db.exists()
    assert "streamed 1000 accepted+deferred" in out
    assert "/metrics availability: 100.0%" in out
    assert "ledger height" in out


def test_serve_reopens_existing_database(tmp_path, capsys):
    db = tmp_path / "resume.sqlite"
    assert main(["serve", "service/smoke", "--db", str(db), "--rate", "100",
                 "--duration", "3", "--settle", "5", "--no-http"]) == 0
    capsys.readouterr()
    assert main(["serve", "service/smoke", "--db", str(db), "--rate", "100",
                 "--duration", "3", "--settle", "5", "--no-http"]) == 0
    out = capsys.readouterr().out
    assert "resumed" in out
    assert "recovered commits" in out


def test_serve_replays_a_recorded_trace(tmp_path, capsys):
    trace = record_trace(rate=200.0, duration=3.0, clients=["c0", "c1"], seed=4)
    path = tmp_path / "trace.json"
    trace.to_json(path)
    rc = main(["serve", "service/smoke", "--trace", str(path),
               "--duration", "3", "--settle", "6", "--no-http"])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"streamed {len(trace)} accepted+deferred" in out
    assert "100.0%" in out  # everything replayed committed


def test_serve_writes_run_result_artifact(tmp_path):
    artifact = tmp_path / "result.json"
    rc = main(["serve", "service/smoke", "--rate", "100", "--duration", "2",
               "--settle", "5", "--no-http", "--quiet",
               "--json", str(artifact)])
    assert rc == 0
    data = json.loads(artifact.read_text())
    assert data["injected"] == 200
    assert data["config"]["algorithm"] == "hashchain"


def test_service_inspect_renders_audit(tmp_path, capsys):
    db = tmp_path / "audit.sqlite"
    assert main(["serve", "service/smoke", "--db", str(db), "--rate", "100",
                 "--duration", "3", "--settle", "5", "--no-http",
                 "--quiet"]) == 0
    capsys.readouterr()
    assert main(["service", "inspect", str(db)]) == 0
    out = capsys.readouterr().out
    assert "ledger audit" in out
    assert "contiguous" in out
    assert "hash-batch" in out


def test_service_inspect_json_output(tmp_path, capsys):
    db = tmp_path / "audit.sqlite"
    assert main(["serve", "service/smoke", "--db", str(db), "--rate", "100",
                 "--duration", "2", "--settle", "5", "--no-http",
                 "--quiet"]) == 0
    capsys.readouterr()
    assert main(["service", "inspect", str(db), "--json"]) == 0
    audit = json.loads(capsys.readouterr().out)
    assert audit["contiguous"] is True
    assert audit["height"] > 0


def test_service_inspect_missing_database_errors(tmp_path, capsys):
    rc = main(["service", "inspect", str(tmp_path / "absent.sqlite")])
    assert rc == 1
    assert "no ledger database" in capsys.readouterr().err


def test_service_inspect_broken_chain_errors(tmp_path, capsys):
    db = tmp_path / "gap.sqlite"
    assert main(["serve", "service/smoke", "--db", str(db), "--rate", "100",
                 "--duration", "3", "--settle", "5", "--no-http",
                 "--quiet"]) == 0
    conn = sqlite3.connect(str(db))
    with conn:
        top = conn.execute("SELECT MAX(height) FROM blocks").fetchone()[0]
        conn.execute("INSERT INTO blocks (height, proposer, timestamp) "
                     "VALUES (?, 'sequencer', 99.0)", (top + 3,))
    conn.close()
    capsys.readouterr()
    rc = main(["service", "inspect", str(db)])
    assert rc == 1
    assert "non-contiguous" in capsys.readouterr().err


def test_serve_in_memory_run_needs_no_database(capsys):
    rc = main(["serve", "--rate", "50", "--duration", "2", "--settle", "4",
               "--no-http"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "in-memory ledger" in out
