"""Unit tests for timers and periodic tasks."""

import pytest

from repro.errors import SimulationError
from repro.sim.process import PeriodicTask, Timer
from repro.sim.scheduler import Simulator


def test_timer_fires_after_delay():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run_until(5.0)
    assert fired == [2.0]


def test_timer_restart_replaces_pending_expiry():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run_until(1.0)
    timer.start(3.0)  # now fires at t=4
    sim.run_until(10.0)
    assert fired == [4.0]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(1))
    timer.start(1.0)
    timer.cancel()
    sim.run_until(5.0)
    assert fired == []


def test_timer_active_flag():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert not timer.active
    timer.start(1.0)
    assert timer.active
    sim.run_until(2.0)
    assert not timer.active


def test_timer_negative_delay_raises():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    with pytest.raises(SimulationError):
        timer.start(-1.0)


def test_periodic_task_fires_at_period():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, period=1.0, callback=lambda: times.append(sim.now))
    task.start()
    sim.run_until(3.5)
    assert times == [1.0, 2.0, 3.0]
    assert task.fired == 3


def test_periodic_task_custom_offset():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, period=2.0, callback=lambda: times.append(sim.now), offset=0.5)
    task.start()
    sim.run_until(5.0)
    assert times == [0.5, 2.5, 4.5]


def test_periodic_task_stop_halts_firing():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, period=1.0, callback=lambda: times.append(sim.now))
    task.start()
    sim.run_until(2.0)
    task.stop()
    sim.run_until(10.0)
    assert times == [1.0, 2.0]
    assert not task.running


def test_periodic_task_start_is_idempotent():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, period=1.0, callback=lambda: times.append(sim.now))
    task.start()
    task.start()
    sim.run_until(2.0)
    assert times == [1.0, 2.0]


def test_periodic_task_set_period():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, period=1.0, callback=lambda: times.append(sim.now))
    task.start()
    sim.run_until(1.0)
    task.set_period(3.0)
    sim.run_until(8.0)
    assert times == [1.0, 4.0, 7.0]


def test_periodic_task_invalid_period_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        PeriodicTask(sim, period=0.0, callback=lambda: None)
    task = PeriodicTask(sim, period=1.0, callback=lambda: None)
    with pytest.raises(SimulationError):
        task.set_period(-1.0)


def test_callback_can_stop_its_own_task():
    sim = Simulator()
    times = []
    task = PeriodicTask(sim, period=1.0, callback=lambda: (times.append(sim.now), task.stop()))
    task.start()
    sim.run_until(5.0)
    assert times == [1.0]
