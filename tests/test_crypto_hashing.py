"""Tests for canonical hashing of batches and epochs."""

import hashlib

from repro.crypto.hashing import (
    canonical_bytes_of,
    hash_batch,
    hash_bytes,
    hash_epoch,
    sha512_hex,
)
from repro.workload.elements import make_element


def test_sha512_matches_hashlib():
    assert sha512_hex(b"setchain") == hashlib.sha512(b"setchain").hexdigest()
    assert hash_bytes(b"setchain") == hashlib.sha512(b"setchain").digest()


def test_hash_batch_is_order_independent():
    elements = [make_element("c", 100) for _ in range(5)]
    assert hash_batch(elements) == hash_batch(list(reversed(elements)))


def test_hash_batch_differs_for_different_content():
    a = make_element("c", 100)
    b = make_element("c", 100)
    assert hash_batch([a]) != hash_batch([b])
    assert hash_batch([a]) != hash_batch([a, b])


def test_hash_batch_of_strings_and_bytes():
    assert hash_batch(["x", "y"]) == hash_batch([b"y", b"x"])


def test_empty_batch_has_stable_hash():
    assert hash_batch([]) == hash_batch([])
    assert len(hash_batch([])) == 128  # hex sha512


def test_hash_epoch_depends_on_epoch_number():
    elements = [make_element("c", 100)]
    assert hash_epoch(1, elements) != hash_epoch(2, elements)


def test_hash_epoch_order_independent():
    elements = [make_element("c", 100) for _ in range(4)]
    assert hash_epoch(3, elements) == hash_epoch(3, tuple(reversed(elements)))


def test_hash_epoch_differs_from_batch_hash():
    elements = [make_element("c", 100)]
    assert hash_epoch(1, elements) != hash_batch(elements)


def test_canonical_bytes_of_prefers_method():
    element = make_element("c", 77)
    assert canonical_bytes_of(element) == element.canonical_bytes()
    assert canonical_bytes_of("abc") == b"abc"
    assert canonical_bytes_of(b"raw") == b"raw"
    assert canonical_bytes_of(123) == repr(123).encode()
