"""Tests for the compression substrate."""

import pytest

from repro.compressor.base import CompressedBatch
from repro.compressor.factory import make_compressor
from repro.compressor.model import ModelCompressor, paper_ratio_for_batch
from repro.compressor.zlib_compressor import ZlibCompressor
from repro.config import PAPER_COMPRESSION_RATIO
from repro.errors import ConfigurationError
from repro.workload.elements import make_element


def make_batch(n=50, size=438):
    return [make_element("c", size) for _ in range(n)]


def test_model_compressor_uses_paper_ratio_at_calibration_points():
    for collector, ratio in PAPER_COMPRESSION_RATIO.items():
        batch = make_batch(collector)
        original = sum(e.size_bytes for e in batch)
        compressed = ModelCompressor().compress(batch, original)
        assert compressed.compressed_size == pytest.approx(original / ratio, rel=0.01)
        assert compressed.ratio == pytest.approx(ratio, rel=0.01)


def test_paper_ratio_interpolates_and_clamps():
    assert paper_ratio_for_batch(50) == PAPER_COMPRESSION_RATIO[100]
    assert paper_ratio_for_batch(1000) == PAPER_COMPRESSION_RATIO[500]
    mid = paper_ratio_for_batch(300)
    assert PAPER_COMPRESSION_RATIO[100] < mid < PAPER_COMPRESSION_RATIO[500]


def test_model_compressor_fixed_ratio():
    batch = make_batch(10)
    compressed = ModelCompressor(ratio=4.0).compress(batch, 4000)
    assert compressed.compressed_size == 1000
    with pytest.raises(ValueError):
        ModelCompressor(ratio=0)


def test_model_compressed_batch_size_reproduces_paper_measurement():
    """Paper: compressed batch ~16,000 bytes for collector 100 (438-byte elements)."""
    batch = make_batch(100)
    original = sum(e.size_bytes for e in batch)
    compressed = ModelCompressor().compress(batch, original)
    assert 14_000 <= compressed.compressed_size <= 18_000


def test_decompress_returns_original_items():
    batch = make_batch(7)
    compressed = ModelCompressor().compress(batch, 7 * 438)
    assert ModelCompressor().decompress(compressed) == tuple(batch)


def test_decompress_foreign_payload_returns_empty():
    assert ModelCompressor().decompress("garbage") == ()


def test_zlib_roundtrip_and_ratio():
    batch = make_batch(50)
    original = sum(e.size_bytes for e in batch)
    compressed = ZlibCompressor().compress(batch, original)
    assert isinstance(compressed, CompressedBatch)
    assert compressed.compressed_size > 0
    assert compressed.items == tuple(batch)
    assert compressed.ratio > 1.0  # canonical encodings are compressible


def test_zlib_level_validation():
    with pytest.raises(ValueError):
        ZlibCompressor(level=42)


def test_compressed_batch_len_and_infinite_ratio():
    batch = CompressedBatch(items=("a",), compressed_size=0, original_size=10, codec="t")
    assert len(batch) == 1
    assert batch.ratio == float("inf")


def test_factory_dispatch_and_errors():
    assert isinstance(make_compressor("model"), ModelCompressor)
    assert isinstance(make_compressor("zlib", level=1), ZlibCompressor)
    assert make_compressor("model", ratio=2.0).ratio == 2.0
    with pytest.raises(ConfigurationError):
        make_compressor("brotli")
    with pytest.raises(ConfigurationError):
        make_compressor("model", bogus=1)
    with pytest.raises(ConfigurationError):
        make_compressor("zlib", bogus=1)
