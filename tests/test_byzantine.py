"""Fault-injection tests: correct servers keep their guarantees under Byzantine peers."""

import pytest

from repro.compressor.model import ModelCompressor
from repro.core.byzantine import (
    EquivocatingProofServer,
    InvalidElementVanillaServer,
    SilentServer,
    WithholdingHashchainServer,
    WrongHashHashchainServer,
    make_invalid_element,
)
from repro.core.compresschain import CompresschainServer
from repro.core.hashchain import HashchainServer
from repro.core.properties import check_all, check_consistent_gets, check_unique_epoch
from repro.core.vanilla import VanillaServer
from repro.workload.elements import make_element


def build_mixed_cluster(sim, network, scheme, config, ledger, byzantine_cls,
                        correct_cls, byzantine_count=1, **byz_kwargs):
    """n-server cluster where the last ``byzantine_count`` servers misbehave."""
    servers = []
    for index in range(config.n_servers):
        name = f"server-{index}"
        keypair = scheme.generate_keypair(name)
        byzantine = index >= config.n_servers - byzantine_count
        cls = byzantine_cls if byzantine else correct_cls
        kwargs = dict(byz_kwargs) if byzantine else {}
        if issubclass(cls, HashchainServer):
            server = cls(name, sim, config, scheme, keypair, **kwargs)
        elif issubclass(cls, CompresschainServer):
            server = cls(name, sim, config, scheme, keypair, ModelCompressor(), **kwargs)
        else:
            server = cls(name, sim, config, scheme, keypair, **kwargs)
        network.register(server)
        server.connect_ledger(ledger.handle_for(name))
        servers.append(server)
    correct = servers[:config.n_servers - byzantine_count]
    byz = servers[config.n_servers - byzantine_count:]
    return correct, byz


def inject(servers, count, size=100):
    elements = []
    for i in range(count):
        element = make_element(f"c{i % len(servers)}", size)
        servers[i % len(servers)].add(element)
        elements.append(element)
    return elements


def test_make_invalid_element_fails_validation():
    from repro.core.validation import valid_element
    assert not valid_element(make_invalid_element())


def test_withholding_server_does_not_block_consolidation(sim, network, scheme,
                                                         small_setchain_config,
                                                         ideal_ledger):
    """f = 1 withholding server: batches from correct servers still consolidate."""
    correct, byz = build_mixed_cluster(sim, network, scheme, small_setchain_config,
                                       ideal_ledger, WithholdingHashchainServer,
                                       HashchainServer)
    elements = inject(correct, 30)
    sim.run_until(60.0)
    views = {s.name: s.get() for s in correct}
    # Correct servers agree, stay disjoint, and commit the injected elements.
    assert not check_consistent_gets(views)
    for name, view in views.items():
        assert not check_unique_epoch(view, name)
        assert all(element in view.elements_in_epochs() for element in elements)
        signers_per_epoch = [
            {p.signer for p in view.proofs_for(i)} for i in range(1, view.epoch + 1)
        ]
        assert all(len(s) >= small_setchain_config.quorum for s in signers_per_epoch)


def test_withholding_servers_own_batches_never_consolidate(sim, network, scheme,
                                                           small_setchain_config,
                                                           ideal_ledger):
    correct, byz = build_mixed_cluster(sim, network, scheme, small_setchain_config,
                                       ideal_ledger, WithholdingHashchainServer,
                                       HashchainServer)
    withholder = byz[0]
    # Elements added only through the withholding server: its batch hash goes to
    # the ledger but nobody can recover the contents.
    orphaned = inject([withholder], 10)
    sim.run_until(30.0)
    for server in correct:
        view = server.get()
        assert all(element not in view.elements_in_epochs() for element in orphaned)


def test_wrong_hash_server_is_harmless(sim, network, scheme, small_setchain_config,
                                       ideal_ledger):
    correct, _ = build_mixed_cluster(sim, network, scheme, small_setchain_config,
                                     ideal_ledger, WrongHashHashchainServer,
                                     HashchainServer)
    elements = inject(correct, 20)
    sim.run_until(60.0)
    views = {s.name: s.get() for s in correct}
    assert not check_all(views, quorum=small_setchain_config.quorum,
                         all_added=elements, include_liveness=False)
    for view in views.values():
        assert all(element in view.elements_in_epochs() for element in elements)


def test_invalid_element_flooder_does_not_pollute_epochs(sim, network, scheme,
                                                         small_setchain_config,
                                                         ideal_ledger):
    correct, byz = build_mixed_cluster(sim, network, scheme, small_setchain_config,
                                       ideal_ledger, InvalidElementVanillaServer,
                                       VanillaServer, invalid_per_add=3)
    elements = inject(correct + byz, 20)
    sim.run_until(30.0)
    for server in correct:
        view = server.get()
        for epoch_elements in view.history.values():
            assert all(e.valid for e in epoch_elements)
        assert all(element in view.the_set for element in elements)


def test_equivocating_proofs_are_rejected_by_correct_servers(sim, network, scheme,
                                                             small_setchain_config,
                                                             ideal_ledger):
    correct, byz = build_mixed_cluster(sim, network, scheme, small_setchain_config,
                                       ideal_ledger, EquivocatingProofServer,
                                       VanillaServer)
    inject(correct, 12)
    sim.run_until(30.0)
    equivocator = byz[0].name
    for server in correct:
        view = server.get()
        # No proof signed over the bogus hash was accepted.
        assert all(p.epoch_hash != "0" * 128 for p in view.proofs)
        # Correct servers still gathered a quorum without the equivocator.
        for epoch in range(1, view.epoch + 1):
            signers = {p.signer for p in view.proofs_for(epoch)}
            assert len(signers - {equivocator}) >= small_setchain_config.quorum


def test_silent_server_drops_only_its_own_clients(sim, network, scheme,
                                                  small_setchain_config, ideal_ledger):
    correct, byz = build_mixed_cluster(sim, network, scheme, small_setchain_config,
                                       ideal_ledger, SilentServer, VanillaServer)
    silent = byz[0]
    through_correct = inject(correct, 9)
    swallowed = inject([silent], 3)
    sim.run_until(30.0)
    for server in correct:
        view = server.get()
        assert all(e in view.elements_in_epochs() for e in through_correct)
        assert all(e not in view.the_set for e in swallowed)
    # The swallowed elements are only visible in the silent server's local set —
    # exactly the risk the client mitigates by checking f+1 epoch-proofs.
    silent_view = silent.get()
    assert all(e in silent_view.the_set for e in swallowed)
