"""Durable sqlite ledger: codec, byte-identity, crash recovery, restart resume.

The service-mode guarantees under test:

* the payload codec round-trips every ledger payload the three algorithms
  append;
* a fault-free run on the ``sqlite`` backend produces a byte-identical
  ``RunResult`` artifact to the in-memory ``ideal`` backend (the durability
  layer is invisible to the simulation);
* a process crash mid block-write loses at most the block being written — on
  re-open the database holds the *exact* committed prefix of an uninterrupted
  reference run (property checked across all three algorithms and several
  crash points);
* a killed service re-opened on the same database replays the persisted
  chain, resumes block numbering, and keeps committing new elements without
  id collisions.
"""

import json
import sqlite3

import pytest

from repro.api import run
from repro.api.builder import Scenario
from repro.api.parallel import reset_run_counters
from repro.compressor.base import CompressedBatch
from repro.core.deployment import build_deployment
from repro.core.types import EpochProof, HashBatch
from repro.errors import ConfigurationError, LedgerError
from repro.service.persistence import (
    SqliteLedger,
    audit_chain,
    decode_payload,
    encode_payload,
    ledger_db,
)
from repro.service.runtime import ServiceRuntime
from repro.workload.elements import Element, make_element

ALGORITHMS = ("vanilla", "compresschain", "hashchain")


def small_scenario(algorithm: str, backend: str = "ideal"):
    return (Scenario(algorithm).servers(4).rate(200).collector(10)
            .inject_for(5).drain(30).backend(backend))


# -- payload codec --------------------------------------------------------------


def test_codec_round_trips_every_payload_kind():
    element = Element(element_id=7, client="c", size_bytes=438,
                      body_digest="d", signature=b"\x01\x02", created_at=1.5)
    proof = EpochProof(epoch_number=3, epoch_hash="abc",
                       signature=b"\x03", signer="server-1")
    batch = HashBatch(batch_hash="deadbeef", signature=b"\x04",
                      signer="server-2")
    compressed = CompressedBatch(items=(element, proof), compressed_size=100,
                                 original_size=577, codec="model-brotli")
    for payload in (element, proof, batch, compressed):
        kind, data = encode_payload(payload)
        json.dumps(data)  # must be JSON-safe as stored
        assert decode_payload(kind, data) == payload


def test_codec_opaque_payloads_audit_but_do_not_replay():
    kind, data = encode_payload(object())
    assert kind == "opaque"
    assert decode_payload(kind, data) is None


# -- byte-identity vs the in-memory backend -------------------------------------


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_sqlite_backend_result_byte_identical_to_ideal(algorithm):
    reset_run_counters()
    ideal = run(small_scenario(algorithm, "ideal"), seed=7).to_dict()
    reset_run_counters()
    durable = run(small_scenario(algorithm, "sqlite"), seed=7).to_dict()
    assert ideal["config"]["ledger_backend"] == "ideal"
    assert durable["config"]["ledger_backend"] == "sqlite"
    ideal["config"]["ledger_backend"] = durable["config"]["ledger_backend"] = "-"
    assert json.dumps(ideal, sort_keys=True) == json.dumps(durable, sort_keys=True)


# -- crash mid-write recovers the exact committed prefix ------------------------


def _chain_rows(path, below_height=None):
    conn = sqlite3.connect(str(path))
    try:
        query = ("SELECT height, position, tx_id, origin, size_bytes, "
                 "created_at, kind, payload FROM txs")
        if below_height is not None:
            query += f" WHERE height < {int(below_height)}"
        return conn.execute(query + " ORDER BY height, position").fetchall()
    finally:
        conn.close()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("fail_height", (2, 4))
def test_crash_mid_write_recovers_exact_committed_prefix(
        tmp_path, monkeypatch, algorithm, fail_height):
    config = small_scenario(algorithm, "sqlite").build()

    # Reference: the same run, uninterrupted.
    reset_run_counters()
    with ledger_db(tmp_path / "reference.sqlite"):
        reference = build_deployment(config, seed=7)
    reference.start()
    reference.run()
    reference.ledger_backend.close()

    # Crash run: die mid-transaction while persisting block `fail_height`,
    # after part of the block has already been written.
    original = SqliteLedger._persist_block

    def crashing(self, block):
        if block.height == fail_height:
            self._conn.execute(
                "INSERT INTO blocks (height, proposer, timestamp) "
                "VALUES (?, ?, ?)",
                (block.height, block.proposer, block.timestamp))
            raise RuntimeError("simulated crash mid block-write")
        original(self, block)

    monkeypatch.setattr(SqliteLedger, "_persist_block", crashing)
    reset_run_counters()
    crashed_db = tmp_path / "crashed.sqlite"
    with ledger_db(crashed_db):
        deployment = build_deployment(config, seed=7)
    deployment.start()
    with pytest.raises(RuntimeError, match="simulated crash"):
        deployment.run()
    deployment.ledger_backend.abort()  # process death: no commit

    audit = audit_chain(crashed_db)
    assert audit["contiguous"]
    assert audit["height"] == fail_height - 1
    assert _chain_rows(crashed_db) == _chain_rows(
        tmp_path / "reference.sqlite", below_height=fail_height)


# -- kill + re-open resumes the same ledger -------------------------------------


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_killed_service_reopens_and_resumes_committing(tmp_path, algorithm):
    db = tmp_path / "service.sqlite"
    scenario = small_scenario(algorithm)

    first = ServiceRuntime(scenario, db=db, seed=3)
    first.submit_many(200)
    first.run_for(8.0)
    committed_before = first.metrics_snapshot()["committed"]
    height_before = first.deployment.ledger_backend.height
    assert committed_before == 200
    first.kill()

    second = ServiceRuntime(scenario, db=db, seed=3)
    assert second.recovered_blocks == height_before
    second.run_for(1.0)  # let replayed blocks flow through the servers
    replayed = second.metrics_snapshot()
    assert replayed["recovered_commits"] == committed_before

    second.submit_many(100)
    second.run_for(8.0)
    resumed = second.metrics_snapshot()
    assert resumed["committed_this_run"] == 100
    assert resumed["committed"] == committed_before + 100
    assert second.deployment.ledger_backend.height > height_before
    second.stop()

    audit = audit_chain(db)
    assert audit["contiguous"]
    assert audit["opens"] == 2


def test_reopen_advances_element_and_tx_id_counters(tmp_path):
    db = tmp_path / "ids.sqlite"
    first = ServiceRuntime(small_scenario("hashchain"), db=db, seed=3)
    first.submit_many(100)
    first.run_for(4.0)
    max_id_before = max(e.element_id
                        for e in first.deployment.injected_elements)
    first.stop()

    # A fresh process starts its counters at zero; simulate that, then check
    # re-opening the database advances past every persisted id.
    reset_run_counters()
    second = ServiceRuntime(small_scenario("hashchain"), db=db, seed=3)
    second.submit_many(10)
    second.run_for(6.0)
    new_ids = {e.element_id for e in second.deployment.injected_elements}
    assert min(new_ids) > max_id_before
    assert second.metrics_snapshot()["committed_this_run"] == 10
    second.stop()


# -- audit ----------------------------------------------------------------------


def test_audit_missing_file_raises(tmp_path):
    with pytest.raises(ConfigurationError, match="no ledger database"):
        audit_chain(tmp_path / "absent.sqlite")


def test_audit_non_ledger_file_raises(tmp_path):
    bogus = tmp_path / "bogus.sqlite"
    bogus.write_text("not a database")
    with pytest.raises(ConfigurationError, match="not a repro ledger"):
        audit_chain(bogus)


def test_audit_detects_non_contiguous_chain(tmp_path):
    db = tmp_path / "gap.sqlite"
    runtime = ServiceRuntime(small_scenario("vanilla"), db=db, seed=1)
    runtime.submit_many(100)
    runtime.run_for(5.0)
    runtime.stop()
    conn = sqlite3.connect(str(db))
    with conn:
        top = conn.execute("SELECT MAX(height) FROM blocks").fetchone()[0]
        conn.execute("INSERT INTO blocks (height, proposer, timestamp) "
                     "VALUES (?, 'sequencer', 99.0)", (top + 5,))
    conn.close()
    with pytest.raises(LedgerError, match="non-contiguous"):
        audit_chain(db)


def test_audit_reports_elements_for_chain_carried_payloads(tmp_path):
    db = tmp_path / "elements.sqlite"
    runtime = ServiceRuntime(small_scenario("vanilla"), db=db, seed=1)
    runtime.submit_many(150)
    runtime.run_for(6.0)
    runtime.stop()
    audit = audit_chain(db)
    assert audit["elements"]["unique"] == 150
    assert audit["elements"]["total_bytes"] > 0
    assert "element" in audit["tx_kinds"]
    assert audit["max_element_id"] is not None


def test_ledger_db_binding_nests_and_restores():
    from repro.service.persistence import current_db_path
    assert current_db_path() == ":memory:"
    with ledger_db("/tmp/a.sqlite"):
        assert current_db_path() == "/tmp/a.sqlite"
        with ledger_db(None):  # None keeps the outer binding
            assert current_db_path() == "/tmp/a.sqlite"
    assert current_db_path() == ":memory:"


def test_make_element_counter_untouched_by_fresh_database(tmp_path):
    reset_run_counters()
    before = make_element("probe", 10).element_id
    runtime = ServiceRuntime(small_scenario("vanilla"),
                             db=tmp_path / "fresh.sqlite", seed=1)
    runtime.stop()
    # A fresh database has no persisted ids: opening it must not consume or
    # advance the global counters (artifact byte-identity depends on this).
    assert make_element("probe", 10).element_id == before + 1
