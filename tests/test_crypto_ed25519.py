"""Tests for the pure-Python RFC 8032 Ed25519 implementation.

Includes the first RFC 8032 §7.1 test vectors, which pin the implementation to
the standard rather than merely to itself.
"""

import pytest

from repro.crypto import ed25519

# RFC 8032 test vector 1 (empty message).
_RFC_SECRET_1 = bytes.fromhex(
    "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
_RFC_PUBLIC_1 = bytes.fromhex(
    "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
_RFC_SIG_1 = bytes.fromhex(
    "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
    "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b")

# RFC 8032 test vector 2 (one-byte message 0x72).
_RFC_SECRET_2 = bytes.fromhex(
    "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
_RFC_PUBLIC_2 = bytes.fromhex(
    "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
_RFC_MSG_2 = bytes.fromhex("72")
_RFC_SIG_2 = bytes.fromhex(
    "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
    "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00")


def test_rfc8032_vector_1_public_key_and_signature():
    assert ed25519.generate_public_key(_RFC_SECRET_1) == _RFC_PUBLIC_1
    assert ed25519.sign(_RFC_SECRET_1, b"") == _RFC_SIG_1
    assert ed25519.verify(_RFC_PUBLIC_1, b"", _RFC_SIG_1)


def test_rfc8032_vector_2_public_key_and_signature():
    assert ed25519.generate_public_key(_RFC_SECRET_2) == _RFC_PUBLIC_2
    assert ed25519.sign(_RFC_SECRET_2, _RFC_MSG_2) == _RFC_SIG_2
    assert ed25519.verify(_RFC_PUBLIC_2, _RFC_MSG_2, _RFC_SIG_2)


def test_sign_verify_roundtrip():
    secret = bytes(range(32))
    public = ed25519.generate_public_key(secret)
    message = b"setchain epoch proof"
    signature = ed25519.sign(secret, message)
    assert len(signature) == ed25519.SIGNATURE_SIZE
    assert ed25519.verify(public, message, signature)


def test_verify_rejects_wrong_message():
    secret = bytes(range(32))
    public = ed25519.generate_public_key(secret)
    signature = ed25519.sign(secret, b"message A")
    assert not ed25519.verify(public, b"message B", signature)


def test_verify_rejects_tampered_signature():
    secret = bytes(range(32))
    public = ed25519.generate_public_key(secret)
    signature = bytearray(ed25519.sign(secret, b"msg"))
    signature[0] ^= 0xFF
    assert not ed25519.verify(public, b"msg", bytes(signature))


def test_verify_rejects_wrong_public_key():
    sig = ed25519.sign(bytes(range(32)), b"msg")
    other_public = ed25519.generate_public_key(bytes(range(1, 33)))
    assert not ed25519.verify(other_public, b"msg", sig)


def test_verify_rejects_malformed_inputs():
    secret = bytes(range(32))
    public = ed25519.generate_public_key(secret)
    sig = ed25519.sign(secret, b"msg")
    assert not ed25519.verify(public[:-1], b"msg", sig)
    assert not ed25519.verify(public, b"msg", sig[:-1])
    assert not ed25519.verify(b"\xff" * 32, b"msg", sig)


def test_bad_secret_size_raises():
    with pytest.raises(ValueError):
        ed25519.generate_public_key(b"short")
