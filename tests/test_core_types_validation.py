"""Tests for Setchain core types, validation predicates, collector, and batch store."""

import pytest

from repro.config import EPOCH_PROOF_SIZE, HASH_BATCH_SIZE
from repro.core.batch_store import BatchStore
from repro.core.collector import Collector
from repro.core.proofs import create_epoch_proof
from repro.core.types import EpochProof, HashBatch, SetchainView
from repro.core.validation import (
    batch_matches_hash,
    split_batch,
    valid_element,
    valid_hash_batch,
    valid_proof,
)
from repro.crypto.hashing import hash_batch
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import SimulatedScheme
from repro.errors import BatchUnavailableError, ConfigurationError, SetchainError
from repro.sim.scheduler import Simulator
from repro.workload.elements import make_element


@pytest.fixture
def scheme():
    return SimulatedScheme(PublicKeyInfrastructure())


# -- types ---------------------------------------------------------------------------

def test_epoch_proof_sizes_match_paper():
    proof = EpochProof(epoch_number=1, epoch_hash="h", signature=b"s", signer="v")
    assert proof.size_bytes == EPOCH_PROOF_SIZE == 139
    hb = HashBatch(batch_hash="h", signature=b"s", signer="v")
    assert hb.size_bytes == HASH_BATCH_SIZE == 139


def test_epoch_proof_validation():
    with pytest.raises(SetchainError):
        EpochProof(epoch_number=0, epoch_hash="h", signature=b"s", signer="v")
    with pytest.raises(SetchainError):
        EpochProof(epoch_number=1, epoch_hash="h", signature=b"s", signer="")
    with pytest.raises(SetchainError):
        HashBatch(batch_hash="", signature=b"s", signer="v")


def test_proof_and_hash_batch_are_not_elements():
    proof = EpochProof(epoch_number=1, epoch_hash="h", signature=b"s", signer="v")
    hb = HashBatch(batch_hash="h", signature=b"s", signer="v")
    assert not proof.is_element and not hb.is_element
    assert proof.canonical_bytes() != hb.canonical_bytes()


def test_setchain_view_snapshot_is_immutable_copy():
    e1, e2 = make_element("c", 10), make_element("c", 10)
    the_set = {e1.element_id: e1, e2.element_id: e2}
    history = {1: {e1}}
    view = SetchainView.snapshot(the_set, history, 1, set())
    history[1].add(e2)  # later mutation must not affect the snapshot
    assert view.history[1] == frozenset({e1})
    assert view.the_set == frozenset({e1, e2})
    assert view.epoch == 1


def test_setchain_view_helpers():
    e1, e2 = make_element("c", 10), make_element("c", 10)
    view = SetchainView.snapshot({e1.element_id: e1, e2.element_id: e2},
                                 {1: {e1}, 2: {e2}}, 2, set())
    assert view.epoch_of(e1) == 1 and view.epoch_of(e2) == 2
    assert view.epoch_of(make_element("c", 10)) is None
    assert view.elements_in_epochs() == frozenset({e1, e2})
    assert view.proofs_for(1) == frozenset()


# -- validation ---------------------------------------------------------------------------

def test_valid_element_checks():
    assert valid_element(make_element("c", 100))
    assert not valid_element(make_element("c", 100, valid=False))
    assert not valid_element("not an element")
    assert not valid_element(None)


def test_valid_proof_requires_matching_epoch_and_signature(scheme):
    keypair = scheme.generate_keypair("server-0")
    elements = [make_element("c", 50) for _ in range(3)]
    proof = create_epoch_proof(scheme, keypair, 1, elements)
    assert valid_proof(proof, scheme, elements)
    assert not valid_proof(proof, scheme, elements[:-1])     # different content
    assert not valid_proof(proof, scheme, None)              # epoch unknown locally
    assert not valid_proof("junk", scheme, elements)
    forged = EpochProof(epoch_number=1, epoch_hash=proof.epoch_hash,
                        signature=b"0" * 64, signer="server-0")
    assert not valid_proof(forged, scheme, elements)


def test_valid_hash_batch_checks_signature(scheme):
    from repro.core.types import hash_batch_payload
    keypair = scheme.generate_keypair("server-0")
    items = [make_element("c", 30)]
    digest = hash_batch(items)
    hb = HashBatch(batch_hash=digest,
                   signature=scheme.sign(keypair, hash_batch_payload(digest)),
                   signer="server-0")
    assert valid_hash_batch(hb, scheme)
    assert batch_matches_hash(items, digest)
    assert not batch_matches_hash(items + [make_element("c", 30)], digest)
    bogus = HashBatch(batch_hash=digest, signature=b"x" * 64, signer="server-0")
    assert not valid_hash_batch(bogus, scheme)
    assert not valid_hash_batch("junk", scheme)


def test_split_batch_separates_and_drops_garbage(scheme):
    keypair = scheme.generate_keypair("server-0")
    elements = [make_element("c", 10), make_element("c", 20)]
    proof = create_epoch_proof(scheme, keypair, 1, elements)
    got_elements, got_proofs = split_batch(elements + [proof, "garbage", 42])
    assert got_elements == elements
    assert got_proofs == [proof]


# -- collector ----------------------------------------------------------------------------

def test_collector_flushes_on_size_limit():
    sim = Simulator()
    flushed = []
    collector = Collector(sim, limit=3, timeout=10.0, on_flush=lambda b: flushed.append(list(b)))
    for i in range(7):
        collector.add(i)
    assert flushed == [[0, 1, 2], [3, 4, 5]]
    assert len(collector) == 1
    assert collector.size_flushes == 2


def test_collector_flushes_on_timeout():
    sim = Simulator()
    flushed = []
    collector = Collector(sim, limit=100, timeout=2.0, on_flush=lambda b: flushed.append(list(b)))
    collector.add("a")
    sim.run_until(1.0)
    assert flushed == []
    sim.run_until(2.5)
    assert flushed == [["a"]]
    assert collector.timeout_flushes == 1


def test_collector_timeout_timer_restarts_per_batch():
    sim = Simulator()
    flushed = []
    collector = Collector(sim, limit=100, timeout=2.0, on_flush=lambda b: flushed.append(list(b)))
    collector.add("a")
    sim.run_until(2.5)
    collector.add("b")
    sim.run_until(3.0)
    assert flushed == [["a"]]   # second batch not yet timed out
    sim.run_until(5.0)
    assert flushed == [["a"], ["b"]]


def test_collector_flush_now_and_empty_flush_is_noop():
    sim = Simulator()
    flushed = []
    collector = Collector(sim, limit=100, timeout=5.0, on_flush=lambda b: flushed.append(list(b)))
    collector.flush_now()
    assert flushed == []
    collector.add(1)
    collector.flush_now()
    assert flushed == [[1]]
    assert collector.pending == ()


def test_collector_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        Collector(sim, limit=0, timeout=1.0, on_flush=lambda b: None)
    with pytest.raises(ConfigurationError):
        Collector(sim, limit=1, timeout=0.0, on_flush=lambda b: None)


# -- batch store -----------------------------------------------------------------------------

def test_batch_store_local_and_remote_registration():
    store = BatchStore()
    store.register_local("h1", ("a",))
    store.register_remote("h2", ("b",))
    assert "h1" in store and "h2" in store and len(store) == 2
    assert store.is_local("h1") and not store.is_local("h2")
    assert store.recovered == 1
    assert store.get("h1") == ("a",)
    assert store.get("missing") is None
    assert store.require("h2") == ("b",)
    with pytest.raises(BatchUnavailableError):
        store.require("missing")


def test_batch_store_serve_counts_requests():
    store = BatchStore()
    store.register_local("h", ("x",))
    assert store.serve("h") == ("x",)
    assert store.serve("nope") is None
    assert store.served_requests == 1
