"""Algorithm-level tests for Hashchain over the ideal ledger."""

import pytest

from repro.config import HASH_BATCH_SIZE
from repro.core.properties import check_all
from repro.core.types import HashBatch
from repro.workload.elements import make_element

from conftest import build_servers


@pytest.fixture
def cluster(sim, network, scheme, small_setchain_config, ideal_ledger):
    return build_servers("hashchain", sim, network, scheme, small_setchain_config,
                         ideal_ledger)


def fill_collector(server, count, size=100):
    elements = [make_element("c", size) for _ in range(count)]
    for element in elements:
        server.add(element)
    return elements


def test_flush_appends_fixed_size_hash_batch(cluster, ideal_ledger, small_setchain_config):
    server = cluster[0]
    fill_collector(server, small_setchain_config.collector_limit)
    assert ideal_ledger.pending_count() == 1
    tx = ideal_ledger._pending[0]
    assert isinstance(tx.payload, HashBatch)
    assert tx.size_bytes == HASH_BATCH_SIZE
    assert server.store.is_local(tx.payload.batch_hash)


def test_hash_reversal_recovers_foreign_batches(sim, cluster, small_setchain_config):
    elements = fill_collector(cluster[0], small_setchain_config.collector_limit)
    sim.run_until(10.0)
    # Every other server requested the batch from server-0 and now holds it.
    assert cluster[0].store.served_requests >= len(cluster) - 1
    for server in cluster[1:]:
        assert server.batch_requests_sent >= 1
        view = server.get()
        for element in elements:
            assert element in view.the_set


def test_consolidation_requires_quorum_signers(sim, cluster, small_setchain_config):
    elements = fill_collector(cluster[0], small_setchain_config.collector_limit)
    sim.run_until(15.0)
    views = {s.name: s.get() for s in cluster}
    assert not check_all(views, quorum=small_setchain_config.quorum, all_added=elements)
    # hash_to_signers reached at least f+1 distinct signers on every server.
    for server in cluster:
        assert any(len(signers) >= small_setchain_config.quorum
                   for signers in server.hash_to_signers.values())


def test_every_server_cosigns_each_hash(sim, cluster, small_setchain_config):
    fill_collector(cluster[0], small_setchain_config.collector_limit)
    sim.run_until(15.0)
    # The analytical model assumes n hash-batches per consolidated batch.
    total_hash_batches = sum(s.hash_batches_appended for s in cluster)
    assert total_hash_batches >= len(cluster)


def test_elements_commit_end_to_end(sim, cluster, small_setchain_config):
    elements = []
    for i in range(30):
        element = make_element(f"c{i % 4}", 100)
        cluster[i % 4].add(element)
        elements.append(element)
    sim.run_until(40.0)
    views = {s.name: s.get() for s in cluster}
    violations = check_all(views, quorum=small_setchain_config.quorum, all_added=elements)
    assert violations == []


def test_unresolvable_hash_batch_is_skipped(sim, cluster, ideal_ledger, scheme):
    """A hash-batch whose signer cannot provide the batch never consolidates."""
    from repro.core.types import hash_batch_payload
    from repro.ledger.types import new_transaction
    keypair = scheme.generate_keypair("outsider")
    bogus_hash = "ab" * 64
    hb = HashBatch(batch_hash=bogus_hash,
                   signature=scheme.sign(keypair, hash_batch_payload(bogus_hash)),
                   signer="server-1")  # claims server-1 signed it -> signature invalid
    ideal_ledger.submit(new_transaction(hb, HASH_BATCH_SIZE, "outsider"))
    elements = fill_collector(cluster[0], 10)
    sim.run_until(15.0)
    for server in cluster:
        view = server.get()
        assert view.epoch >= 1  # the real batch consolidated
        assert all(element in view.elements_in_epochs() for element in elements)
        assert bogus_hash not in server._consolidated


def test_request_timeout_when_signer_unreachable(sim, network, cluster,
                                                 small_setchain_config):
    """If the origin never answers, the requester times out and skips the hash."""
    network.add_drop_rule(lambda m: m.msg_type == "request_batch"
                          and m.recipient == "server-0")
    fill_collector(cluster[0], small_setchain_config.collector_limit)
    sim.run_until(15.0)
    for server in cluster[1:]:
        assert server.batch_requests_failed >= 1
    # With only one signer able to serve contents, the batch cannot gather
    # f+1 *content-verified* signers at the other servers, so they must not
    # have consolidated an epoch for it.
    assert all(server.get().epoch == 0 for server in cluster[1:])


def test_light_mode_skips_hash_reversal(sim, network, scheme, small_setchain_config,
                                        ideal_ledger):
    cluster = build_servers("hashchain", sim, network, scheme, small_setchain_config,
                            ideal_ledger, light=True)
    elements = []
    for i in range(20):
        element = make_element("c", 100)
        cluster[i % 4].add(element)
        elements.append(element)
    sim.run_until(20.0)
    assert all(s.batch_requests_sent == 0 for s in cluster)
    views = {s.name: s.get() for s in cluster}
    assert not check_all(views, quorum=small_setchain_config.quorum, all_added=elements)


def test_epoch_content_identical_across_servers(sim, cluster, small_setchain_config):
    for i in range(25):
        cluster[i % 4].add(make_element(f"c{i % 4}", 80 + i))
    sim.run_until(30.0)
    reference = cluster[0].get()
    for server in cluster[1:]:
        view = server.get()
        for epoch in range(1, min(reference.epoch, view.epoch) + 1):
            assert reference.history[epoch] == view.history[epoch]


def test_backlog_counter_exposes_processing_queue(cluster):
    assert all(server.backlog == 0 for server in cluster)
