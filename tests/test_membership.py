"""Dynamic membership: runtime join/leave, state transfer, epoch-aware quorums.

Pinned regressions for PR 7's tentpole: the ``member/`` catalog family, the
elastic service drill (commit ratio and join-to-first-commit), joined-server
convergence under Properties 1-8, the time-varying fault budget (schedules
legal only because a Join lands before a Crash), the membership journal in
durable ledgers, and the epoch-aware ``/healthz`` payload.
"""

import json
import sqlite3

import pytest

from repro.api import Scenario, Session, run
from repro.api.cli import main as repro_main
from repro.core.deployment import run_experiment
from repro.core.properties import check_all
from repro.errors import ConfigurationError, LedgerError
from repro.faults import Join, Leave, Targets
from repro.service.persistence import audit_chain
from repro.service.runtime import ServiceRuntime


@pytest.fixture(scope="module")
def elastic_result():
    """One run of the elastic service drill, shared across its assertions."""
    return run("member/service/elastic")


# -- the elastic drill: grow under load, drain one out --------------------------


def test_elastic_scenario_commit_ratio_at_least_90_percent(elastic_result):
    assert elastic_result.committed_fraction >= 0.90


def test_elastic_scenario_records_membership_timeline(elastic_result):
    block = elastic_result.membership
    assert block is not None
    assert [epoch["index"] for epoch in block["epochs"]] == [1, 2, 3, 4]
    assert [epoch["reason"] for epoch in block["epochs"]] == [
        "initial", "join", "join", "leave"]
    # Activation heights step forward (two-block delay from each change).
    heights = [epoch["effective_height"] for epoch in block["epochs"]]
    assert heights == sorted(heights)
    assert len(block["joins"]) == 2
    for entry in block["joins"]:
        assert entry["catch_up_s"] is not None and entry["catch_up_s"] >= 0
        assert entry["join_to_first_commit_s"] is not None
    (leave,) = block["leaves"]
    assert leave["node"] == "server-2"
    assert leave["drained"] is True
    assert block["current"]["size"] == 5
    assert block["current"]["quorum"] == 3


def test_elastic_membership_round_trips_through_json(elastic_result):
    data = elastic_result.to_dict()
    assert "membership" in data
    restored = type(elastic_result).from_dict(json.loads(json.dumps(data)))
    assert restored.membership == elastic_result.membership


def test_report_cli_renders_membership_table(elastic_result, tmp_path, capsys):
    path = elastic_result.save(tmp_path / "elastic.json")
    assert repro_main(["report", str(path)]) == 0
    out = capsys.readouterr().out
    assert "membership (elastic runs)" in out
    assert "5 (q=3)" in out


# -- joined servers converge (state transfer then quorum entry) -----------------


def test_joined_server_converges_to_the_cluster_view():
    config = (Scenario.hashchain().servers(4).rate(300).collector(20)
              .inject_for(5).drain(50).backend("ideal")
              .join(2.0).seed(11).build())
    deployment = run_experiment(config)
    views = {server.name: server.get() for server in deployment.servers}
    assert "server-4" in views
    joined = views["server-4"]
    original = views["server-0"]
    assert joined.the_set == original.the_set
    assert joined.epoch == original.epoch
    assert all(joined.history[e] == original.history[e]
               for e in original.history)
    log = deployment.membership
    quorum = min(epoch.quorum for epoch in log.epochs)
    violations = check_all(views, quorum=quorum,
                           all_added=deployment.injected_elements,
                           include_liveness=True)
    assert violations == []


def test_drained_leave_is_not_a_crash():
    config = (Scenario.hashchain().servers(5).rate(300).collector(20)
              .inject_for(5).drain(50).backend("ideal")
              .leave(2.5, "server-3").seed(7).build())
    deployment = run_experiment(config)
    departed = next(s for s in deployment.departed_servers
                    if s.name == "server-3")
    assert departed.departed and not departed.crashed
    assert departed.retired_at is not None
    block = deployment.membership_report()
    (leave,) = block["leaves"]
    assert leave["drained"] is True
    # Everything accepted before the drain still commits at the survivors.
    survivors = {s.name: s.get() for s in deployment.servers
                 if s.name != "server-3"}
    quorum = min(epoch.quorum for epoch in deployment.membership.epochs)
    assert check_all(survivors, quorum=quorum,
                     all_added=deployment.injected_elements,
                     include_liveness=True) == []


def test_cometbft_join_changes_validator_set_at_block_boundary():
    config = (Scenario.hashchain().servers(4).rate(200).collector(20)
              .inject_for(4).drain(40)
              .join(1.5).leave(3.0, "server-2").seed(3).build())
    deployment = run_experiment(config)
    block = deployment.membership_report()
    epochs = block["validator_epochs"]
    assert len(epochs) >= 3  # initial + join + leave
    names = [set(epoch["members"]) for epoch in epochs]
    assert "cometbft-4" in names[1] - names[0]  # the joiner's validator
    assert any("cometbft-2" in earlier - later
               for earlier, later in zip(names, names[1:]))
    # Consensus kept producing blocks across both set changes.
    assert deployment._backend_height() > epochs[-1]["effective_height"]


# -- the time-varying fault budget ----------------------------------------------


def _budget_scenario(with_join: bool) -> Scenario:
    scenario = (Scenario.hashchain().servers(4).rate(300).collector(20)
                .inject_for(6).drain(50).backend("ideal"))
    if with_join:
        scenario = scenario.join(1.0)
    return (scenario
            .become_byzantine(2.0, "server-1", behaviour="withhold", until=4.0)
            .crash(2.5, "server-2", until=3.5))


def test_schedule_legal_only_because_join_lands_before_crash():
    # n=4 tolerates f=1: one Byzantine plus one crashed server busts the
    # budget — unless the t=1 s join has already grown the set to n=5 (f=2).
    _budget_scenario(with_join=True).build()
    with pytest.raises(ConfigurationError) as excinfo:
        _budget_scenario(with_join=False).build()
    message = str(excinfo.value)
    assert "Byzantine budget" in message
    assert "t=2.5" in message
    assert "1 Byzantine" in message and "1 crashed" in message


def test_budget_counts_departures_against_membership_size():
    # n=5 shrinks to n=4 (f=1) after the leave, so the same Byzantine+crash
    # pair that was legal at n=5 now exceeds the budget — and the error
    # names the departure.
    scenario = (Scenario.hashchain().servers(5).rate(300).collector(20)
                .inject_for(6).drain(50).backend("ideal")
                .leave(1.0, "server-4")
                .become_byzantine(2.0, "server-1", behaviour="silent",
                                  until=4.0)
                .crash(2.5, "server-2", until=3.5))
    with pytest.raises(ConfigurationError, match="1 departed"):
        scenario.build()


def test_join_and_leave_events_validate_their_shape():
    with pytest.raises(ConfigurationError, match="no until"):
        Join(at=1.0, until=2.0)
    with pytest.raises(ConfigurationError, match="role"):
        Join(at=1.0, role="clients")
    with pytest.raises(ConfigurationError, match="no until"):
        Leave(at=1.0, until=2.0)
    with pytest.raises(ConfigurationError, match="servers"):
        Leave(at=1.0, targets=Targets(role="validators", count=1))


# -- interactive membership through the Session façade --------------------------


def test_session_add_and_remove_server():
    with Session(Scenario.hashchain().servers(4).rate(200).collector(20)
                 .inject_for(4).drain(30).backend("ideal"), seed=5) as session:
        session.run_for(1.0)
        name = session.add_server()
        assert name == "server-4"
        session.run_for(2.0)
        report = session.membership()
        assert report["current"]["size"] == 5
        assert report["joins"][0]["node"] == "server-4"
        session.remove_server("server-4")
        session.run_for(2.0)
        report = session.membership()
        assert report["current"]["size"] == 4
        assert report["leaves"][0]["node"] == "server-4"


# -- service runtime: epoch-aware health and the durable journal ----------------


def membership_runtime(**kwargs):
    scenario = (Scenario.hashchain().servers(4).rate(100).collector(10)
                .inject_for(5).drain(30).backend("ideal"))
    return ServiceRuntime(scenario, seed=5, **kwargs)


def test_healthz_tracks_the_current_membership_epoch():
    runtime = membership_runtime()
    try:
        assert runtime.healthz()["epoch"] == 1
        runtime.submit_many(100)
        runtime.run_for(1.0)
        runtime.add_server()
        runtime.run_for(2.0)
        health = runtime.healthz()
        assert health["epoch"] == 2
        assert health["live_servers"] == 5
        assert health["quorum"] == 3
        assert health["status"] == "ok"
        runtime.remove_server("server-1")
        runtime.run_for(2.0)
        health = runtime.healthz()
        assert health["epoch"] == 3
        assert health["live_servers"] == 4
        snapshot = runtime.metrics_snapshot()
        assert snapshot["membership"]["epoch"] == 3
        assert snapshot["membership"]["size"] == 4
    finally:
        runtime.stop()


def test_checkpoint_journals_membership_and_audit_verifies_it(tmp_path):
    db = tmp_path / "elastic.db"
    runtime = membership_runtime(db=str(db))
    try:
        runtime.submit_many(150)
        runtime.run_for(1.0)
        runtime.add_server()
        runtime.run_for(2.0)
        runtime.remove_server("server-2")
        runtime.run_for(3.0)
        runtime.checkpoint()
    finally:
        runtime.stop()
    audit = audit_chain(db)
    journal = audit["membership"]
    assert journal["contiguous"] is True
    assert journal["epochs"] == 3
    assert journal["joins"] == 1 and journal["leaves"] == 1
    assert "server-2" not in journal["current_members"]
    assert "server-4" in journal["current_members"]


def test_audit_rejects_a_gapped_membership_journal(tmp_path):
    db = tmp_path / "gapped.db"
    runtime = membership_runtime(db=str(db))
    try:
        runtime.submit_many(50)
        runtime.run_for(1.0)
        runtime.add_server()
        runtime.run_for(2.0)
        runtime.checkpoint()
    finally:
        runtime.stop()
    with sqlite3.connect(str(db)) as conn:
        conn.execute("DELETE FROM membership WHERE epoch = 1")
    with pytest.raises(LedgerError, match="non-contiguous epochs"):
        audit_chain(db)


def test_service_inspect_renders_the_membership_journal(tmp_path, capsys):
    db = tmp_path / "inspect.db"
    runtime = membership_runtime(db=str(db))
    try:
        runtime.submit_many(50)
        runtime.run_for(1.0)
        runtime.add_server()
        runtime.run_for(2.0)
        runtime.checkpoint()
    finally:
        runtime.stop()
    assert repro_main(["service", "inspect", str(db)]) == 0
    out = capsys.readouterr().out
    assert "membership journal" in out
    assert "epoch contiguity" in out and "yes" in out


# -- static runs stay untouched --------------------------------------------------


def test_static_runs_carry_no_membership_block():
    result = run("smoke")
    assert result.membership is None
    assert "membership" not in result.to_dict()
