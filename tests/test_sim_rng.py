"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import DeterministicRNG, derive_seed


def test_same_seed_same_stream():
    a = DeterministicRNG(5)
    b = DeterministicRNG(5)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = DeterministicRNG(5)
    b = DeterministicRNG(6)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(1, "client", 0) == derive_seed(1, "client", 0)
    assert derive_seed(1, "client", 0) != derive_seed(1, "client", 1)
    assert derive_seed(1, "client") != derive_seed(2, "client")


def test_derive_returns_independent_streams():
    root = DeterministicRNG(99)
    a = root.derive("network")
    b = root.derive("client", 3)
    seq_a = [a.random() for _ in range(5)]
    seq_b = [b.random() for _ in range(5)]
    assert seq_a != seq_b
    # Re-deriving reproduces the same child stream.
    a2 = DeterministicRNG(99).derive("network")
    assert [a2.random() for _ in range(5)] == seq_a


def test_draw_helpers_within_ranges():
    rng = DeterministicRNG(3)
    for _ in range(100):
        assert 0.0 <= rng.random() < 1.0
        assert 2.0 <= rng.uniform(2.0, 4.0) <= 4.0
        assert rng.expovariate(10.0) >= 0.0
        assert rng.lognormvariate(0.0, 1.0) > 0.0
        assert 1 <= rng.randint(1, 6) <= 6
    assert len(rng.randbytes(16)) == 16


def test_choice_sample_shuffle_are_deterministic():
    items = list(range(20))
    a = DeterministicRNG(11)
    b = DeterministicRNG(11)
    assert a.choice(items) == b.choice(items)
    assert a.sample(items, 5) == b.sample(items, 5)
    items_a, items_b = items[:], items[:]
    a.shuffle(items_a)
    b.shuffle(items_b)
    assert items_a == items_b
