"""Bench tooling: the regression gate, collapsed stacks, traced bench runs."""

from __future__ import annotations

import cProfile
import json
import pstats

import pytest

from repro.bench.__main__ import _write_collapsed, main
from repro.bench.runner import BenchCase, run_case


def _artifact(path, walls: dict[str, float], label: str) -> str:
    payload = {"schema_version": 1, "set": "bench-smoke", "label": label,
               "results": [{"scenario": name, "seed": 1, "wall_s": wall,
                            "events_per_s": 1.0, "elements_per_s": 1.0}
                           for name, wall in walls.items()]}
    path.write_text(json.dumps(payload))
    return str(path)


def test_compare_max_regression_passes_within_threshold(tmp_path, capsys):
    before = _artifact(tmp_path / "before.json", {"a": 1.0, "b": 2.0}, "before")
    after = _artifact(tmp_path / "after.json", {"a": 1.01, "b": 1.98}, "after")
    assert main(["compare", before, after, "--max-regression", "0.02"]) == 0
    assert "regression gate passed" in capsys.readouterr().out


def test_compare_max_regression_fails_on_whole_set_slowdown(tmp_path, capsys):
    before = _artifact(tmp_path / "before.json", {"a": 1.0, "b": 2.0}, "before")
    after = _artifact(tmp_path / "after.json", {"a": 1.20, "b": 2.0}, "after")
    assert main(["compare", before, after, "--max-regression", "0.02"]) == 1
    err = capsys.readouterr().err
    assert "warning: a slower by" in err
    assert "regression: whole set slower by" in err
    # Without the gate the same comparison is informational only.
    assert main(["compare", before, after]) == 0


def test_compare_max_regression_warns_but_passes_on_one_noisy_case(
        tmp_path, capsys):
    # One short case 5% slower, but the set total still within 2%: warn only.
    before = _artifact(tmp_path / "before.json", {"a": 0.2, "b": 2.0}, "before")
    after = _artifact(tmp_path / "after.json", {"a": 0.21, "b": 1.99}, "after")
    assert main(["compare", before, after, "--max-regression", "0.02"]) == 0
    captured = capsys.readouterr()
    assert "warning: a slower by" in captured.err
    assert "regression gate passed" in captured.out


def test_write_collapsed_emits_flamegraph_lines(tmp_path):
    def leaf():
        return sum(range(2000))

    def root():
        return [leaf() for _ in range(50)]

    profiler = cProfile.Profile()
    profiler.enable()
    root()
    profiler.disable()
    target = _write_collapsed(pstats.Stats(profiler),
                              str(tmp_path / "stacks.txt"))
    lines = target.read_text().splitlines()
    assert lines == sorted(lines)
    for line in lines:
        stack, _, value = line.rpartition(" ")
        assert int(value) > 0
        assert 1 <= len(stack.split(";")) <= 2
        assert " " not in stack
    assert any("leaf" in line for line in lines)


def test_run_case_simulation_outputs_do_not_depend_on_tracing():
    untraced = run_case(BenchCase("smoke", seed=9))
    traced = run_case(BenchCase("smoke", seed=9), trace_sample=1.0)
    # events/s * wall_s recovers the deterministic event count (up to the
    # artifact's 4-decimal rounding): tracing may change the wall time but
    # never the simulation trajectory.
    assert untraced.events_per_s * untraced.wall_s == pytest.approx(
        traced.events_per_s * traced.wall_s, rel=5e-3)
    assert untraced.elements_per_s * untraced.wall_s == pytest.approx(
        traced.elements_per_s * traced.wall_s, rel=5e-3)
