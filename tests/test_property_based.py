"""Property-based tests (hypothesis) on core data structures and invariants."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.throughput import average_throughput, rolling_throughput
from repro.compressor.model import ModelCompressor
from repro.core.proofs import create_epoch_proof, epoch_is_committed
from repro.core.types import SetchainView
from repro.crypto.hashing import hash_batch, hash_epoch
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import SimulatedScheme
from repro.ledger.mempool import Mempool
from repro.ledger.types import new_transaction
from repro.sim.events import EventQueue
from repro.sim.rng import derive_seed
from repro.workload.elements import make_element
from repro.workload.generator import ArbitrumLikeGenerator, ElementSizeStats
from repro.sim.rng import DeterministicRNG

_slow = settings(max_examples=50, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


# -- event queue ordering -------------------------------------------------------------------

@_slow
@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                          allow_infinity=False), min_size=1, max_size=200))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


# -- hashing invariants -----------------------------------------------------------------------

@_slow
@given(st.lists(st.integers(min_value=64, max_value=5000), min_size=0, max_size=30),
       st.randoms(use_true_random=False))
def test_hash_batch_permutation_invariance(sizes, rnd):
    elements = [make_element("c", s) for s in sizes]
    shuffled = elements[:]
    rnd.shuffle(shuffled)
    assert hash_batch(elements) == hash_batch(shuffled)


@_slow
@given(st.integers(min_value=1, max_value=1000),
       st.lists(st.integers(min_value=64, max_value=2000), min_size=1, max_size=20))
def test_hash_epoch_injective_in_epoch_number(epoch, sizes):
    elements = [make_element("c", s) for s in sizes]
    assert hash_epoch(epoch, elements) != hash_epoch(epoch + 1, elements)


# -- seeds ------------------------------------------------------------------------------------

@_slow
@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
def test_derive_seed_stable_and_in_range(seed, label):
    a = derive_seed(seed, label)
    assert a == derive_seed(seed, label)
    assert 0 <= a < 2**64


# -- generator ----------------------------------------------------------------------------------

@_slow
@given(st.integers(min_value=0, max_value=10_000),
       st.floats(min_value=100, max_value=2000),
       st.floats(min_value=0, max_value=2000))
def test_generator_sizes_always_positive(seed, mean, std):
    generator = ArbitrumLikeGenerator(DeterministicRNG(seed), ElementSizeStats(mean, std))
    assert all(generator.next_size() >= 64 for _ in range(20))


# -- compression ----------------------------------------------------------------------------------

@_slow
@given(st.integers(min_value=1, max_value=600), st.floats(min_value=1.1, max_value=10.0))
def test_model_compressor_never_exceeds_original(count, ratio):
    batch = [make_element("c", 438) for _ in range(count)]
    original = sum(e.size_bytes for e in batch)
    compressed = ModelCompressor(ratio=ratio).compress(batch, original)
    assert 1 <= compressed.compressed_size <= original
    assert compressed.items == tuple(batch)


# -- mempool ---------------------------------------------------------------------------------------

@_slow
@given(st.lists(st.integers(min_value=1, max_value=500), min_size=0, max_size=50),
       st.integers(min_value=100, max_value=2000))
def test_mempool_reap_never_exceeds_budget_and_preserves_fifo(sizes, budget):
    pool = Mempool(max_txs=1000, max_bytes=10**9)
    txs = [new_transaction(f"p{i}", size, "origin") for i, size in enumerate(sizes)]
    for i, tx in enumerate(txs):
        pool.add(tx, float(i))
    reaped = pool.reap(budget)
    assert reaped == txs[:len(reaped)]  # FIFO prefix
    # Budget is respected except for the single oversized-head case, where the
    # head transaction is reaped alone rather than wedging the mempool.
    if not (len(reaped) == 1 and reaped[0].size_bytes > budget):
        assert sum(t.size_bytes for t in reaped) <= budget


# -- f+1 commit rule ---------------------------------------------------------------------------------

@_slow
@given(st.integers(min_value=1, max_value=9), st.integers(min_value=1, max_value=9))
def test_epoch_commit_rule_threshold_exact(signer_count, quorum):
    scheme = SimulatedScheme(PublicKeyInfrastructure())
    elements = [make_element("c", 100)]
    proofs = [create_epoch_proof(scheme, scheme.generate_keypair(f"s{i}"), 1, elements)
              for i in range(signer_count)]
    assert epoch_is_committed(proofs, 1, elements, quorum) == (signer_count >= quorum)


# -- SetchainView invariants ---------------------------------------------------------------------------

@_slow
@given(st.lists(st.integers(min_value=64, max_value=1000), min_size=0, max_size=30),
       st.integers(min_value=1, max_value=5))
def test_view_snapshot_preserves_subset_invariant(sizes, epochs):
    elements = [make_element("c", s) for s in sizes]
    the_set = {e.element_id: e for e in elements}
    history = {}
    for i, element in enumerate(elements):
        history.setdefault(1 + (i % epochs), set()).add(element)
    view = SetchainView.snapshot(the_set, history, len(history), set())
    assert view.elements_in_epochs() <= view.the_set
    for element in elements:
        assert view.epoch_of(element) in history


# -- throughput math -------------------------------------------------------------------------------------

@_slow
@given(st.lists(st.floats(min_value=0.1, max_value=200.0, allow_nan=False),
                min_size=1, max_size=300))
def test_rolling_throughput_total_mass_matches_commit_count(commit_times):
    series = rolling_throughput(sorted(commit_times), window=9.0, step=1.0)
    assert all(v >= 0 for v in series.values)
    assert series.peak() <= len(commit_times) / 9.0 + 1e-9
    avg = average_throughput(sorted(commit_times), up_to=200.0)
    assert avg == len(commit_times) / 200.0


# -- Properties 1-8 under random fault schedules (repro.faults) -------------------------------------------
# The paper claims Properties 1-8 for *correct* servers with correct servers
# >= quorum.  Random chaos timelines — crashes with recovery, short
# partitions, background message loss — must not break any of them for the
# never-crashed servers, for any of the three algorithms.  Every fault ends
# well before the drain so "eventually" has room to happen (partial
# synchrony: the network is eventually timely again).

_fault_runs = settings(max_examples=5, deadline=None,
                       suppress_health_check=[HealthCheck.too_slow])


@pytest.mark.parametrize("algorithm", ["vanilla", "compresschain", "hashchain"])
@_fault_runs
@given(data=st.data())
def test_properties_hold_for_correct_servers_under_random_faults(algorithm, data):
    from repro.api import Scenario
    from repro.core.deployment import run_experiment
    from repro.core.properties import check_all
    from repro.faults import Crash, MessageLoss, Partition, Targets

    events = []
    crashed = []
    # Up to two crash-recover windows hitting distinct servers: 4 servers,
    # f=1, quorum=2, so >= 2 never-crashed servers remain (>= quorum).
    for victim in ("server-2", "server-3"):
        if data.draw(st.booleans(), label=f"crash {victim}"):
            at = data.draw(st.floats(0.2, 3.0), label=f"{victim} at")
            down = data.draw(st.floats(0.5, 2.5), label=f"{victim} down for")
            events.append(Crash(at=at, until=at + down,
                                targets=Targets(nodes=(victim,))))
            crashed.append(victim)
    if data.draw(st.booleans(), label="partition"):
        at = data.draw(st.floats(0.2, 3.5), label="partition at")
        width = data.draw(st.floats(0.3, 2.0), label="partition width")
        count = data.draw(st.integers(1, 2), label="partition size")
        events.append(Partition(at=at, until=at + width,
                                group=Targets(role="servers", count=count)))
    if data.draw(st.booleans(), label="loss"):
        rate = data.draw(st.floats(0.005, 0.05), label="loss rate")
        events.append(MessageLoss(at=0.0, until=4.0, rate=rate))
    seed = data.draw(st.integers(0, 2**16), label="seed")

    config = (Scenario(algorithm).servers(4).rate(150).collector(10)
              .inject_for(4).drain(40).backend("ideal")
              .faults(*events).seed(seed).build())
    deployment = run_experiment(config)

    views = {server.name: server.get() for server in deployment.servers
             if server.name not in crashed}
    assert len(views) >= config.setchain.quorum
    violations = check_all(views, quorum=config.setchain.quorum,
                           all_added=deployment.injected_elements,
                           include_liveness=True)
    assert violations == [], violations[:5]


# -- Properties 1-8 under mixed crash + Byzantine + partition schedules ----------
# PR 5's tentpole: Byzantine behaviours are schedule events, so one timeline
# can crash a server, turn another Byzantine (any of the five behaviours,
# reverting mid-run), cut a partition, and add background loss.  Generated
# schedules stay within the f-budget by construction (n=5, f=2: at most one
# crashed plus one Byzantine server at any instant), so Properties 1-8 must
# hold at every never-crashed, never-Byzantine server for all three
# algorithms.

_BYZ_BEHAVIOURS = ("withhold", "wrong-hash", "invalid-element", "equivocate",
                   "silent")


@pytest.mark.parametrize("algorithm", ["vanilla", "compresschain", "hashchain"])
@_fault_runs
@given(data=st.data())
def test_properties_hold_under_mixed_crash_byzantine_partition_schedules(
        algorithm, data):
    from repro.api import Scenario
    from repro.core.deployment import run_experiment
    from repro.core.properties import check_all
    from repro.faults import (
        BecomeByzantine,
        Crash,
        MessageLoss,
        Partition,
        Targets,
    )

    events = []
    faulty = []
    if data.draw(st.booleans(), label="crash server-3"):
        at = data.draw(st.floats(0.2, 3.0), label="crash at")
        down = data.draw(st.floats(0.5, 2.5), label="crash down for")
        events.append(Crash(at=at, until=at + down,
                            targets=Targets(nodes=("server-3",))))
        faulty.append("server-3")
    if data.draw(st.booleans(), label="byzantine server-4"):
        behaviour = data.draw(st.sampled_from(_BYZ_BEHAVIOURS),
                              label="behaviour")
        at = data.draw(st.floats(0.2, 3.0), label="byzantine at")
        width = data.draw(st.floats(0.5, 2.5), label="byzantine width")
        events.append(BecomeByzantine(at=at, until=at + width,
                                      targets=Targets(nodes=("server-4",)),
                                      behaviour=behaviour))
        faulty.append("server-4")
    if data.draw(st.booleans(), label="partition"):
        at = data.draw(st.floats(0.2, 3.5), label="partition at")
        width = data.draw(st.floats(0.3, 2.0), label="partition width")
        count = data.draw(st.integers(1, 2), label="partition size")
        events.append(Partition(at=at, until=at + width,
                                group=Targets(role="servers", count=count)))
    if data.draw(st.booleans(), label="loss"):
        rate = data.draw(st.floats(0.005, 0.05), label="loss rate")
        events.append(MessageLoss(at=0.0, until=4.0, rate=rate))
    seed = data.draw(st.integers(0, 2**16), label="seed")

    config = (Scenario(algorithm).servers(5).rate(150).collector(10)
              .inject_for(4).drain(40).backend("ideal")
              .faults(*events).seed(seed).build())
    deployment = run_experiment(config)

    assert deployment.byzantine_servers() <= set(faulty)
    views = {server.name: server.get() for server in deployment.servers
             if server.name not in faulty}
    assert len(views) >= config.setchain.quorum
    violations = check_all(views, quorum=config.setchain.quorum,
                           all_added=deployment.injected_elements,
                           include_liveness=True)
    assert violations == [], violations[:5]


# -- Properties 1-8 under mixed join/leave/crash/partition schedules --------------
# PR 7's tentpole: membership itself changes at runtime.  A random timeline
# may admit a joining server (state transfer, then epoch-aware quorum entry),
# drain one original server out, crash-recover another, cut a short
# partition, and add background loss.  Servers 0-2 are members for the whole
# run and never faulted, so Properties 1-8 — checked against the *smallest*
# quorum any membership epoch used — must hold at their views for all three
# algorithms.


@pytest.mark.parametrize("algorithm", ["vanilla", "compresschain", "hashchain"])
@_fault_runs
@given(data=st.data())
def test_properties_hold_under_mixed_membership_and_fault_schedules(
        algorithm, data):
    from repro.api import Scenario
    from repro.core.deployment import run_experiment
    from repro.core.properties import check_all
    from repro.faults import Crash, Join, Leave, MessageLoss, Partition, Targets

    events = []
    transient = []  # servers that were faulted, joined, or departed mid-run
    if data.draw(st.booleans(), label="join"):
        at = data.draw(st.floats(0.3, 2.0), label="join at")
        events.append(Join(at=at))
        transient.append("server-5")  # joined late: not a full-run member
    if data.draw(st.booleans(), label="leave server-4"):
        at = data.draw(st.floats(0.5, 3.0), label="leave at")
        drain = data.draw(st.booleans(), label="leave drains")
        events.append(Leave(at=at, targets=Targets(nodes=("server-4",)),
                            drain=drain))
        transient.append("server-4")
    if data.draw(st.booleans(), label="crash server-3"):
        at = data.draw(st.floats(0.2, 3.0), label="crash at")
        down = data.draw(st.floats(0.5, 2.5), label="crash down for")
        events.append(Crash(at=at, until=at + down,
                            targets=Targets(nodes=("server-3",))))
        transient.append("server-3")
    if data.draw(st.booleans(), label="partition"):
        at = data.draw(st.floats(0.2, 3.5), label="partition at")
        width = data.draw(st.floats(0.3, 1.5), label="partition width")
        events.append(Partition(at=at, until=at + width,
                                group=Targets(role="servers", count=1)))
    if data.draw(st.booleans(), label="loss"):
        rate = data.draw(st.floats(0.005, 0.05), label="loss rate")
        events.append(MessageLoss(at=0.0, until=4.0, rate=rate))
    seed = data.draw(st.integers(0, 2**16), label="seed")

    config = (Scenario(algorithm).servers(5).rate(150).collector(10)
              .inject_for(4).drain(40).backend("ideal")
              .faults(*events).seed(seed).build())
    deployment = run_experiment(config)

    # The quorum every element must eventually clear: the smallest any
    # membership epoch required (a drained leave can shrink it below the
    # static config value).
    log = deployment.membership
    if log is not None and log.changed:
        quorum = min(epoch.quorum for epoch in log.epochs)
    else:
        quorum = config.setchain.quorum
    views = {server.name: server.get() for server in deployment.servers
             if server.name not in transient}
    assert len(views) >= quorum
    violations = check_all(views, quorum=quorum,
                           all_added=deployment.injected_elements,
                           include_liveness=True)
    assert violations == [], violations[:5]


# -- Properties 1-8 per shard under a faulty sibling shard ------------------------
# PR 10's tentpole: shards are independent Setchain instances, so faults must
# not cross the partition boundary.  A random schedule crashes or turns
# Byzantine exactly one member of shard 1 (inside that shard's f-budget);
# shard 0 is never touched, so Properties 1-8 over shard 0's admissions —
# and its commit ratio — must be exactly what a fault-free run guarantees.


@pytest.mark.parametrize("algorithm", ["vanilla", "compresschain", "hashchain"])
@_fault_runs
@given(data=st.data())
def test_shard_faults_never_leak_into_healthy_shards(algorithm, data):
    from repro.api import Scenario
    from repro.core.deployment import run_experiment
    from repro.core.properties import check_all
    from repro.faults import BecomeByzantine, Crash, MessageLoss, Targets

    events = []
    victim = data.draw(st.sampled_from(["server-3", "server-4", "server-5"]),
                       label="victim")
    mode = data.draw(st.sampled_from(["crash", "byzantine"]), label="mode")
    at = data.draw(st.floats(0.2, 2.5), label="fault at")
    width = data.draw(st.floats(0.5, 2.5), label="fault width")
    if mode == "crash":
        events.append(Crash(at=at, until=at + width,
                            targets=Targets(nodes=(victim,))))
    else:
        behaviour = data.draw(st.sampled_from(_BYZ_BEHAVIOURS),
                              label="behaviour")
        events.append(BecomeByzantine(at=at, until=at + width,
                                      targets=Targets(nodes=(victim,)),
                                      behaviour=behaviour))
    if data.draw(st.booleans(), label="loss"):
        rate = data.draw(st.floats(0.005, 0.05), label="loss rate")
        events.append(MessageLoss(at=0.0, until=4.0, rate=rate))
    seed = data.draw(st.integers(0, 2**16), label="seed")

    config = (Scenario(algorithm).servers(3).byzantine(f=1).shards(2)
              .rate(150).collector(10).inject_for(4).drain(40)
              .backend("ideal").faults(*events).seed(seed).build())
    deployment = run_experiment(config)
    router = deployment.shard_router

    # Shard ownership is fixed at admission, and neither shard ever loses
    # quorum (at most one of three members is down), so the routing function
    # reproduces each element's owner post hoc.
    shard_0_added = [e for e in deployment.injected_elements
                     if router.shard_for(e.element_id) == 0]
    assert shard_0_added

    views = {server.name: server.get() for server in deployment.servers
             if server.shard_index == 0}
    assert len(views) == 3
    violations = check_all(views, quorum=config.setchain.quorum,
                           all_added=shard_0_added, include_liveness=True)
    assert violations == [], violations[:5]

    report = deployment.shard_report()
    assert report["per_shard"]["0"]["added"] == len(shard_0_added)
    assert report["per_shard"]["0"]["committed"] == len(shard_0_added)
