"""Tests for the experiment harness: scaling, runner, scenarios, figures, tables."""

import pytest

from repro.analysis.throughput import ThroughputSeries
from repro.config import base_scenario
from repro.errors import ConfigurationError
from repro.experiments import figures, tables
from repro.experiments.runner import analytical_reference, run_scenario, scaled_config
from repro.experiments.scenarios import (
    figure1_scenarios,
    figure2_left_scenarios,
    figure3a_grid,
    figure3b_grid,
    figure3c_grid,
    figure4_scenarios,
    figure5_grids,
    table1_parameters,
)


# -- scaling -------------------------------------------------------------------------------

def test_scaled_config_preserves_dimensionless_ratios():
    config = base_scenario("hashchain", sending_rate=10_000, collector_limit=100)
    scaled = scaled_config(config, 10.0)
    assert scaled.workload.sending_rate == pytest.approx(1_000)
    assert scaled.ledger.block_size_bytes == pytest.approx(config.ledger.block_size_bytes / 10, rel=0.01)
    # Offered-load over analytical-capacity is unchanged.
    original_ratio = config.workload.sending_rate / analytical_reference(config)
    scaled_ratio = scaled.workload.sending_rate / analytical_reference(scaled)
    assert scaled_ratio == pytest.approx(original_ratio, rel=0.02)
    # Collector timeout and processing costs scale up to compensate.
    assert scaled.setchain.collector_timeout == pytest.approx(10.0)
    assert scaled.setchain.element_validation_time == pytest.approx(
        config.setchain.element_validation_time * 10)


def test_scaled_config_identity_and_validation():
    config = base_scenario("vanilla")
    assert scaled_config(config, 1.0) is config
    with pytest.raises(ConfigurationError):
        scaled_config(config, 0)


def test_analytical_reference_uses_scenario_parameters():
    v = analytical_reference(base_scenario("vanilla"))
    h100 = analytical_reference(base_scenario("hashchain", collector_limit=100))
    h500 = analytical_reference(base_scenario("hashchain", collector_limit=500))
    assert v == pytest.approx(955, rel=0.02)
    assert h100 == pytest.approx(27_157, rel=0.02)
    assert h500 == pytest.approx(147_857, rel=0.02)


# -- runner ---------------------------------------------------------------------------------

def test_run_scenario_packages_all_analyses():
    config = base_scenario("hashchain", sending_rate=150, injection_duration=5,
                           drain_duration=40, n_servers=4, collector_limit=20)
    result = run_scenario(config, scale=1.0)
    assert isinstance(result.throughput, ThroughputSeries)
    assert result.avg_throughput_50s > 0
    assert 0.0 <= result.efficiency.at_100 <= 1.0
    assert result.commit_times.first_element is not None
    assert result.analytical_throughput > 0
    assert result.label == config.label
    assert len(result.summary_row()) == 6


# -- scenarios ---------------------------------------------------------------------------------

def test_figure1_scenarios_match_paper_panels():
    panels = figure1_scenarios()
    assert set(panels) == {"left", "center", "right"}
    assert [c.algorithm for c in panels["left"]] == ["vanilla", "compresschain", "hashchain"]
    assert all(c.workload.sending_rate == 5_000 for c in panels["left"])
    assert all(c.setchain.collector_limit == 500 for c in panels["right"])
    assert all(c.setchain.n_servers == 10 for cs in panels.values() for c in cs)


def test_figure2_scenarios_include_light_variants():
    algorithms = [c.algorithm for c in figure2_left_scenarios()]
    assert "hashchain-light" in algorithms and "hashchain" in algorithms
    assert "compresschain-light" in algorithms and "vanilla" in algorithms


def test_figure3_grids_cover_table1_dimensions():
    rates = {c.workload.sending_rate for c in figure3a_grid()}
    assert rates == {500, 1000, 5000, 10000}
    servers = {c.setchain.n_servers for c in figure3b_grid()}
    assert servers == {4, 7, 10}
    delays = {round(c.ledger.network_delay * 1000) for c in figure3c_grid()}
    assert delays == {0, 30, 100}
    assert set(figure5_grids()) == {"rate", "servers", "delay"}


def test_figure4_scenarios_match_paper_setting():
    configs = figure4_scenarios()
    assert [c.algorithm for c in configs] == ["vanilla", "compresschain", "hashchain"]
    assert all(c.workload.sending_rate == 1_250 for c in configs)
    assert all(c.setchain.collector_limit == 100 for c in configs)


def test_table1_parameters_verbatim():
    params = table1_parameters()
    assert params["sending_rate (el/s)"] == (10_000, 5_000, 1_000, 500)
    assert params["collector_limit (el)"] == (100, 500)
    assert params["server_count"] == (4, 7, 10)
    assert params["network_delay (ms)"] == (0, 30, 100)


# -- figure/table regenerators (cheap paths only) -------------------------------------------------

def test_figure2_right_is_pure_analytical():
    data = figures.figure2_right(block_sizes_mb=(0.5, 4, 128))
    assert data["block_size_mb"] == [0.5, 4, 128]
    assert data["hashchain"][-1] > 3e7
    assert data["hashchain"][0] > data["compresschain"][0] > data["vanilla"][0]


def test_appendix_d1_table_values():
    values = tables.appendix_d1()
    for key, expected in tables.PAPER_ANALYTICAL_VALUES.items():
        assert values[key] == pytest.approx(expected, rel=0.02)


def test_table1_renders_every_parameter():
    text = tables.table1()
    for token in ("sending_rate", "collector_limit", "server_count", "network_delay",
                  "10000", "500", "100"):
        assert token in text


def test_figure1_runs_at_high_scale_and_orders_algorithms():
    """A very aggressive scale keeps this integration path fast; ordering must hold."""
    panels = figures.figure1(scale=100.0, panels=("left",))
    curves = {c.label: c for c in panels["left"]}
    assert set(curves) == {"vanilla", "compresschain", "hashchain"}
    assert curves["hashchain"].analytical > curves["compresschain"].analytical > \
        curves["vanilla"].analytical
