"""Tests for the Appendix-G execution layer (Setchain → full blockchain)."""

import pytest

from repro.core.execution import AccountState, EpochExecutor, Transfer
from repro.errors import SetchainError
from repro.workload.elements import make_element


def payload_table(table):
    """Build a payload_of function from {element_id: Transfer}."""
    return lambda element: table.get(element.element_id)


def test_transfer_validation():
    with pytest.raises(SetchainError):
        Transfer("a", "b", 0)


def test_account_state_credit_and_apply():
    state = AccountState({"alice": 100})
    assert state.balance("alice") == 100
    assert state.balance("bob") == 0
    assert state.try_apply(Transfer("alice", "bob", 60))
    assert state.balance("alice") == 40 and state.balance("bob") == 60
    assert not state.try_apply(Transfer("alice", "bob", 50))
    state.credit("carol", 10)
    assert state.balance("carol") == 10


def test_optimistic_filter_drops_invalid_elements():
    good, bad = make_element("c", 10), make_element("c", 10, valid=False)
    executor = EpochExecutor(AccountState(), lambda e: None)
    assert executor.optimistic_filter([good, bad]) == [good]


def test_epoch_execution_applies_and_voids():
    e1, e2, e3 = (make_element("c", 10) for _ in range(3))
    table = {e1.element_id: Transfer("alice", "bob", 70),
             e2.element_id: Transfer("alice", "bob", 70),   # insufficient after e1
             e3.element_id: None}
    executor = EpochExecutor(AccountState({"alice": 100}), payload_table(table))
    result = executor.execute_epoch(1, [e1, e2, e3])
    assert result.applied == 1 and result.voided == 1
    assert e2.element_id in result.void_reasons
    assert executor.total_applied == 1 and executor.total_voided == 1


def test_execution_is_deterministic_by_element_id():
    """Elements within an epoch execute in element-id order on every replica."""
    e_small, e_big = sorted((make_element("c", 10), make_element("c", 10)),
                            key=lambda e: e.element_id)
    table = {e_small.element_id: Transfer("alice", "bob", 80),
             e_big.element_id: Transfer("alice", "carol", 80)}
    run_a = EpochExecutor(AccountState({"alice": 100}), payload_table(table))
    run_b = EpochExecutor(AccountState({"alice": 100}), payload_table(table))
    # Present the elements in different orders: outcome must be identical.
    res_a = run_a.execute_epoch(1, [e_small, e_big])
    res_b = run_b.execute_epoch(1, [e_big, e_small])
    assert (res_a.applied, res_a.voided) == (res_b.applied, res_b.voided)
    assert run_a.state.balances == run_b.state.balances


def test_epochs_must_execute_in_order_and_once():
    executor = EpochExecutor(AccountState(), lambda e: None)
    executor.execute_epoch(1, [])
    with pytest.raises(SetchainError):
        executor.execute_epoch(3, [])
    with pytest.raises(SetchainError):
        executor.execute_epoch(1, [])


def test_execute_history_runs_pending_epochs_in_order():
    e1, e2 = make_element("c", 10), make_element("c", 10)
    table = {e1.element_id: Transfer("alice", "bob", 30),
             e2.element_id: Transfer("bob", "carol", 20)}
    executor = EpochExecutor(AccountState({"alice": 50}), payload_table(table))
    results = executor.execute_history({2: [e2], 1: [e1]})
    assert [r.epoch_number for r in results] == [1, 2]
    assert executor.state.balance("carol") == 20
    # Re-running the same history is a no-op.
    assert executor.execute_history({1: [e1], 2: [e2]}) == []
