"""Algorithm-level tests for Vanilla over the ideal ledger."""

import pytest

from repro.core.properties import check_all
from repro.core.types import EpochProof
from repro.workload.elements import make_element

from conftest import build_servers


@pytest.fixture
def cluster(sim, network, scheme, small_setchain_config, ideal_ledger):
    return build_servers("vanilla", sim, network, scheme, small_setchain_config,
                         ideal_ledger)


def test_add_rejects_invalid_and_duplicate(cluster):
    server = cluster[0]
    element = make_element("c", 100)
    assert server.add(element)
    assert not server.add(element)
    assert not server.add(make_element("c", 100, valid=False))
    assert server.duplicate_adds == 1
    assert server.rejected_elements == 1
    view = server.get()
    assert element in view.the_set and len(view.the_set) == 1


def test_added_element_reaches_every_server_and_an_epoch(sim, cluster):
    element = make_element("c", 100)
    cluster[0].add(element)
    sim.run_until(5.0)
    for server in cluster:
        view = server.get()
        assert element in view.the_set
        assert view.epoch_of(element) is not None


def test_epoch_per_block_and_unique_assignment(sim, cluster):
    elements = [make_element("c", 100) for _ in range(20)]
    for i, element in enumerate(elements):
        cluster[i % 4].add(element)
    sim.run_until(10.0)
    views = {s.name: s.get() for s in cluster}
    assert not check_all(views, quorum=3, all_added=elements)
    # All 20 elements are epoched exactly once on every server.
    for view in views.values():
        assert sum(len(e) for e in view.history.values()) == 20


def test_epoch_proofs_reach_quorum(sim, cluster, small_setchain_config):
    element = make_element("c", 100)
    cluster[0].add(element)
    sim.run_until(10.0)
    view = cluster[1].get()
    epoch = view.epoch_of(element)
    signers = {p.signer for p in view.proofs_for(epoch)}
    assert len(signers) >= small_setchain_config.quorum
    assert epoch in cluster[1].committed_epoch_numbers()


def test_invalid_elements_in_ledger_are_not_epoched(sim, cluster, ideal_ledger):
    from repro.ledger.types import new_transaction
    bad = make_element("byz", 100, valid=False)
    good = make_element("c", 100)
    ideal_ledger.submit(new_transaction(bad, bad.size_bytes, "byzantine"))
    cluster[0].add(good)
    sim.run_until(5.0)
    for server in cluster:
        view = server.get()
        assert bad not in view.the_set
        assert bad not in view.elements_in_epochs()
        assert good in view.elements_in_epochs()


def test_duplicate_ledger_entries_epoched_once(sim, cluster, ideal_ledger):
    from repro.ledger.types import new_transaction
    element = make_element("c", 100)
    # A Byzantine server replays the same element as two ledger transactions.
    ideal_ledger.submit(new_transaction(element, element.size_bytes, "byz-1"))
    ideal_ledger.submit(new_transaction(element, element.size_bytes, "byz-2"))
    sim.run_until(5.0)
    for server in cluster:
        view = server.get()
        epochs_containing = [i for i, e in view.history.items() if element in e]
        assert len(epochs_containing) == 1


def test_consistent_epochs_across_servers(sim, cluster):
    for i in range(12):
        cluster[i % 4].add(make_element(f"c{i % 4}", 80 + i))
    sim.run_until(10.0)
    reference = cluster[0].get()
    for server in cluster[1:]:
        view = server.get()
        common = min(reference.epoch, view.epoch)
        for epoch in range(1, common + 1):
            assert reference.history[epoch] == view.history[epoch]


def test_proof_transactions_do_not_create_epochs(sim, cluster):
    # One element -> one epoch; the later proof-only blocks must not create more.
    cluster[0].add(make_element("c", 100))
    sim.run_until(20.0)
    epochs = {server.get().epoch for server in cluster}
    assert epochs == {1}


def test_get_returns_proofs_as_epoch_proof_objects(sim, cluster):
    cluster[0].add(make_element("c", 100))
    sim.run_until(10.0)
    view = cluster[0].get()
    assert view.proofs
    assert all(isinstance(p, EpochProof) for p in view.proofs)
