"""Tests for configuration dataclasses and the Table 1 grid."""

import pytest

from repro.config import (
    ExperimentConfig,
    LedgerConfig,
    SetchainConfig,
    WorkloadConfig,
    base_scenario,
    table1_grid,
)
from repro.errors import ConfigurationError


def test_ledger_config_defaults_match_paper():
    config = LedgerConfig()
    assert config.block_size_bytes == 524_288  # 0.5 MB (binary), matches Appendix D.1
    assert config.block_rate == pytest.approx(0.8)
    assert config.block_interval == pytest.approx(1.25)
    assert config.mempool_max_txs == 10_000_000


def test_ledger_config_validation():
    with pytest.raises(ConfigurationError):
        LedgerConfig(block_size_bytes=0)
    with pytest.raises(ConfigurationError):
        LedgerConfig(block_rate=-1)
    with pytest.raises(ConfigurationError):
        LedgerConfig(network_delay=-0.1)


def test_workload_config_validation():
    with pytest.raises(ConfigurationError):
        WorkloadConfig(sending_rate=0)
    with pytest.raises(ConfigurationError):
        WorkloadConfig(injection_duration=0)


def test_setchain_quorum_is_f_plus_one():
    assert SetchainConfig(n_servers=10).max_faulty == 4
    assert SetchainConfig(n_servers=10).quorum == 5
    assert SetchainConfig(n_servers=4).quorum == 2
    assert SetchainConfig(n_servers=7, f=2).quorum == 3


def test_setchain_f_bounds_enforced():
    with pytest.raises(ConfigurationError):
        SetchainConfig(n_servers=4, f=2)  # needs f < n/2
    with pytest.raises(ConfigurationError):
        SetchainConfig(n_servers=4, f=-1)
    with pytest.raises(ConfigurationError):
        SetchainConfig(collector_limit=0)
    with pytest.raises(ConfigurationError):
        SetchainConfig(element_validation_time=-1)


def test_experiment_config_validation():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(algorithm="bitcoin")
    with pytest.raises(ConfigurationError):
        ExperimentConfig(ledger_backend="postgres")
    with pytest.raises(ConfigurationError):
        ExperimentConfig(drain_duration=-1)
    config = ExperimentConfig()
    assert config.total_duration == pytest.approx(150.0)


def test_base_scenario_applies_overrides():
    config = base_scenario("compresschain", sending_rate=5000, collector_limit=500,
                           n_servers=7, network_delay_ms=30, seed=4,
                           ledger_backend="ideal", drain_duration=10)
    assert config.algorithm == "compresschain"
    assert config.workload.sending_rate == 5000
    assert config.setchain.collector_limit == 500
    assert config.setchain.n_servers == 7
    assert config.ledger.network_delay == pytest.approx(0.030)
    assert config.ledger_backend == "ideal"
    assert config.workload.seed == 4
    assert config.label


def test_base_scenario_rejects_unknown_overrides():
    with pytest.raises(ConfigurationError):
        base_scenario("vanilla", bogus=1)


def test_table1_grid_covers_all_combinations():
    grid = table1_grid()
    # Vanilla: 4 rates x 3 server counts x 3 delays = 36.
    # Compresschain/Hashchain: 36 x 2 collector sizes each = 72 each.
    assert len(grid) == 36 + 72 + 72
    algorithms = {c.algorithm for c in grid}
    assert algorithms == {"vanilla", "compresschain", "hashchain"}
    rates = {c.workload.sending_rate for c in grid}
    assert rates == {500.0, 1000.0, 5000.0, 10000.0}


def test_with_overrides_returns_modified_copy():
    config = ExperimentConfig()
    other = config.with_overrides(algorithm="vanilla")
    assert other.algorithm == "vanilla" and config.algorithm == "hashchain"
