"""ServiceRuntime: streamed ingest, backpressure, ticking, live metrics.

Covers the service façade over a deployment: bounded-queue backpressure with
exact accept/defer/reject accounting, trace-driven ingest, rolling restarts
under traffic, the live metrics/health snapshots (including the stdlib HTTP
endpoint), and the idempotent stop lifecycle.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.api.builder import Scenario
from repro.errors import ConfigurationError, SimulationError
from repro.service.http import MetricsEndpoint
from repro.service.runtime import DEFER_WATERMARK, ServiceRuntime
from repro.workload.traces import record_trace


def small_runtime(**kwargs):
    scenario = (Scenario.hashchain().servers(4).rate(100).collector(10)
                .inject_for(5).drain(30).backend("ideal"))
    return ServiceRuntime(scenario, seed=5, **kwargs)


# -- ingest and backpressure ----------------------------------------------------


def test_streamed_elements_commit_and_satisfy_properties():
    runtime = small_runtime()
    verdicts = runtime.submit_many(200)
    assert verdicts == {"accepted": 200, "deferred": 0, "rejected": 0}
    runtime.run_for(8.0)
    snapshot = runtime.metrics_snapshot()
    assert snapshot["injected"] == 200
    assert snapshot["committed"] == 200
    assert snapshot["committed_fraction"] == 1.0
    assert runtime.session.check_properties() == []
    runtime.stop()


def test_backpressure_accounts_for_every_submission():
    runtime = small_runtime(queue_limit=100)
    verdicts = runtime.submit_many(250)
    # Exactly one verdict per submission; the queue bound is respected.
    assert sum(verdicts.values()) == 250
    assert verdicts["rejected"] == 150
    assert verdicts["deferred"] > 0
    assert runtime.queue_depth == 100
    counters = runtime.ingress_counters
    assert counters["accepted"] + counters["deferred"] == 100
    runtime.run_for(1.0)
    assert runtime.queue_depth == 0  # drained into the servers
    assert runtime.drained == 100
    runtime.stop()


def test_defer_watermark_flags_pressure_before_rejection():
    runtime = small_runtime(queue_limit=10)
    verdicts = [runtime.submit() for _ in range(10)]
    watermark = int(10 * DEFER_WATERMARK)
    assert verdicts[:watermark] == ["accepted"] * watermark
    assert set(verdicts[watermark:]) == {"deferred"}
    assert runtime.submit() == "rejected"
    runtime.stop()


def test_submissions_rejected_after_stop():
    runtime = small_runtime()
    runtime.stop()
    assert runtime.submit() == "rejected"
    with pytest.raises(SimulationError, match="stopped"):
        runtime.tick()


def test_queue_held_while_every_server_is_down():
    runtime = small_runtime()
    for server in runtime.deployment.servers:
        runtime.session.crash(server.name)
    runtime.submit_many(50)
    runtime.run_for(1.0)
    assert runtime.queue_depth == 50  # nothing lost, nothing drained
    for server in runtime.deployment.servers:
        runtime.session.recover(server.name)
    runtime.run_for(8.0)
    assert runtime.queue_depth == 0
    assert runtime.metrics_snapshot()["committed"] == 50
    runtime.stop()


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        small_runtime(tick=0.0)
    with pytest.raises(ConfigurationError):
        small_runtime(queue_limit=0)
    runtime = small_runtime()
    with pytest.raises(ConfigurationError):
        runtime.submit(size_bytes=0)
    with pytest.raises(ConfigurationError):
        runtime.run_for(-1.0)
    runtime.stop()


# -- trace-driven ingest --------------------------------------------------------


def test_trace_replay_drives_ingest_through_backpressure(tmp_path):
    trace = record_trace(rate=100.0, duration=3.0,
                         clients=["client-0", "client-1"], seed=9)
    path = tmp_path / "trace.json"
    trace.to_json(path)

    runtime = small_runtime()
    assert runtime.load_trace(path) == len(trace)
    assert not runtime.trace_done
    runtime.run_for(4.0)
    assert runtime.trace_done
    counters = runtime.ingress_counters
    assert counters["accepted"] == len(trace)
    assert counters["drained"] == len(trace)
    runtime.run_for(6.0)
    snapshot = runtime.metrics_snapshot()
    assert snapshot["injected"] == len(trace)
    assert snapshot["committed"] == len(trace)
    # The replayed clients, not the submit() default, appear as origins.
    clients = {e.client for e in runtime.deployment.injected_elements}
    assert clients == {"client-0", "client-1"}
    runtime.stop()


# -- rolling restarts -----------------------------------------------------------


def test_rolling_restart_keeps_committing():
    runtime = small_runtime()
    runtime.submit_many(100)
    runtime.run_for(2.0)
    runtime.rolling_restart(names=["server-0", "server-1"],
                            down_for=1.0, between=1.0)
    runtime.submit_many(100)
    runtime.run_for(10.0)
    snapshot = runtime.metrics_snapshot()
    assert snapshot["committed"] == 200
    assert all(not state["crashed"]
               for state in snapshot["servers"].values())
    runtime.stop()


# -- live metrics ---------------------------------------------------------------


def test_metrics_snapshot_uses_run_result_vocabulary():
    runtime = small_runtime()
    runtime.submit_many(100)
    runtime.run_for(5.0)
    snapshot = runtime.metrics_snapshot()
    # RunResult vocabulary, so batch-artifact dashboards read scrapes as-is.
    for key in ("label", "algorithm", "injected", "committed",
                "committed_fraction", "first_commit"):
        assert key in snapshot
    assert snapshot["algorithm"] == "hashchain"
    assert snapshot["rolling_throughput"] > 0
    assert snapshot["ledger"]["height"] > 0
    assert set(snapshot["servers"]) == {f"server-{i}" for i in range(4)}
    json.dumps(snapshot)  # must be JSON-serialisable as scraped
    runtime.stop()


def test_healthz_degrades_below_quorum():
    runtime = small_runtime()
    assert runtime.healthz()["status"] == "ok"
    quorum = runtime.config.setchain.quorum
    live = len(runtime.deployment.servers)
    for server in runtime.deployment.servers:
        if live < quorum:
            break
        runtime.session.crash(server.name)
        live -= 1
    health = runtime.healthz()
    assert health["status"] == "degraded"
    assert health["live_servers"] < health["quorum"]
    runtime.stop()


def test_http_endpoint_serves_metrics_and_health():
    runtime = small_runtime()
    endpoint = MetricsEndpoint(runtime)
    try:
        runtime.submit_many(50)
        runtime.run_for(3.0)
        with urllib.request.urlopen(endpoint.url + "/metrics") as response:
            assert response.status == 200
            scraped = json.load(response)
        assert scraped["injected"] == 50
        assert scraped == runtime.metrics_snapshot()
        with urllib.request.urlopen(endpoint.url + "/healthz") as response:
            assert json.load(response)["status"] == "ok"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(endpoint.url + "/nowhere")
        assert excinfo.value.code == 404
    finally:
        endpoint.stop()
        endpoint.stop()  # idempotent
        runtime.stop()


def test_http_healthz_reports_degraded_as_503():
    runtime = small_runtime()
    endpoint = MetricsEndpoint(runtime)
    try:
        for server in runtime.deployment.servers:
            runtime.session.crash(server.name)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(endpoint.url + "/healthz")
        assert excinfo.value.code == 503
        assert json.load(excinfo.value)["status"] == "degraded"
    finally:
        endpoint.stop()
        runtime.stop()


# -- lifecycle ------------------------------------------------------------------


def test_stop_is_idempotent_and_context_manager_stops():
    with small_runtime() as runtime:
        runtime.submit_many(10)
        runtime.run_for(1.0)
    assert runtime.stopped
    runtime.stop()  # second stop is a no-op
    assert runtime.deployment.stopped


def test_result_packages_batch_analyses():
    runtime = small_runtime()
    runtime.submit_many(100)
    runtime.run_for(8.0)
    result = runtime.result()
    assert result.injected == 100
    assert result.committed == 100
    runtime.stop()


def test_healthz_excludes_draining_leaver_from_live_count():
    # Regression: a departing-but-not-yet-retired server used to count as
    # live, so /healthz could claim a quorum the write path no longer had.
    runtime = small_runtime()
    runtime.submit_many(50)
    runtime.run_for(1.0)
    assert runtime.healthz()["live_servers"] == 4
    runtime.remove_server("server-3")
    draining = next(s for s in runtime.deployment.servers
                    if s.name == "server-3")
    assert draining.draining and not draining.departed
    health = runtime.healthz()
    assert health["live_servers"] == 3
    assert health["status"] == "ok"  # 3 of quorum 2: still serving
    runtime.run_for(15.0)
    assert [s.name for s in runtime.deployment.departed_servers] == ["server-3"]
    final = runtime.healthz()
    assert final["live_servers"] == 3
    assert final["epoch"] == 2  # retirement sealed the membership change
    runtime.stop()


def test_rolling_restart_after_leave_keeps_health_consistent():
    # The departed_servers seam: a retired leaver must stay out of both the
    # restart rotation and the live count while survivors cycle.
    runtime = small_runtime()
    runtime.submit_many(100)
    runtime.run_for(2.0)
    runtime.remove_server("server-3")
    runtime.run_for(15.0)
    assert [s.name for s in runtime.deployment.departed_servers] == ["server-3"]
    runtime.rolling_restart(names=["server-0", "server-1"],
                            down_for=1.0, between=1.0)
    runtime.submit_many(100)
    runtime.run_for(10.0)
    snapshot = runtime.metrics_snapshot()
    assert snapshot["committed"] == 200
    health = runtime.healthz()
    assert health["status"] == "ok"
    assert health["live_servers"] == 3
    runtime.stop()


# -- sharded service ------------------------------------------------------------


def sharded_runtime(**kwargs):
    scenario = (Scenario.hashchain().servers(2).shards(2).rate(200)
                .collector(10).inject_for(5).drain(30).backend("ideal"))
    return ServiceRuntime(scenario, seed=5, **kwargs)


def test_sharded_ingress_routes_across_shards_and_commits():
    runtime = sharded_runtime()
    verdicts = runtime.submit_many(200)
    assert verdicts == {"accepted": 200, "deferred": 0, "rejected": 0}
    runtime.run_for(8.0)
    router = runtime.deployment.shard_router
    assert router.routed == 200
    assert all(count > 0 for count in router.per_shard_routed)
    snapshot = runtime.metrics_snapshot()
    assert snapshot["committed"] == 200
    assert runtime.session.check_properties() == []
    assert runtime.session.check_logical_properties() == []
    runtime.stop()


def test_sharded_healthz_reports_per_shard_liveness():
    runtime = sharded_runtime()
    health = runtime.healthz()
    assert health["status"] == "ok"
    assert set(health["shards"]) == {"0", "1"}
    assert all(entry["live"] == 2 for entry in health["shards"].values())
    # One whole shard down: the service is degraded even though the global
    # live count still clears the (per-shard) quorum.
    runtime.session.crash("server-2")
    runtime.session.crash("server-3")
    health = runtime.healthz()
    assert health["status"] == "degraded"
    assert health["shards"]["1"]["live"] == 0
    assert health["shards"]["0"]["live"] == 2
    runtime.stop()
