"""Smoke tests: every shipped example runs to completion and reports success.

The heavyweight Figure-1-style comparison example is exercised indirectly (its
machinery is the experiment runner, covered elsewhere); the four interactive
examples are run as scripts so a regression in the public API surfaces here.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True, text=True, timeout=300, check=False)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert {"quickstart.py", "digital_registry.py", "voting.py",
            "byzantine_tolerance.py", "throughput_comparison.py",
            "chaos_partition.py", "chaos_byzantine.py",
            "service_overload.py", "trace_lifecycle.py"} <= names


def test_quickstart_example():
    out = run_example("quickstart.py")
    assert "property check    : OK" in out
    assert "elements committed" in out


def test_digital_registry_example():
    out = run_example("digital_registry.py")
    assert "12/12 diplomas verified" in out
    assert "Safety properties: OK" in out


def test_voting_example():
    out = run_example("voting.py")
    assert "Identical tally on every server" in out
    assert "winner:" in out


def test_byzantine_tolerance_example():
    out = run_example("byzantine_tolerance.py")
    assert "honest elements epoched on every correct server : 30/30" in out
    assert "withheld elements epoched anywhere              : 0/10" in out
    assert "OK" in out


def test_chaos_partition_example():
    out = run_example("chaos_partition.py")
    assert "chaos timeline:" in out
    assert "availability by window:" in out
    assert "correct-server check : OK" in out


def test_service_overload_example():
    out = run_example("service_overload.py")
    assert "rejected by backpressure" in out
    assert "(100.0%)" in out  # every admitted element committed
    assert "property check    : OK" in out


def test_chaos_byzantine_example():
    out = run_example("chaos_byzantine.py")
    assert "become-byzantine" in out
    assert "withheld requests" in out
    assert "correct-server check : OK" in out
    assert "epoch convergence    : OK" in out


def test_trace_lifecycle_example():
    out = run_example("trace_lifecycle.py")
    assert "phase latencies since injection" in out
    assert "committed" in out and "p99" in out
    assert "verify cache" in out
    assert "trace file" in out and "tracks" in out
