"""Tests for the ideal ledger (Properties 9-11 behaviour without consensus)."""

import pytest

from repro.config import LedgerConfig
from repro.errors import LedgerError
from repro.ledger.abci import Application
from repro.ledger.ideal import IdealLedger
from repro.ledger.types import Block, new_transaction
from repro.sim.scheduler import Simulator


class RecordingApp(Application):
    def __init__(self):
        self.blocks: list[Block] = []

    def finalize_block(self, block: Block) -> None:
        self.blocks.append(block)


@pytest.fixture
def sim():
    return Simulator(seed=0)


@pytest.fixture
def ledger(sim):
    ledger = IdealLedger(sim, LedgerConfig(block_size_bytes=1000, block_rate=1.0))
    ledger.start()
    return ledger


def test_appended_tx_eventually_in_block(sim, ledger):
    app = RecordingApp()
    handle = ledger.handle_for("server-0")
    handle.subscribe(app)
    tx = new_transaction("hello", 100, "server-0")
    handle.append(tx)
    sim.run_until(2.0)
    assert ledger.height >= 1
    assert any(tx.tx_id == t.tx_id for block in app.blocks for t in block)
    assert ledger.inclusion_height[tx.tx_id] == app.blocks[0].height


def test_all_subscribers_see_same_blocks_in_order(sim, ledger):
    apps = [RecordingApp() for _ in range(3)]
    handles = [ledger.handle_for(f"s{i}") for i in range(3)]
    for handle, app in zip(handles, apps):
        handle.subscribe(app)
    for i in range(10):
        handles[i % 3].append(new_transaction(f"tx{i}", 50, f"s{i % 3}"))
    sim.run_until(5.0)
    reference = [[t.tx_id for t in block] for block in apps[0].blocks]
    assert reference  # something was committed
    for app in apps[1:]:
        assert [[t.tx_id for t in block] for block in app.blocks] == reference


def test_duplicate_submit_is_ignored(sim, ledger):
    app = RecordingApp()
    handle = ledger.handle_for("server-0")
    handle.subscribe(app)
    tx = new_transaction("x", 10, "server-0")
    handle.append(tx)
    handle.append(tx)
    sim.run_until(3.0)
    appearances = sum(1 for block in app.blocks for t in block if t.tx_id == tx.tx_id)
    assert appearances == 1


def test_block_size_cap_splits_transactions(sim, ledger):
    app = RecordingApp()
    handle = ledger.handle_for("server-0")
    handle.subscribe(app)
    for _ in range(4):
        handle.append(new_transaction("big", 400, "server-0"))
    sim.run_until(1.01)
    # Only two 400-byte txs fit into the 1000-byte first block.
    assert len(app.blocks) == 1
    assert len(app.blocks[0]) == 2
    sim.run_until(2.01)
    assert len(app.blocks) == 2
    assert sum(len(b) for b in app.blocks) == 4


def test_oversized_transaction_goes_alone(sim, ledger):
    app = RecordingApp()
    handle = ledger.handle_for("server-0")
    handle.subscribe(app)
    handle.append(new_transaction("huge", 5000, "server-0"))
    handle.append(new_transaction("small", 10, "server-0"))
    sim.run_until(1.01)
    assert len(app.blocks[0]) == 1
    assert app.blocks[0][0].size_bytes == 5000


def test_no_empty_blocks(sim, ledger):
    app = RecordingApp()
    handle = ledger.handle_for("server-0")
    handle.subscribe(app)
    sim.run_until(5.0)
    assert app.blocks == []
    assert ledger.height == 0


def test_double_subscribe_rejected(ledger):
    app = RecordingApp()
    handle = ledger.handle_for("server-0")
    handle.subscribe(app)
    with pytest.raises(LedgerError):
        handle.subscribe(app)


def test_heights_are_consecutive(sim, ledger):
    app = RecordingApp()
    handle = ledger.handle_for("server-0")
    handle.subscribe(app)
    for i in range(6):
        sim.call_at(float(i) + 0.1, lambda i=i: handle.append(
            new_transaction(f"t{i}", 100, "server-0")))
    sim.run_until(10.0)
    heights = [b.height for b in app.blocks]
    assert heights == list(range(1, len(heights) + 1))
