"""Tests for the network substrate: latency models, nodes, delivery, faults."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.net.latency import ConstantLatency, UniformLatency, lan_profile, wan_profile
from repro.net.message import Message
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.sim.rng import DeterministicRNG
from repro.sim.scheduler import Simulator


class Recorder(NetworkNode):
    """Test node that records received payloads and delivery times."""

    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.received = []
        self.on("ping", self._on_ping)
        self.on("data", self._on_ping)

    def _on_ping(self, message: Message) -> None:
        self.received.append((self.sim.now, message.sender, message.payload))


@pytest.fixture
def pair(sim):
    network = Network(sim, latency=ConstantLatency(base=0.010))
    a, b = Recorder("a", sim), Recorder("b", sim)
    network.register(a)
    network.register(b)
    return network, a, b


# -- latency models ---------------------------------------------------------------

def test_constant_latency_includes_per_byte_and_extra():
    model = ConstantLatency(base=0.01, per_byte=0.001, extra_delay=0.1)
    delay = model.delay(DeterministicRNG(0), "a", "b", size_bytes=5)
    assert delay == pytest.approx(0.01 + 0.005 + 0.1)


def test_uniform_latency_within_bounds():
    model = UniformLatency(low=0.01, high=0.02)
    rng = DeterministicRNG(1)
    for _ in range(200):
        assert 0.01 <= model.delay(rng, "a", "b", 0) <= 0.02


def test_latency_validation_errors():
    with pytest.raises(ConfigurationError):
        ConstantLatency(base=-0.1)
    with pytest.raises(ConfigurationError):
        UniformLatency(low=0.2, high=0.1)
    with pytest.raises(ConfigurationError):
        ConstantLatency(extra_delay=-1.0)


def test_lan_profile_is_submillisecond_and_wan_is_not():
    rng = DeterministicRNG(2)
    lan = lan_profile()
    wan = wan_profile()
    lan_delays = [lan.delay(rng, "a", "b", 100) for _ in range(100)]
    wan_delays = [wan.delay(rng, "a", "b", 100) for _ in range(100)]
    assert max(lan_delays) < 0.005
    assert min(wan_delays) >= 0.030


def test_network_delay_parameter_adds_to_every_message():
    rng = DeterministicRNG(3)
    base = lan_profile()
    delayed = lan_profile(network_delay=0.100)
    assert delayed.delay(rng, "a", "b", 0) >= 0.100
    assert base.extra_delay == 0.0 and delayed.extra_delay == 0.100


# -- node / network behaviour ---------------------------------------------------------

def test_point_to_point_delivery_applies_latency(pair, sim):
    network, a, b = pair
    a.send("b", "ping", "hello", size_bytes=10)
    sim.run_until(1.0)
    assert len(b.received) == 1
    time, sender, payload = b.received[0]
    assert sender == "a" and payload == "hello"
    assert time == pytest.approx(0.010, abs=1e-9)


def test_broadcast_reaches_all_other_nodes(sim):
    network = Network(sim, latency=ConstantLatency(base=0.001))
    nodes = [Recorder(f"n{i}", sim) for i in range(5)]
    for node in nodes:
        network.register(node)
    nodes[0].broadcast("ping", 42)
    sim.run_until(1.0)
    assert all(len(n.received) == 1 for n in nodes[1:])
    assert len(nodes[0].received) == 0


def test_self_send_is_asynchronous_but_immediate(pair, sim):
    network, a, _ = pair
    a.send("a", "ping", "self")
    assert a.received == []  # not delivered synchronously
    sim.run_until(0.0)
    assert a.received == [(0.0, "a", "self")]


def test_unknown_recipient_raises(pair):
    _, a, _ = pair
    with pytest.raises(NetworkError):
        a.send("nobody", "ping", 1)


def test_unhandled_message_type_raises(pair, sim):
    network, a, b = pair
    a.send("b", "mystery", None)
    with pytest.raises(NetworkError):
        sim.run_until(1.0)


def test_duplicate_registration_rejected(sim):
    network = Network(sim)
    node = Recorder("dup", sim)
    network.register(node)
    with pytest.raises(NetworkError):
        network.register(Recorder("dup", sim))


def test_byte_and_message_accounting(pair, sim):
    network, a, b = pair
    a.send("b", "data", b"x" * 10, size_bytes=10)
    a.send("b", "data", b"y" * 20, size_bytes=20)
    sim.run_until(1.0)
    assert a.messages_sent == 2 and a.bytes_sent == 30
    assert b.messages_received == 2 and b.bytes_received == 30
    assert network.messages_delivered == 2 and network.bytes_delivered == 30


def test_drop_rule_drops_matching_messages(pair, sim):
    network, a, b = pair
    network.add_drop_rule(lambda m: m.msg_type == "ping")
    a.send("b", "ping", 1)
    a.send("b", "data", 2)
    sim.run_until(1.0)
    assert [p for _, _, p in b.received] == [2]
    assert network.messages_dropped == 1
    network.clear_drop_rules()
    a.send("b", "ping", 3)
    sim.run_until(2.0)
    assert [p for _, _, p in b.received] == [2, 3]


def test_partition_blocks_and_heal_restores(pair, sim):
    network, a, b = pair
    network.partition({"a"}, {"b"})
    a.send("b", "ping", "blocked")
    sim.run_until(1.0)
    assert b.received == []
    network.heal()
    a.send("b", "ping", "through")
    sim.run_until(2.0)
    assert [p for _, _, p in b.received] == ["through"]


def test_message_reply_addresses_sender():
    message = Message(sender="a", recipient="b", msg_type="req", payload=1)
    reply = message.reply("resp", 2, size_bytes=8)
    assert reply.sender == "b" and reply.recipient == "a"
    assert reply.msg_type == "resp" and reply.size_bytes == 8


def test_message_ids_are_unique():
    ids = {Message("a", "b", "t", None).msg_id for _ in range(100)}
    assert len(ids) == 100


def test_node_names_sorted_and_membership(sim):
    network = Network(sim)
    for name in ["zeta", "alpha", "mid"]:
        network.register(Recorder(name, sim))
    assert network.node_names() == ["alpha", "mid", "zeta"]
    assert "alpha" in network and "nope" not in network
    assert len(network) == 3
    with pytest.raises(NetworkError):
        network.node("nope")


# -- targeted heal / idempotent partitions (fault-injection contract) ------------

def test_partition_is_idempotent_in_either_group_order(pair, sim):
    network, a, b = pair
    network.partition({"a"}, {"b"})
    network.partition({"a"}, {"b"})
    network.partition({"b"}, {"a"})
    assert len(network._partitions) == 1
    a.send("b", "ping", "blocked")
    sim.run_until(1.0)
    assert network.messages_dropped == 1
    # One heal removes the (single) cut completely.
    network.heal({"a"}, {"b"})
    a.send("b", "ping", "through")
    sim.run_until(2.0)
    assert [p for _, _, p in b.received] == ["through"]


def test_targeted_heal_removes_only_the_matching_cut(sim):
    network = Network(sim, latency=ConstantLatency(base=0.001))
    nodes = {name: Recorder(name, sim) for name in ("a", "b", "c")}
    for node in nodes.values():
        network.register(node)
    network.partition({"a"}, {"b"})
    network.partition({"a"}, {"c"})
    network.heal({"b"}, {"a"})  # reversed order matches too
    nodes["a"].send("b", "ping", "to-b")
    nodes["a"].send("c", "ping", "to-c")
    sim.run_until(1.0)
    assert [p for _, _, p in nodes["b"].received] == ["to-b"]
    assert nodes["c"].received == []  # a-c cut still installed
    network.heal()  # no arguments: clear everything
    nodes["a"].send("c", "ping", "now")
    sim.run_until(2.0)
    assert [p for _, _, p in nodes["c"].received] == ["now"]
    with pytest.raises(NetworkError):
        network.heal({"a"}, None)  # type: ignore[arg-type]


def test_heal_of_uninstalled_cut_is_a_noop(pair, sim):
    network, a, b = pair
    network.partition({"a"}, {"b"})
    network.heal({"a"}, {"nope"})
    a.send("b", "ping", "blocked")
    sim.run_until(1.0)
    assert b.received == []


# -- multicast vs per-recipient transmit accounting parity under faults ----------
# Regression for the hoisted-check fast path: with any fault hook installed,
# both paths must produce identical drop/duplicate/byte accounting and
# identical RNG draw order.

def _faulted(network):
    """Install one of each fault hook, deterministic by message id parity."""
    network.partition({"n0"}, {"n2"})
    network.add_drop_rule(lambda m: m.msg_type == "dropme")
    network.add_drop_rule(lambda m: m.payload == "lossy" and m.size_bytes % 2 == 1)
    network.add_duplicate_rule(lambda m: m.msg_type == "ping" and m.recipient == "n1")
    network.add_delay_rule(lambda m: 0.050 if m.recipient == "n3" else 0.0)


def _accounting(network, nodes):
    return (network.messages_delivered, network.messages_dropped,
            network.messages_duplicated, network.bytes_delivered,
            {name: (node.messages_received, node.bytes_received,
                    [t for t, _, _ in node.received])
             for name, node in nodes.items()})


def _fanout_network(sim):
    network = Network(sim, latency=UniformLatency(low=0.005, high=0.020))
    nodes = {f"n{i}": Recorder(f"n{i}", sim) for i in range(4)}
    for node in nodes.values():
        network.register(node)
    _faulted(network)
    return network, nodes


def test_multicast_and_transmit_accounting_identical_under_faults():
    sim_m, sim_t = Simulator(seed=42), Simulator(seed=42)
    net_m, nodes_m = _fanout_network(sim_m)
    net_t, nodes_t = _fanout_network(sim_t)
    for round_ in range(20):
        msg_type = ("ping", "dropme", "data")[round_ % 3]
        size = 10 + round_
        payload = "lossy" if round_ % 4 == 0 else f"r{round_}"
        # Path A: the broadcast fast path.
        net_m.multicast("n0", msg_type, payload, size_bytes=size)
        # Path B: one transmit per recipient, same sorted order.
        for recipient in ("n1", "n2", "n3"):
            net_t.transmit(Message(sender="n0", recipient=recipient,
                                   msg_type=msg_type, payload=payload,
                                   size_bytes=size))
    sim_m.run_until(10.0)
    sim_t.run_until(10.0)
    assert _accounting(net_m, nodes_m) == _accounting(net_t, nodes_t)
    assert net_m.messages_dropped > 0 and net_m.messages_duplicated > 0


def test_delay_rule_shifts_delivery_time(pair, sim):
    network, a, b = pair
    rule = lambda m: 0.5  # noqa: E731
    network.add_delay_rule(rule)
    a.send("b", "ping", "slow")
    sim.run_until(1.0)
    assert b.received and b.received[0][0] == pytest.approx(0.510)
    network.remove_delay_rule(rule)
    a.send("b", "ping", "fast")
    sim.run_until(2.0)
    assert b.received[1][0] == pytest.approx(1.010)


def test_duplicate_rule_delivers_twice_and_counts(pair, sim):
    network, a, b = pair
    rule = lambda m: m.msg_type == "ping"  # noqa: E731
    network.add_duplicate_rule(rule)
    a.send("b", "ping", "twice")
    a.send("b", "data", "once")
    sim.run_until(1.0)
    assert [p for _, _, p in b.received].count("twice") == 2
    assert [p for _, _, p in b.received].count("once") == 1
    assert network.messages_duplicated == 1
    assert network.messages_delivered == 3
    network.remove_duplicate_rule(rule)
    a.send("b", "ping", "single")
    sim.run_until(2.0)
    assert [p for _, _, p in b.received].count("single") == 1


def test_crashed_recipient_traffic_counts_as_dropped(pair, sim):
    network, a, b = pair
    b.crash()
    a.send("b", "ping", "lost")
    sim.run_until(1.0)
    assert b.received == [] and b.messages_received == 0
    assert network.messages_dropped == 1
    b.recover()
    a.send("b", "ping", "back")
    sim.run_until(2.0)
    assert [p for _, _, p in b.received] == ["back"]


def test_crashed_sender_sends_nothing(pair, sim):
    network, a, b = pair
    a.crash()
    a.send("b", "ping", "void")
    a.broadcast("ping", "void")
    sim.run_until(1.0)
    assert a.messages_sent == 0 and b.received == []
