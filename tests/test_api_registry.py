"""Named-scenario registry: catalog contents, lookup, filtering, registration."""

import pytest

from repro.api import (
    Scenario,
    get_entry,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    scenario_tags,
    unregister_scenario,
)
from repro.config import ExperimentConfig
from repro.errors import ConfigurationError


def test_catalog_registers_at_least_ten_scenarios():
    assert len(scenario_names()) >= 10


def test_catalog_covers_the_advertised_families():
    names = scenario_names()
    assert "base" in names
    assert "quickstart" in names and "smoke" in names
    assert any(n.startswith("table1/") for n in names)
    assert any(n.startswith("figure1/") for n in names)
    assert any(n.startswith("figure2/") for n in names)
    assert any(n.startswith("figure4/") for n in names)
    assert any(n.startswith("stress/") for n in names)
    assert any(n.startswith("byzantine/") for n in names)
    assert any(n.startswith("burst/") for n in names)


def test_table1_grid_is_complete():
    # vanilla has no collector dimension: 4 rates x 3 servers x 3 delays.
    assert len(scenario_names(tag="table1", contains="vanilla")) == 36
    # compresschain/hashchain add the 2 collector limits.
    assert len(scenario_names(tag="table1", contains="/hashchain/")) == 72


def test_get_scenario_builds_a_config_labelled_by_name():
    config = get_scenario("table1/hashchain/r5000-n7-d30-c500")
    assert isinstance(config, ExperimentConfig)
    assert config.workload.sending_rate == 5_000
    assert config.setchain.n_servers == 7
    assert config.setchain.collector_limit == 500
    assert config.ledger.network_delay == pytest.approx(0.030)
    assert config.label == "table1/hashchain/r5000-n7-d30-c500"


def test_unknown_scenario_gets_did_you_mean():
    with pytest.raises(ConfigurationError, match="quickstart"):
        get_scenario("quickstrt")


def test_no_close_match_error_is_capped():
    # With 200+ registered names, the fallback must not dump them all.
    with pytest.raises(ConfigurationError) as excinfo:
        get_scenario("zzz")
    message = str(excinfo.value)
    assert "total)" in message
    assert len(message) < 500


def test_tag_and_substring_filters():
    byzantine = iter_scenarios(tag="byzantine")
    assert byzantine and all("byzantine" in e.tags for e in byzantine)
    assert scenario_names(contains="figure2/") == sorted(
        n for n in scenario_names() if "figure2/" in n)
    assert scenario_names(tag="no-such-tag") == []


def test_byzantine_scenarios_set_f():
    config = get_scenario("byzantine/f4-n10")
    assert config.setchain.f == 4
    assert config.setchain.quorum == 5


def test_tags_are_enumerable():
    tags = scenario_tags()
    assert {"paper", "table1", "stress", "byzantine", "burst"} <= set(tags)


def test_register_and_unregister_custom_scenario():
    @register_scenario("test/custom", tags=("custom-test",),
                       description="registered by the test suite")
    def _custom():
        return Scenario.vanilla().rate(123)

    try:
        assert get_scenario("test/custom").workload.sending_rate == 123
        assert get_entry("test/custom").description.startswith("registered")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario("test/custom")(_custom)
        register_scenario("test/custom", replace=True)(
            lambda: Scenario.vanilla().rate(456))
        assert get_scenario("test/custom").workload.sending_rate == 456
    finally:
        unregister_scenario("test/custom")
    assert "test/custom" not in scenario_names()


def test_explicit_labels_survive_registration():
    # Even a label that starts with the algorithm name must not be clobbered.
    register_scenario("test/labelled")(
        lambda: Scenario.vanilla().label("vanilla baseline run A"))
    try:
        assert get_scenario("test/labelled").label == "vanilla baseline run A"
    finally:
        unregister_scenario("test/labelled")


def test_table1_entries_match_the_grid_enumeration():
    # The catalog derives its table1/* entries from config.table1_grid().
    from repro.config import table1_grid

    grid = list(table1_grid())
    names = scenario_names(tag="table1")
    assert len(names) == len(grid)
    sample = grid[0]
    name = (f"table1/{sample.algorithm}/r{sample.workload.sending_rate:g}"
            f"-n{sample.setchain.n_servers}"
            f"-d{sample.ledger.network_delay * 1000:g}")
    if sample.algorithm != "vanilla":
        name += f"-c{sample.setchain.collector_limit}"
    assert get_scenario(name).setchain == sample.setchain


def test_figure_entries_match_the_harness_grids():
    # The CLI catalog is derived from experiments/scenarios.py; no drift.
    from repro.experiments.scenarios import figure2_left_scenarios, figure4_scenarios

    for config in figure2_left_scenarios():
        assert get_scenario(f"figure2/{config.algorithm}") == config
    for config in figure4_scenarios():
        assert get_scenario(f"figure4/{config.algorithm}") == config


def test_registering_a_catalog_name_fails_at_the_registration_site():
    # The clash must surface here, not wedge later lookups of other names.
    with pytest.raises(ConfigurationError, match="already registered"):
        register_scenario("base")(lambda: Scenario.vanilla())
    assert get_scenario("smoke").algorithm == "hashchain"  # registry still works


def test_direct_catalog_import_does_not_latch_the_loaded_flag():
    # `import repro.api.catalog` (sanctioned by its docstring) must not set
    # _catalog_loaded mid-import via the re-entrant register_scenario calls.
    import importlib
    import sys

    import repro.api.registry as reg

    saved_registry = dict(reg._REGISTRY)
    saved_loaded = reg._catalog_loaded
    saved_module = sys.modules.pop("repro.api.catalog", None)
    reg._REGISTRY.clear()
    reg._catalog_loaded = False
    try:
        importlib.import_module("repro.api.catalog")
        assert reg._catalog_loaded is False
        assert len(reg.scenario_names()) >= 10  # latches now, fully populated
        assert reg._catalog_loaded is True
    finally:
        reg._REGISTRY.clear()
        reg._REGISTRY.update(saved_registry)
        reg._catalog_loaded = saved_loaded
        if saved_module is not None:
            sys.modules["repro.api.catalog"] = saved_module


def test_factory_must_return_builder_or_config():
    register_scenario("test/broken")(lambda: "nonsense")
    try:
        with pytest.raises(ConfigurationError, match="expected a Scenario"):
            get_scenario("test/broken")
    finally:
        unregister_scenario("test/broken")
