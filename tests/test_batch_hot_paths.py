"""PR 8 batched hot paths: batch/scalar crypto equivalence, verify-cache
eviction, batch-hash memoisation, and the million-scale bench plumbing."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import MetricsCollector
from repro.bench import BENCH_MILLION, BENCH_MILLION_SMOKE, BENCH_SMOKE
from repro.bench.__main__ import main as bench_main
from repro.core import validation
from repro.core.batch_store import BatchStore
from repro.core.validation import batch_matches_hash, split_batch_valid, valid_element
from repro.crypto.hashing import hash_batch
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto import signatures
from repro.crypto.signatures import Ed25519Scheme, SimulatedScheme
from repro.workload.elements import Element, make_element

_crypto = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])


def _schemes():
    """Fresh instances of both backends sharing nothing."""
    return [SimulatedScheme(PublicKeyInfrastructure()),
            Ed25519Scheme(PublicKeyInfrastructure())]


# -- sign_many / verify_many equivalence -------------------------------------------------

@_crypto
@given(st.lists(st.text(max_size=40), max_size=8))
def test_sign_many_is_bitwise_scalar_equivalent(messages):
    for scheme in _schemes():
        keypair = scheme.generate_keypair("server-0", deployment_seed=3)
        batch = scheme.sign_many(keypair, messages)
        assert batch == [scheme.sign(keypair, m) for m in messages]


@_crypto
@given(st.lists(st.tuples(st.sampled_from(["server-0", "server-1", "ghost"]),
                          st.text(max_size=30),
                          st.booleans()),
                max_size=10),
       st.booleans())
def test_verify_many_matches_scalar_verify(entries, warm_cache):
    """Batch verdicts equal scalar verdicts: unknown owners, corrupted
    signatures, and cache warm/cold states included."""
    for scheme in _schemes():
        pairs = {owner: scheme.generate_keypair(owner, deployment_seed=5)
                 for owner in ("server-0", "server-1")}
        signer = pairs["server-0"]
        triples = []
        for owner, message, corrupt in entries:
            signature = scheme.sign(signer, message)
            if corrupt:
                signature = bytes(64)  # a tag nobody produced
            triples.append((owner, message, signature))
        # A scalar-verified reference on an identical, independent scheme —
        # the scheme under test must agree whether its cache is cold or warm.
        fresh = type(scheme)(PublicKeyInfrastructure())
        for owner in pairs:
            fresh.generate_keypair(owner, deployment_seed=5)
        expected = [fresh.verify(*t) for t in triples]
        if warm_cache:
            scheme.verify_many(triples)  # prime the positive cache
        assert scheme.verify_many(triples) == expected
        assert [scheme.verify(*t) for t in triples] == expected


def test_verify_many_unknown_owner_is_false_not_raise():
    for scheme in _schemes():
        keypair = scheme.generate_keypair("server-0")
        sig = scheme.sign(keypair, "msg")
        assert scheme.verify_many([("nobody", "msg", sig),
                                   ("server-0", "msg", sig)]) == [False, True]


# -- verify-cache FIFO eviction ----------------------------------------------------------

def test_verify_cache_evicts_oldest_half_in_fifo_order(monkeypatch):
    monkeypatch.setattr(signatures, "_VERIFY_CACHE_MAX", 8)
    scheme = SimulatedScheme(PublicKeyInfrastructure())
    keypair = scheme.generate_keypair("server-0")
    messages = [f"m{i}" for i in range(8)]
    triples = [("server-0", m, scheme.sign(keypair, m)) for m in messages]
    assert scheme.verify_many(triples) == [True] * 8
    assert len(scheme._verified) == 8
    # The next fresh positive triggers retirement of the oldest half only.
    extra = ("server-0", "m8", scheme.sign(keypair, "m8"))
    assert scheme.verify(*extra)
    cached = list(scheme._verified)
    assert cached == triples[4:] + [extra]
    # Evicted entries still verify (recomputed, then re-cached at the tail).
    assert scheme.verify(*triples[0])
    assert list(scheme._verified)[-1] == triples[0]


# -- batched flush validation ------------------------------------------------------------

@_crypto
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=2000),
                          st.booleans()),
                max_size=20))
def test_split_batch_valid_rejects_exactly_what_scalar_rejects(specs):
    items = [make_element("c", size_bytes=size, valid=valid)
             for size, valid in specs]
    items.append("not-an-element")
    elements, proofs = split_batch_valid(items)
    assert elements == [e for e in items if valid_element(e)]
    assert proofs == []


# -- batch-hash memoisation --------------------------------------------------------------

def test_batch_matches_hash_memoises_per_tuple_identity():
    validation._MATCH_MEMO.clear()
    batch = tuple(make_element("c", 100) for _ in range(3))
    digest = hash_batch(batch)
    assert batch_matches_hash(batch, digest)
    assert validation._MATCH_MEMO[id(batch)] == (batch, digest)
    # Wrong digest against the memoised tuple: no recompute, still False.
    assert not batch_matches_hash(batch, "0" * 128)
    # Lists bypass the memo entirely but agree on the verdict.
    assert batch_matches_hash(list(batch), digest)
    assert id(list(batch)) not in validation._MATCH_MEMO


def test_batch_store_payload_size_is_cached_and_correct():
    store = BatchStore()
    batch = tuple(make_element("c", size) for size in (100, 250, 7))
    store.register_local("h1", batch)
    assert store.payload_size("h1") == 357
    assert store.payload_size("h1") == 357  # served from the size cache
    assert store.payload_size("missing") == 0


# -- commit-times cache ------------------------------------------------------------------

def test_commit_times_cache_invalidates_on_new_commits():
    metrics = MetricsCollector()
    first = make_element("c", 10)
    second = make_element("c", 10)
    metrics.record_epoch_committed(1, [first], time=5.0)
    assert metrics.commit_times() == [5.0]
    assert metrics.commit_times() is metrics.commit_times()  # cached list
    metrics.record_epoch_committed(2, [second], time=3.0)
    assert metrics.commit_times() == [3.0, 5.0]


# -- million bench plumbing --------------------------------------------------------------

def test_million_case_sets_are_pinned():
    assert [c.scenario for c in BENCH_MILLION] == [
        "bench/million-hashchain", "bench/million-compresschain"]
    assert [c.scenario for c in BENCH_MILLION_SMOKE] == [
        "bench/million-smoke-hashchain", "bench/million-smoke-compresschain",
        "bench/million-smoke-vanilla"]
    seeds = [c.seed for c in BENCH_SMOKE + BENCH_MILLION + BENCH_MILLION_SMOKE]
    assert len(seeds) == len(set(seeds)), "bench seeds must stay distinct"


def test_bench_cli_set_selection_writes_tagged_artifact(tmp_path, capsys):
    out = tmp_path / "MILLION_SMOKE.json"
    code = bench_main(["run", "--set", "million-smoke",
                       "--contains", "hashchain", "--out", str(out)])
    assert code == 0
    data = json.loads(out.read_text())
    assert data["set"] == "million-smoke/partial"
    assert [r["scenario"] for r in data["results"]] == [
        "bench/million-smoke-hashchain"]
    assert data["results"][0]["elements_per_s"] > 0


def test_bench_cli_profile_smoke(tmp_path, capsys):
    out = tmp_path / "profile.pstats"
    code = bench_main(["profile", "bench/hashchain-base", "--seed", "2",
                       "--sort", "cumulative", "--limit", "3",
                       "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr().out
    assert "committed=" in captured
    assert "Ordered by: cumulative time" in captured
    assert out.exists() and out.stat().st_size > 0


def test_bench_cli_profile_rejects_unknown_sort_key():
    code = bench_main(["profile", "bench/hashchain-ed25519", "--sort", "bogus"])
    assert code == 1
