"""Integration tests: full deployments on both ledger backends, end to end."""

import pytest

from repro.config import base_scenario
from repro.core.deployment import build_deployment, run_experiment
from repro.core.client import SetchainClient
from repro.ledger.cometbft.engine import CometBFTNetwork
from repro.ledger.ideal import IdealLedger
from repro.workload.elements import make_element


def small(algorithm, **overrides):
    defaults = dict(sending_rate=120, injection_duration=5, drain_duration=40,
                    n_servers=4, collector_limit=20, seed=3)
    defaults.update(overrides)
    return base_scenario(algorithm, **defaults)


def test_build_deployment_wires_everything():
    deployment = build_deployment(small("hashchain"))
    assert len(deployment.servers) == 4
    assert isinstance(deployment.ledger_backend, CometBFTNetwork)
    assert len(deployment.clients.clients) == 4
    assert {s.algorithm for s in deployment.servers} == {"hashchain"}
    # PKI knows every server.
    assert len(deployment.scheme.pki) == 4


def test_build_deployment_ideal_backend():
    deployment = build_deployment(small("vanilla", ledger_backend="ideal"))
    assert isinstance(deployment.ledger_backend, IdealLedger)


@pytest.mark.parametrize("algorithm", ["vanilla", "compresschain", "hashchain",
                                       "hashchain-light", "compresschain-light"])
def test_end_to_end_all_algorithms_commit_and_satisfy_properties(algorithm):
    deployment = run_experiment(small(algorithm))
    injected = len(deployment.injected_elements)
    assert injected > 0
    assert deployment.metrics.committed_count == injected
    assert deployment.committed_fraction == pytest.approx(1.0)
    assert deployment.check_properties() == []


def test_end_to_end_on_ideal_backend_matches_properties():
    deployment = run_experiment(small("hashchain", ledger_backend="ideal"))
    assert deployment.metrics.committed_count == len(deployment.injected_elements)
    assert deployment.check_properties() == []


def test_deterministic_reruns_produce_identical_commit_counts():
    a = run_experiment(small("compresschain"))
    b = run_experiment(small("compresschain"))
    assert len(a.injected_elements) == len(b.injected_elements)
    assert a.metrics.committed_count == b.metrics.committed_count
    assert a.metrics.commit_times() == b.metrics.commit_times()


def test_run_to_completion_waits_for_all_commits():
    config = small("hashchain", drain_duration=1)  # too short on its own
    deployment = build_deployment(config)
    deployment.start()
    deployment.run_to_completion(extra_time=200.0)
    assert deployment.metrics.committed_count == len(deployment.injected_elements)


def test_light_client_against_running_deployment():
    deployment = build_deployment(small("hashchain"))
    deployment.start()
    client = SetchainClient("external-client", deployment.scheme,
                            quorum=deployment.config.setchain.quorum)
    element = make_element("external-client", 300)
    client.add(deployment.servers[0], element)
    outcome = client.wait_for_commit(deployment.sim, deployment.servers[2], element,
                                     max_time=120.0)
    assert outcome.committed
    assert outcome.valid_proofs >= deployment.config.setchain.quorum


def test_mempool_latency_stages_available_on_cometbft_backend():
    from repro.experiments.runner import run_scenario
    result = run_scenario(small("compresschain"), scale=1.0)
    cdfs = result.latency_cdfs()
    assert {"first_mempool", "quorum_mempools", "all_mempools",
            "ledger", "committed"} <= set(cdfs)
    committed = cdfs["committed"]
    assert committed.count > 0
    # Stage ordering: first mempool <= ledger <= commit for the median element.
    assert cdfs["first_mempool"].quantile(0.5) <= cdfs["ledger"].quantile(0.5)
    assert cdfs["ledger"].quantile(0.5) <= committed.quantile(0.5)


def test_unstressed_runs_have_second_scale_commit_latency():
    """Paper: Compresschain/Hashchain commit latency below ~4 s when unstressed."""
    deployment = run_experiment(small("hashchain", sending_rate=80))
    latencies = deployment.metrics.commit_latencies()
    assert latencies
    median = latencies[len(latencies) // 2]
    assert median < 10.0
