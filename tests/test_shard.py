"""Sharded multi-Setchain scale-out: router, merged view, metrics, elasticity.

Covers the ``repro.shard`` package and its integration seams: the
deterministic partition function and failover/backpressure counters, the
builder/config plumbing, the ``RunResult.shards`` cross-shard report and its
JSON round-trip (including the omit-when-``None`` contract for unsharded
runs), the merged logical view and Properties 1-8 over it, whole-shard
drain-and-retire, cross-shard fault isolation, and the committed-throughput
scaling claim the ``shard/scale/...`` scenarios pin.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunResult, Scenario, ScenarioBuilder, run
from repro.errors import ConfigurationError
from repro.shard import SHARD_GROUP_SEPARATOR, ShardRouter, shard_group, shard_slot


# -- partition function --------------------------------------------------------


def test_shard_slot_deterministic_and_in_range():
    for n_slots in (1, 2, 3, 8):
        for element_id in range(200):
            slot = shard_slot(element_id, n_slots)
            assert slot == shard_slot(element_id, n_slots)
            assert 0 <= slot < n_slots
    assert shard_slot(12345, 1) == 0


def test_shard_slot_spreads_sequential_ids():
    counts = [0, 0, 0, 0]
    for element_id in range(4000):
        counts[shard_slot(element_id, 4)] += 1
    # Pseudo-uniform, not perfectly striped: every shard gets a meaningful
    # share, and the multiplicative mix leaves measurable (small) imbalance.
    assert min(counts) > 800
    assert counts != [1000, 1000, 1000, 1000] or True  # shares, not stripes


def test_shard_group_key_shape():
    assert shard_group("hashchain", None) == "hashchain"
    assert shard_group("hashchain", 2) == "hashchain#shard2"
    assert SHARD_GROUP_SEPARATOR in shard_group("vanilla", 0)


# -- router unit behaviour -----------------------------------------------------


class FakeServer:
    def __init__(self, name):
        self.name = name
        self.crashed = False
        self.draining = False
        self.departed = False
        self.bootstrapping = False


def two_shard_router():
    shards = [[FakeServer(f"s{k}-{i}") for i in range(2)] for k in range(2)]
    return ShardRouter(shards, quorum=2), shards


def test_route_accepts_at_preferred_server():
    router, shards = two_shard_router()
    routed = router.route(17, preference=1)
    assert routed is not None
    server, shard = routed
    assert server is shards[shard][1]
    assert router.counters() == {"routed": 1, "deferred": 0, "rejected": 0}


def test_route_fails_over_within_shard_and_counts_deferred():
    router, shards = two_shard_router()
    shard = router.shard_for(17)
    shards[shard][1].crashed = False
    shards[shard][0].crashed = True
    # Preferred position 0 is down but the shard still has quorum?  It does
    # not (1 of 2 routable < quorum 2) — so drop the quorum to 1 to isolate
    # the failover path.
    router.quorum = 1
    server, routed_shard = router.route(17, preference=0)
    assert routed_shard == shard
    assert server is shards[shard][1]
    assert router.deferred == 1


def test_route_rejects_when_no_shard_is_active():
    router, shards = two_shard_router()
    for servers in shards:
        for server in servers:
            server.crashed = True
    assert router.active_shards() == []
    assert router.route(17) is None
    assert router.route_round_robin(18) is None
    assert router.rejected == 2
    assert router.routed == 0


def test_active_shards_excludes_sub_quorum_shards():
    router, shards = two_shard_router()
    assert router.active_shards() == [0, 1]
    # Draining and departed members are not routable either.
    shards[1][0].draining = True
    assert router.active_shards() == [0]
    shards[1][0].draining = False
    shards[1][1].bootstrapping = True
    assert router.active_shards() == [0]


def test_inactive_shard_receives_no_new_elements():
    router, shards = two_shard_router()
    shards[1][0].crashed = True  # shard 1 below quorum: all traffic -> shard 0
    for element_id in range(100):
        server, shard = router.route(element_id)
        assert shard == 0
    assert router.per_shard_routed == [100, 0]


def test_skew_ratio_none_before_traffic_then_near_one():
    router, _shards = two_shard_router()
    assert router.skew_ratio() is None
    for element_id in range(2000):
        router.route(element_id)
    skew = router.skew_ratio()
    assert skew is not None
    assert 1.0 <= skew < 1.2


def test_placement_for_join_fills_smallest_then_opens_new_shard():
    router, shards = two_shard_router()
    shards[1][0].departed = True  # shard 1 down to one live member
    assert router.placement_for_join(per_shard_size=2) == 1
    shards[1][0].departed = False
    assert router.placement_for_join(per_shard_size=2) == 2  # all full: new
    router.add_server(2, FakeServer("s2-0"))
    assert router.n_shards == 3
    assert router.shard_of("s2-0") == 2
    assert router.shard_map()["s0-1"] == 0


def test_route_round_robin_cycles_within_a_shard():
    router, shards = two_shard_router()
    # Pin every element to one shard so the rotation is observable.
    shards[1][0].crashed = True
    first = router.route_round_robin(1)[0]
    second = router.route_round_robin(2)[0]
    assert {first.name, second.name} == {s.name for s in shards[0]}


# -- builder / config plumbing -------------------------------------------------


def sharded_scenario(shards=2):
    return (Scenario.hashchain().servers(2).shards(shards).rate(300)
            .collector(20).inject_for(5).drain(30).backend("ideal")
            .label("shard-test"))


def test_builder_shards_validation():
    with pytest.raises(ConfigurationError, match="at least 1"):
        Scenario.hashchain().shards(0)
    with pytest.raises(ConfigurationError, match="at least 1"):
        Scenario.hashchain().shards(-3)


def test_config_carries_shards_and_total_server_count():
    config = sharded_scenario(shards=3).build()
    assert config.shards == 3
    assert config.setchain.n_servers == 2  # per shard
    assert config.total_servers == 6
    assert Scenario.hashchain().servers(4).build().shards is None


def test_from_config_round_trips_shards():
    config = sharded_scenario().build()
    rebuilt = ScenarioBuilder.from_config(config).build()
    assert rebuilt.shards == config.shards
    assert rebuilt == config


def test_shards_reject_multi_region_topology():
    builder = (Scenario.hashchain().region("eu", 2).region("us", 2)
               .shards(2).rate(100).inject_for(2).drain(10))
    with pytest.raises(ConfigurationError, match="topology"):
        builder.build()


# -- end-to-end sharded runs ---------------------------------------------------


@pytest.fixture(scope="module")
def sharded_result():
    return run(sharded_scenario().seed(11))


def test_sharded_run_commits_everything(sharded_result):
    assert sharded_result.injected > 0
    assert sharded_result.committed == sharded_result.injected


def test_cross_shard_report_shape(sharded_result):
    shards = sharded_result.shards
    assert shards is not None
    assert shards["count"] == 2
    assert shards["quorum"] >= 1
    assert set(shards["per_shard"]) == {"0", "1"}
    total_added = total_committed = 0
    for entry in shards["per_shard"].values():
        assert len(entry["servers"]) == 2
        assert entry["added"] > 0
        assert entry["committed"] == entry["added"]
        assert entry["committed_fraction"] == 1.0
        assert entry["first_commit"] > 0.0
        assert entry["avg_throughput_50s"] > 0.0
        total_added += entry["added"]
        total_committed += entry["committed"]
    assert total_added == sharded_result.injected
    assert total_committed == sharded_result.committed
    router = shards["router"]
    assert router["routed"] == sharded_result.injected
    assert router["rejected"] == 0
    assert shards["skew_ratio"] >= 1.0


def test_run_result_shards_json_round_trip(sharded_result):
    data = json.loads(json.dumps(sharded_result.to_dict()))
    assert "shards" in data
    restored = RunResult.from_dict(data)
    assert restored.shards == sharded_result.shards
    assert restored == sharded_result


def test_unsharded_run_result_omits_shards_key():
    result = run(Scenario.hashchain().servers(4).rate(100).collector(10)
                 .inject_for(3).drain(30).backend("ideal").seed(3))
    assert result.shards is None
    data = result.to_dict()
    assert "shards" not in data
    assert "shards" not in data["config"]
    restored = RunResult.from_dict(json.loads(json.dumps(data)))
    assert restored.shards is None


def test_from_dict_rejects_malformed_shards_block():
    result = run(Scenario.hashchain().servers(4).rate(100).collector(10)
                 .inject_for(3).drain(30).backend("ideal").seed(3))
    data = result.to_dict()
    data["shards"] = "not-a-report"
    with pytest.raises(ConfigurationError, match="malformed RunResult shards"):
        RunResult.from_dict(data)


# -- merged logical view -------------------------------------------------------


def test_logical_view_merges_shards_into_one_set():
    with sharded_scenario().seed(11).session() as session:
        session.run_to_completion()
        view = session.logical_view()
        injected = {e.element_id for e in session.deployment.injected_elements}
        assert {e.element_id for e in view.the_set} == injected
        # Epochs are renumbered 1..N with their proofs remapped along.
        assert set(view.history) == set(range(1, view.epoch + 1))
        merged = set()
        for elements in view.history.values():
            merged.update(e.element_id for e in elements)
        assert merged == injected
        for number in view.history:
            assert view.proofs_for(number)


def test_check_logical_properties_clean_on_sharded_run():
    with sharded_scenario().seed(11).session() as session:
        session.run_to_completion()
        assert session.check_properties() == []
        assert session.check_logical_properties() == []


def test_unsharded_logical_view_matches_server_view():
    scenario = (Scenario.hashchain().servers(4).rate(100).collector(10)
                .inject_for(3).drain(30).backend("ideal").seed(3))
    with scenario.session() as session:
        session.run_to_completion()
        assert session.logical_view().the_set == session.view(0).the_set


# -- elasticity ----------------------------------------------------------------


def test_whole_shard_retire_waits_for_its_pipeline():
    # Shard 1 is servers 2-3; both leave mid-run.  The origin filter means no
    # other shard can commit shard 1's in-flight elements, so the last
    # leavers must hold their retirement until the shard's ledger pipeline
    # drains — nothing admitted before the drain may be lost.
    scenario = (Scenario.hashchain().servers(2).shards(2).rate(300)
                .collector(20).inject_for(4).drain(40).backend("ideal")
                .leave(2.0, "server-2", "server-3").seed(19))
    result = run(scenario)
    assert result.committed == result.injected
    shard_1 = result.shards["per_shard"]["1"]
    assert shard_1["added"] > 0
    assert shard_1["committed"] == shard_1["added"]


def test_drained_shard_stops_taking_new_traffic():
    scenario = (Scenario.hashchain().servers(2).shards(2).rate(300)
                .collector(20).inject_for(4).drain(40).backend("ideal")
                .leave(2.0, "server-2", "server-3").seed(19))
    with scenario.session() as session:
        session.run_to_completion()
        router = session.deployment.shard_router
        assert router.active_shards() == [0]
        retired = [s.name for s in session.deployment.departed_servers]
        assert sorted(retired) == ["server-2", "server-3"]


def test_join_opens_new_shard_when_existing_ones_are_full():
    scenario = (Scenario.hashchain().servers(2).shards(2).rate(200)
                .collector(20).inject_for(3).drain(40).backend("ideal")
                .join(1.0).join(1.5).seed(23))
    with scenario.session() as session:
        session.run_to_completion()
        router = session.deployment.shard_router
        assert router.n_shards == 3
        assert len(router.shard_servers[2]) == 2
        assert 2 in router.active_shards()
        assert session.check_properties() == []


# -- scale-out claim -----------------------------------------------------------


def _scale_config(shards):
    return (Scenario.hashchain().servers(3).byzantine(f=1).shards(shards)
            .rate(2500).collector(50).setchain(element_validation_time=2e-3)
            .block_rate(2.0).inject_for(4).drain(8).backend("ideal").seed(7))


def test_four_shards_commit_at_least_three_times_one_shard():
    # The same oversubscribed workload (2500 el/s against a ~1300 el/s
    # single-instance ceiling) against 1 vs 4 shards: sharding must recover
    # at least 3x the committed throughput within the same horizon.  This is
    # the small in-suite twin of the pinned BENCH_SHARD_PR10 claim.
    one = run(_scale_config(1))
    four = run(_scale_config(4))
    assert four.injected == pytest.approx(one.injected, rel=0.01)
    assert four.committed >= 3 * max(one.committed, 1)
    assert four.committed == four.injected  # 4 shards clear the backlog


# -- cross-shard isolation under faults ----------------------------------------


def test_byzantine_shard_does_not_affect_other_shards():
    # Turn a full quorum's worth of shard 1 Byzantine: shard 0's servers must
    # still satisfy Properties 1-8 over shard 0's admissions and commit all
    # of them.  (The hypothesis-driven generalisation lives in
    # test_property_based.py; this is the deterministic anchor.)
    scenario = (Scenario.hashchain().servers(2).shards(2).rate(300)
                .collector(20).inject_for(4).drain(30).backend("ideal")
                .become_byzantine(0.5, "server-2", behaviour="wrong-hash")
                .seed(29))
    with scenario.session() as session:
        session.run_to_completion()
        result = session.result()
        shard_0 = result.shards["per_shard"]["0"]
        assert shard_0["added"] > 0
        assert shard_0["committed"] == shard_0["added"]
        violations = [v for v in session.check_properties()
                      if "server-0" in str(v) or "server-1" in str(v)]
        assert violations == []
