"""The fault-injection subsystem: DSL, registry, injector, crash recovery,
resilience metrics, and determinism guarantees."""

import json

import pytest

from repro.api import Scenario, get_scenario, run, scenario_names
from repro.api.parallel import RunSpec, run_specs
from repro.config import ExperimentConfig, FaultScheduleConfig
from repro.core.deployment import build_deployment, run_experiment
from repro.errors import ConfigurationError, NetworkError
from repro.faults import (
    BecomeByzantine,
    BecomeCorrect,
    Churn,
    Crash,
    DelaySpike,
    Duplicate,
    FaultEvent,
    Heal,
    MessageLoss,
    Partition,
    Recover,
    Targets,
    fault_names,
    register_fault,
    unregister_fault,
)


def chaos_scenario():
    """A small, fast chaos config over the ideal ledger."""
    return (Scenario.hashchain().servers(4).rate(200).collector(20)
            .inject_for(5).drain(60).backend("ideal"))


# -- DSL validation ------------------------------------------------------------


def test_event_time_validation():
    with pytest.raises(ConfigurationError):
        Crash(at=-1.0)
    with pytest.raises(ConfigurationError):
        Crash(at=5.0, until=5.0)
    with pytest.raises(ConfigurationError):
        Crash(at=5.0, until=4.0)


def test_target_role_did_you_mean():
    with pytest.raises(ConfigurationError, match="did you mean 'servers'"):
        Targets(role="server")


def test_rate_and_churn_validation():
    with pytest.raises(ConfigurationError):
        MessageLoss(rate=0.0)
    with pytest.raises(ConfigurationError):
        Duplicate(rate=1.5)
    with pytest.raises(ConfigurationError):
        Churn(at=0.0, period=5.0)  # churn needs an until
    with pytest.raises(ConfigurationError):
        Churn(at=0.0, until=10.0, period=0.0)
    with pytest.raises(ConfigurationError):
        Partition(at=0.0, period=1.0)  # flapping needs an until
    with pytest.raises(ConfigurationError):
        DelaySpike(extra_ms=-5.0)


def test_schedule_rejects_non_events():
    with pytest.raises(ConfigurationError):
        FaultScheduleConfig(events=("partition",))  # type: ignore[arg-type]
    with pytest.raises(ConfigurationError):
        FaultScheduleConfig(availability_window=0.0)


def test_schedule_last_time_and_extended():
    schedule = FaultScheduleConfig(events=(Crash(at=3.0, until=9.0),))
    assert schedule.last_time == 9.0
    extended = schedule.extended(Heal(at=20.0))
    assert extended.last_time == 20.0
    assert len(extended.events) == 2 and not schedule.events == extended.events


# -- serialisation -------------------------------------------------------------


def test_schedule_round_trips_through_json_for_every_builtin_kind():
    schedule = FaultScheduleConfig(events=(
        Partition(at=1.0, until=2.0, group=Targets(role="servers", count=2)),
        Partition(at=3.0, until=9.0, period=2.0,
                  group=Targets(region="eu", role="all")),
        Heal(at=2.5),
        Crash(at=4.0, until=5.0, targets=Targets(nodes=("server-1",))),
        Recover(at=5.5, targets=Targets(nodes=("server-1",))),
        MessageLoss(at=0.0, until=6.0, rate=0.05),
        Duplicate(at=0.0, rate=0.01,
                  targets=Targets(role="validators")),
        DelaySpike(at=1.0, until=4.0, extra_ms=250.0, jitter_ms=50.0),
        Churn(at=2.0, until=8.0, period=2.0, count=1),
        BecomeByzantine(at=6.0, until=7.0, behaviour="withhold",
                        targets=Targets(nodes=("server-2",))),
        BecomeCorrect(at=7.5, targets=Targets(nodes=("server-2",))),
    ), availability_window=2.5)
    wire = json.loads(json.dumps(schedule.to_dict()))
    assert FaultScheduleConfig.from_dict(wire) == schedule


def test_schedule_from_dict_rejects_unknown_kind_with_did_you_mean():
    with pytest.raises(ConfigurationError, match="partition"):
        FaultScheduleConfig.from_dict(
            {"events": [{"kind": "partitoin", "at": 1.0}]})
    with pytest.raises(ConfigurationError, match="kind"):
        FaultScheduleConfig.from_dict({"events": [{"at": 1.0}]})


def test_event_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown 'crash' fault"):
        Crash.from_dict({"at": 1.0, "atx": 2.0})


def test_all_builtin_kinds_registered():
    assert set(fault_names()) >= {"partition", "heal", "crash", "recover",
                                  "message-loss", "duplicate", "delay-spike",
                                  "churn", "become-byzantine",
                                  "become-correct"}


# -- registry error paths (repro.faults.plugins) --------------------------------


def test_unknown_fault_kind_lookup_gets_did_you_mean():
    from repro.faults import get_fault, has_fault
    with pytest.raises(ConfigurationError,
                       match="did you mean 'become-byzantine'"):
        get_fault("become-byzantin")
    assert not has_fault("become-byzantin")


def test_duplicate_fault_kind_registration_rejected():
    from dataclasses import dataclass

    with pytest.raises(ConfigurationError, match="already registered"):
        @register_fault("crash")
        @dataclass(frozen=True, kw_only=True)
        class ShadowCrash(FaultEvent):
            pass
    # The original registration is untouched.
    from repro.faults import get_fault
    assert get_fault("crash") is Crash


def test_register_fault_rejects_empty_name():
    with pytest.raises(ConfigurationError, match="cannot be empty"):
        register_fault("")(Crash)


# -- third-party fault kinds ---------------------------------------------------


def test_third_party_fault_event_runs_end_to_end():
    from dataclasses import dataclass, field

    applied = []

    @register_fault("test-probe")
    @dataclass(frozen=True, kw_only=True)
    class Probe(FaultEvent):
        note: str = "hello"

        def apply(self, ctx):
            applied.append((ctx.sim.now, self.note, ctx.server_names()))
            ctx.record(self.kind, note=self.note)

    try:
        config = chaos_scenario().faults(Probe(at=1.5, note="chaos")).build()
        result = run(config)
        assert applied == [(1.5, "chaos",
                            ["server-0", "server-1", "server-2", "server-3"])]
        assert result.faults is not None
        assert result.faults["events"][0]["kind"] == "test-probe"
        # Serialisation round-trips through the registry.
        echo = result.experiment_config()
        assert echo.faults == config.faults
    finally:
        unregister_fault("test-probe")


# -- builder wiring ------------------------------------------------------------


def test_builder_faults_methods_compose_and_fork():
    base = chaos_scenario()
    chaotic = base.crash(1.0, "server-0", until=2.0).loss(0.05, 2.0, until=3.0)
    assert base.build().faults is None  # builders are immutable forks
    config = chaotic.build()
    assert config.faults is not None
    assert [type(e) for e in config.faults.events] == [Crash, MessageLoss]


def test_builder_from_config_round_trips_faults():
    config = (chaos_scenario()
              .partition(1.0, until=2.0, count=1)
              .churn(2.0, until=4.0, period=1.0)
              .faults(window=2.0).build())
    rebuilt = Scenario.from_config(config).build()
    assert rebuilt.faults == config.faults
    assert rebuilt == config


def test_builder_rejects_non_event_faults():
    with pytest.raises(ConfigurationError):
        Scenario.hashchain().faults("partition")  # type: ignore[arg-type]


def test_experiment_config_rejects_wrong_faults_type():
    with pytest.raises(ConfigurationError):
        ExperimentConfig(faults=("nope",))  # type: ignore[arg-type]


# -- injector target resolution ------------------------------------------------


def test_injector_resolves_roles_regions_and_counts():
    config = (Scenario.hashchain().region("us", 2).region("eu", 2)
              .wan(inter_ms=30, jitter_ms=5).rate(200).collector(20)
              .inject_for(5).drain(30)
              .crash(1.0, until=2.0)  # any schedule enables the injector
              .build())
    deployment = build_deployment(config)
    ctx = deployment.fault_injector.context
    assert ctx.resolve(Targets(role="servers")) == [
        "server-0", "server-1", "server-2", "server-3"]
    validators = ctx.resolve(Targets(role="validators"))
    assert len(validators) == 4 and all(v.startswith("cometbft") for v in validators)
    # Region selection includes co-located validators under role "all".
    eu = ctx.resolve(Targets(region="eu", role="all"))
    assert [n for n in eu if n.startswith("server")] == ["server-2", "server-3"]
    assert len(eu) == 4
    # Random subsets are deterministic per seed.
    pick = ctx.resolve(Targets(role="servers", count=2))
    again = build_deployment(config).fault_injector.context.resolve(
        Targets(role="servers", count=2))
    assert pick == again and len(pick) == 2
    with pytest.raises(ConfigurationError, match="unknown node"):
        ctx.resolve(Targets(nodes=("server-9",)))


# -- crash/recovery semantics --------------------------------------------------


def test_crashed_server_rejects_adds_and_replays_missed_blocks():
    config = chaos_scenario().build()
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(1.0)
    server = deployment.servers[3]
    deployment.crash_node("server-3")
    assert server.crashed
    blocks_before = server.blocks_processed
    deployment.sim.run_until(3.0)
    assert server.crashed_rejects > 0
    assert server.blocks_processed == blocks_before  # buffering, not processing
    assert server._missed_blocks  # the co-located ledger kept finalising
    deployment.recover_node("server-3")
    assert not server.crashed
    deployment.run()
    assert server.blocks_processed > blocks_before
    assert not server._missed_blocks


def test_crash_recover_round_trips_hashchain_batch_recovery():
    """A recovered server replays the missed ledger and pulls the batch
    contents it never saw through the peer Request_batch path (the paper's
    hash-reversal recovery, lines 26-34)."""
    config = chaos_scenario().build()
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(1.0)
    server = deployment.servers[3]
    requests_before = server.batch_requests_sent
    deployment.crash_node("server-3")
    deployment.sim.run_until(3.5)  # peers keep flushing batches meanwhile
    deployment.recover_node("server-3")
    deployment.run_to_completion()
    assert server.batch_requests_sent > requests_before
    assert deployment.metrics.hash_reversal_success > 0
    # The recovered server converges on the epoch sequence (it may keep
    # elements it lost in its crashed collector in the_set forever — it is a
    # faulty process; the paper's guarantees are for correct servers).
    views = {s.name: s.get() for s in deployment.servers}
    epochs = {view.epoch for view in views.values()}
    assert len(epochs) == 1 and epochs != {0}
    from repro.core.properties import check_all
    correct = {name: view for name, view in views.items() if name != "server-3"}
    violations = check_all(correct, quorum=config.setchain.quorum,
                           all_added=deployment.injected_elements)
    assert violations == []


def test_crashed_hashchain_server_loses_collector_contents():
    config = chaos_scenario().build()
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(1.05)  # mid-collector fill
    server = deployment.servers[0]
    server.collector.add(object())
    assert len(server.collector) > 0
    server.crash()
    assert len(server.collector) == 0


def test_cometbft_validator_crash_and_blocksync_recovery():
    config = (Scenario.hashchain().servers(4).rate(300).collector(20)
              .inject_for(8).drain(60)
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(2.0)
    backend = deployment.ledger_backend
    victim = backend.nodes["cometbft-3"]
    deployment.crash_node("cometbft-3")
    assert victim.crashed
    deployment.sim.run_until(6.0)
    peers_height = max(len(n.committed_blocks) for n in backend.node_list())
    assert peers_height > len(victim.committed_blocks)
    deployment.recover_node("cometbft-3")
    assert not victim.crashed
    # Block-sync caught the victim up to the best live peer instantly.
    assert len(victim.committed_blocks) >= peers_height
    heights = [b.height for b in victim.committed_blocks]
    assert heights == sorted(heights) == list(range(1, len(heights) + 1))
    deployment.run()
    assert backend.min_committed_height() > peers_height


def test_network_counts_traffic_to_crashed_nodes_as_dropped():
    config = chaos_scenario().build()
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(1.0)
    dropped_before = deployment.network.messages_dropped
    deployment.crash_node("server-1")
    # Force a direct send into the crashed node.
    deployment.servers[0].send("server-1", "request_batch", "h", size_bytes=10)
    deployment.sim.run_until(1.5)
    assert deployment.network.messages_dropped > dropped_before


# -- end-to-end runs and artifacts ---------------------------------------------


def test_chaos_smoke_runs_and_reports_resilience():
    result = run("chaos/smoke")
    assert result.faults is not None
    report = result.faults
    assert report["schedule_events"] == 2
    kinds = [event["kind"] for event in report["events"]]
    assert kinds == ["crash", "partition"]
    assert report["rejected_while_crashed"] > 0
    assert report["availability"]["windows"]
    for window in report["availability"]["windows"]:
        assert 0.0 <= window["availability"] <= 1.0
    # Faults cost something but the cluster still commits most elements.
    assert result.committed_fraction > 0.8
    # The artifact round-trips exactly, faults included.
    from repro.api import RunResult
    assert RunResult.from_json(result.to_json()) == result


def test_fault_free_artifacts_omit_the_faults_key():
    result = run("smoke")
    assert result.faults is None
    data = result.to_dict()
    assert "faults" not in data
    assert "faults" not in data["config"]


def test_catalog_has_at_least_twenty_chaos_scenarios_that_build():
    names = scenario_names(contains="chaos/")
    assert len(names) >= 20
    for name in names:
        config = get_scenario(name)
        assert config.faults is not None and config.faults.events


def test_same_chaos_seed_same_json_regardless_of_jobs():
    specs = [RunSpec(name="chaos/smoke", seed=7)]
    serial = [result.to_json() for result in run_specs(specs, jobs=1)]
    parallel = [result.to_json() for result in run_specs(specs, jobs=4)]
    assert serial == parallel


def test_run_experiment_with_schedule_is_deterministic_in_process():
    config = (chaos_scenario()
              .partition(1.0, until=3.0, count=2)
              .loss(0.05, 0.5, until=4.0)
              .build())
    first = run(config).to_json()
    second = run(config).to_json()
    assert first == second


def test_flapping_partition_reroll_heals_between_cycles():
    config = (chaos_scenario()
              .partition(1.0, until=3.0, count=1, role="servers", period=0.5)
              .build())
    deployment = run_experiment(config)
    report = deployment.fault_injector.report()
    partitions = [e for e in report["events"] if e["kind"] == "partition"]
    assert len(partitions) >= 3  # re-rolled several times
    assert not deployment.network._partitions  # healed at the end


def test_churn_recovers_every_victim_by_the_end():
    config = (chaos_scenario()
              .churn(1.0, until=3.0, period=0.5, count=1)
              .build())
    deployment = run_experiment(config)
    assert all(not server.crashed for server in deployment.servers)
    report = deployment.fault_injector.report()
    churns = [e for e in report["events"] if e["kind"] == "churn"]
    assert len(churns) >= 3


def test_duplicate_and_delay_events_affect_the_network():
    config = (chaos_scenario()
              .duplicates(0.5, 0.0, until=5.0)
              .delay_spike(100.0, 0.0, until=5.0, jitter_ms=20.0)
              .build())
    deployment = run_experiment(config)
    assert deployment.network.messages_duplicated > 0
    report = deployment.fault_injector.report()
    assert report["messages_duplicated"] == deployment.network.messages_duplicated


def test_deployment_crash_dispatch_rejects_unknown_names():
    deployment = build_deployment(chaos_scenario().build())
    with pytest.raises(NetworkError):
        deployment.crash_node("no-such-node")


def test_session_interactive_chaos_helpers():
    with chaos_scenario().session() as session:
        session.run_for(1.0)
        session.crash("server-2")
        assert session.crashed_nodes() == ["server-2"]
        session.partition({"server-0"})
        session.run_for(1.0)
        session.heal()
        session.recover("server-2")
        assert session.crashed_nodes() == []
        session.run_to_completion()
        assert session.committed_fraction > 0.5


def test_message_fault_rule_matches_exactly_the_recorded_targets():
    """Regression: MessageLoss resolved its selector twice, so the installed
    rule and the recorded timeline could name different random subsets."""
    config = (Scenario.hashchain().servers(6).rate(100).collector(10)
              .inject_for(3).drain(20).backend("ideal")
              .faults(MessageLoss(at=0.0, until=2.0, rate=1.0,
                                  targets=Targets(role="servers", count=2)))
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(0.0)  # apply the t=0 event
    recorded = deployment.fault_injector.applied[0]["targets"]
    rule = deployment.network._drop_rules[0]
    from repro.net.message import Message
    for name in recorded:
        assert rule(Message(sender=name, recipient="server-x",
                            msg_type="t", payload=None))
    unrecorded = [s.name for s in deployment.servers if s.name not in recorded]
    for name in unrecorded:
        assert not rule(Message(sender=name, recipient=name,
                                msg_type="t", payload=None))


def test_instantaneous_events_do_not_open_fault_windows():
    """Regression: Heal/Recover entries (no until) counted the whole rest of
    the run as 'during faults' in the commit-latency split."""
    config = (chaos_scenario()
              .partition(1.0, until=1.5, count=1, role="servers")
              .faults(Heal(at=2.0))
              .build())
    deployment = run_experiment(config)
    injector = deployment.fault_injector
    # Two applied entries (partition + heal) but only one fault window.
    assert len(injector.applied) == 2
    assert injector._windows == [(1.0, 1.5)]
    report = injector.report()
    # Elements injected after t=1.5 land in the fault-free bucket.
    assert report["commit_latency_s"]["fault_free"] is not None


def test_crash_replays_blocks_interrupted_mid_pipeline():
    """Regression: blocks already delivered but still queued in the serial
    pipeline were wiped by a crash instead of joining the replay."""
    config = chaos_scenario().build()
    deployment = build_deployment(config)
    deployment.start()
    server = deployment.servers[0]
    # Advance until the server has in-flight pipeline work, then crash it.
    while server.backlog == 0 and deployment.sim.now < 30.0:
        deployment.sim.step()
    assert server.backlog > 0
    interrupted = {id(item[1]) for item in server._work}
    server.crash()
    assert server._work == type(server._work)()  # pipeline wiped
    replay_ids = {id(block) for block in server._missed_blocks}
    assert interrupted <= replay_ids  # ...but the blocks will be replayed
    server.recover()
    deployment.run()
    views = {s.name: s.get() for s in deployment.servers}
    assert views["server-0"].epoch == views["server-1"].epoch != 0


def test_builder_loss_honours_bare_role():
    config = chaos_scenario().loss(0.05, role="validators").build()
    event = config.faults.events[0]
    assert event.targets is not None and event.targets.role == "validators"


def test_schedule_past_run_horizon_is_rejected():
    with pytest.raises(ConfigurationError, match="never fire"):
        (Scenario.hashchain().inject_for(5).drain(10)
         .crash(1.0, until=30.0).build())


def test_stale_pipeline_continuation_dies_across_crash_recover():
    """Regression: a queued _process_next continuation survived crash->recover
    and ran a second concurrent chain through the strictly-serial pipeline."""
    config = chaos_scenario().build()
    deployment = build_deployment(config)
    deployment.start()
    server = deployment.servers[0]
    while server.backlog == 0 and deployment.sim.now < 30.0:
        deployment.sim.step()
    run_before = server._pipeline_run
    server.crash()
    assert server._pipeline_run == run_before + 1
    server.recover()
    deployment.run()
    # A doubled pipeline would break the serial-service accounting; the
    # cheapest observable invariant: the pipeline fully drains exactly once.
    assert server.backlog == 0 and not server._busy
    views = deployment.views()
    assert views["server-0"].epoch == views["server-1"].epoch != 0


def test_churn_does_not_recover_another_faults_victim():
    """Regression: churn could sample an already-crashed node and 'recover'
    it long before the owning Crash event's window ended."""
    config = (chaos_scenario()
              .crash(0.5, "server-0", until=4.0)
              .churn(1.0, until=3.0, period=0.5, count=3)
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(3.5)
    # Churn is over; the Crash victim must still be down until t=4.
    assert deployment.servers[0].crashed
    for entry in deployment.fault_injector.applied:
        if entry["kind"] == "churn":
            assert "server-0" not in entry["targets"]
    deployment.sim.run_until(4.5)
    assert not deployment.servers[0].crashed
    deployment.run()
    assert all(not s.crashed for s in deployment.servers)


def test_crash_auto_recover_skips_nodes_reclaimed_by_a_later_event():
    """Regression: Crash's scheduled auto-recover recovered its victims
    unconditionally, truncating a later overlapping crash window."""
    config = (chaos_scenario()
              .crash(1.0, "server-3", until=3.0)
              .faults(Recover(at=2.0, targets=Targets(nodes=("server-3",))))
              .crash(2.5, "server-3", until=6.0)
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(3.5)
    # The first crash's t=3 auto-recover must not release the second claim.
    assert deployment.servers[3].crashed
    deployment.sim.run_until(6.5)
    assert not deployment.servers[3].crashed


def test_blocks_processed_not_double_counted_across_crash_replay():
    config = chaos_scenario().crash(1.0, "server-0", until=3.0).build()
    deployment = run_experiment(config)
    ledger_blocks = len(deployment.ledger_backend.blocks)
    for server in deployment.servers:
        assert server.blocks_processed == ledger_blocks


def test_overlapping_partitions_on_the_same_cut_refcount():
    """Regression: two Partition events sharing one idempotent cut let the
    first event's heal remove it for both."""
    config = (chaos_scenario()
              .partition(1.0, until=4.0, nodes=("server-0",))
              .partition(2.0, until=3.0, nodes=("server-0",))
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(3.5)
    # The inner event healed at t=3 but the outer claim holds until t=4.
    assert deployment.network._partitions
    deployment.sim.run_until(4.5)
    assert not deployment.network._partitions


def test_lossy_links_cannot_wedge_block_production():
    """Regression: a proposal (or commit-completing vote) lost to message
    loss left straggler validators waiting forever — no re-request path —
    and their permanently-unheard votes then kept the head round 'not
    provably dead', wedging block production cluster-wide with full
    mempools.  Peer catch-up (gap >= 2) plus stuck-round re-gossip bound
    the stall; every validator must converge to one chain head."""
    from repro.experiments.runner import scaled_config

    config = (Scenario.hashchain().rate(2_000)
              .partition(8.0, until=16.0,
                         nodes=("server-2", "server-4", "server-7"))
              .crash(20.0, "server-8", until=30.0)
              .loss(0.02)
              .build())
    deployment = run_experiment(scaled_config(config, 25))
    heights = [len(node.committed_blocks)
               for node in deployment.ledger_backend.node_list()]
    assert min(heights) == max(heights) > 20
    assert deployment.committed_fraction > 0.9


def test_crash_on_already_downed_target_opens_no_window():
    """Regression: a Crash whose targets were all filtered out still recorded
    an active fault window (and scheduled a bogus recovery)."""
    config = (chaos_scenario()
              .crash(1.0, "server-3", until=4.0)
              .crash(2.0, "server-3", until=2.5)
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(3.0)
    assert deployment.servers[3].crashed  # the t=2.5 release was a no-op
    injector = deployment.fault_injector
    skipped = [e for e in injector.applied if "skipped" in e.get("note", "")]
    assert len(skipped) == 1 and skipped[0]["at"] == 2.0
    assert injector._windows == [(1.0, 4.0)]
    deployment.sim.run_until(4.5)
    assert not deployment.servers[3].crashed
