"""Byzantine nemeses as schedule events: the behaviour-strategy refactor, the
``become-byzantine``/``become-correct`` fault kinds, the f-budget invariant,
attribution counters, builder/session sugar, the ``byz/`` catalog family, and
the golden/byte-identity guarantees."""

import json

import pytest

from repro.api import RunResult, Scenario, get_scenario, run, scenario_names
from repro.api.cli import main
from repro.api.parallel import RunSpec, reset_run_counters, run_specs
from repro.core.byzantine import (
    BUILTIN_BEHAVIOURS,
    ByzantineBehaviour,
    WithholdBehaviour,
    behaviour_names,
    get_behaviour,
    register_behaviour,
    unregister_behaviour,
)
from repro.core.deployment import build_deployment, run_experiment
from repro.core.properties import check_all
from repro.errors import ConfigurationError, NetworkError
from repro.faults import BecomeByzantine, BecomeCorrect, Recover, Targets

from pathlib import Path

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (registered byz scenario, golden artifact) pairs spanning the three
#: algorithms, captured when Byzantine nemeses landed.
BYZ_GOLDEN_RUNS = [
    ("byz/smoke", "byz__smoke.json"),
    ("byz/golden/vanilla-silent", "byz__golden__vanilla-silent.json"),
    ("byz/golden/compresschain-equivocate",
     "byz__golden__compresschain-equivocate.json"),
]


def byz_scenario():
    """A small, fast adversarial config over the ideal ledger (4 servers, f=1)."""
    return (Scenario.hashchain().servers(4).rate(200).collector(20)
            .inject_for(5).drain(60).backend("ideal"))


# -- behaviour strategies on live servers ---------------------------------------


def test_builtin_behaviours_registered_with_did_you_mean():
    assert set(behaviour_names()) >= set(BUILTIN_BEHAVIOURS)
    with pytest.raises(ConfigurationError, match="withhold"):
        get_behaviour("withold")


def test_duplicate_behaviour_registration_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        register_behaviour("silent")(ByzantineBehaviour)


def test_server_becomes_byzantine_and_back_mid_run():
    deployment = build_deployment(byz_scenario().build())
    deployment.start()
    deployment.sim.run_until(1.0)
    server = deployment.servers[3]
    assert not server.is_byzantine and server.byzantine_behaviour is None
    deployment.become_byzantine("server-3", "withhold")
    assert server.is_byzantine and server.byzantine_behaviour == "withhold"
    # Switching behaviours detaches the previous one first.
    deployment.become_byzantine("server-3", "silent")
    assert server.byzantine_behaviour == "silent"
    deployment.become_correct("server-3")
    assert not server.is_byzantine
    deployment.become_correct("server-3")  # idempotent


def test_only_servers_can_turn_byzantine():
    deployment = build_deployment(
        Scenario.hashchain().servers(4).rate(200).collector(20)
        .inject_for(5).drain(60).build())
    with pytest.raises(NetworkError, match="only servers"):
        deployment.become_byzantine("cometbft-0", "silent")
    assert deployment.node_byzantine("cometbft-0") is False


def test_third_party_behaviour_runs_end_to_end():
    flushed = []

    @register_behaviour("test-flush-probe")
    class FlushProbe(ByzantineBehaviour):
        def on_flush_batch(self, server, batch):
            flushed.append(len(batch))
            return False  # observe, then fall through to the correct path

    try:
        config = (byz_scenario()
                  .become_byzantine(1.0, "server-0",
                                    behaviour="test-flush-probe", until=4.0)
                  .build())
        result = run(config)
        assert flushed  # the hook fired on the live server
        assert result.faults is not None
        assert result.faults["byzantine"]["servers"] == ["server-0"]
    finally:
        unregister_behaviour("test-flush-probe")


# -- the BecomeByzantine / BecomeCorrect events ---------------------------------


def test_become_byzantine_validates_behaviour_and_role():
    with pytest.raises(ConfigurationError, match="equivocate"):
        BecomeByzantine(at=1.0, behaviour="equivocat")
    with pytest.raises(ConfigurationError, match="servers"):
        BecomeByzantine(at=1.0, targets=Targets(role="validators"))


def test_new_event_kinds_round_trip_through_json():
    events = (
        BecomeByzantine(at=1.0, until=3.0, behaviour="withhold",
                        targets=Targets(nodes=("server-3",))),
        BecomeByzantine(at=4.0, behaviour="equivocate",
                        targets=Targets(role="servers", count=2)),
        BecomeCorrect(at=5.0, targets=Targets(nodes=("server-3",))),
    )
    for event in events:
        wire = json.loads(json.dumps(event.to_dict()))
        assert type(event).from_dict(wire) == event
        assert wire["kind"] in ("become-byzantine", "become-correct")


def test_mid_run_withhold_then_correct_buffered_replies_resume():
    """The flagship regression: a server that withholds Request_batch replies
    buffers them and serves them on BecomeCorrect, so consolidation of its
    hashes resumes and every server converges on the same epochs."""
    config = byz_scenario().build()
    with Scenario.from_config(config).session() as session:
        session.run_for(1.0)
        session.become_byzantine("server-3", "withhold")
        assert session.byzantine_nodes() == ["server-3"]
        # Elements added only through the Byzantine server: its hash-batches
        # reach the ledger but nobody can pull the contents while it withholds.
        orphaned = [session.inject(server=3) for _ in range(25)]
        session.run_for(4.0)
        withholder = session.deployment.servers[3]
        assert withholder.byzantine_counters.get("withheld_requests", 0) > 0
        correct_views = [session.view(i) for i in range(3)]
        assert all(element not in view.elements_in_epochs()
                   for view in correct_views for element in orphaned)
        # Turning correct replays the buffered replies; consolidation resumes.
        session.become_correct("server-3")
        assert session.byzantine_nodes() == []
        session.run_to_completion()
        views = session.views()
        epochs = {view.epoch for view in views.values()}
        assert len(epochs) == 1 and epochs != {0}
        for view in views.values():
            assert all(element in view.elements_in_epochs()
                       for element in orphaned)
        violations = session.check_properties()
        assert violations == [], violations[:5]


def test_withhold_buffer_survives_detach_while_crashed():
    """Review regression: reversion firing while the withholder is
    crash-faulted must not lose the buffered Request_batch replies (a
    crashed node's sends are silently dropped) — the buffer parks on the
    server and replays on recovery, so consolidation still converges."""
    with byz_scenario().session() as session:
        session.run_for(1.0)
        session.become_byzantine("server-3", "withhold")
        orphaned = [session.inject(server=3) for _ in range(25)]
        session.run_for(3.0)  # batches flushed, peer requests withheld
        withholder = session.deployment.servers[3]
        assert withholder.byzantine_counters.get("withheld_requests", 0) > 0
        session.crash("server-3")
        session.become_correct("server-3")  # detach while down
        assert withholder._deferred_request_replays  # parked, not lost
        session.recover("server-3")
        assert not withholder._deferred_request_replays  # served on recovery
        session.run_to_completion()
        views = session.views()
        assert len({view.epoch for view in views.values()}) == 1
        for name, view in views.items():
            assert all(element in view.elements_in_epochs()
                       for element in orphaned), name


def test_interactive_byzantine_excluded_from_checks_after_revert():
    """Review regression: a server turned Byzantine through the Session (no
    fault schedule) and later reverted is still a faulty process — its
    silently dropped elements sit in its the_set forever — so property
    checks must keep excluding it."""
    config = (Scenario.vanilla().servers(4).rate(200)
              .inject_for(5).drain(40).backend("ideal").build())
    with Scenario.from_config(config).session() as session:
        session.run_for(1.0)
        session.become_byzantine("server-3", "silent")
        swallowed = [session.inject(server=3) for _ in range(5)]
        session.run_for(2.0)
        session.become_correct("server-3")
        session.run()
        assert session.deployment.byzantine_servers() == {"server-3"}
        # The faulty view really is inconsistent (dropped elements never
        # reach an epoch)...
        faulty_view = session.view("server-3")
        assert any(element not in faulty_view.elements_in_epochs()
                   for element in swallowed)
        # ...and check_properties excludes it, so the run is clean.
        assert session.check_properties() == []


def test_scheduled_withhold_window_reverts_and_run_converges():
    config = (byz_scenario()
              .become_byzantine(1.0, "server-3", behaviour="withhold",
                                until=3.0)
              .build())
    deployment = run_experiment(config)
    assert not deployment.servers[3].is_byzantine  # reverted at until
    report = deployment.fault_injector.report()
    assert report["byzantine"]["servers"] == ["server-3"]
    assert report["byzantine"]["counters"].get("withheld_requests", 0) > 0
    # Everything converges once the window closes (buffered replies + retries).
    views = deployment.views()
    assert len({view.epoch for view in views.values()}) == 1


def test_wrong_hash_window_is_harmless_and_attributed():
    config = (Scenario.hashchain().servers(5).rate(200).collector(20)
              .inject_for(5).drain(60).backend("ideal")
              .become_byzantine(1.0, "server-4", behaviour="wrong-hash",
                                until=4.0)
              .build())
    deployment = run_experiment(config)
    report = deployment.fault_injector.report()
    assert report["byzantine"]["counters"]["bogus_hash_batches"] > 0
    # A bogus hash gathers one signer at most and never consolidates.
    byz = deployment.servers[4]
    for server in deployment.servers[:4]:
        for digest, signers in server.hash_to_signers.items():
            if signers == {byz.name} and digest in byz._signed_hashes:
                assert digest not in server._consolidated
    views = {s.name: s.get() for s in deployment.servers[:4]}
    violations = check_all(views, quorum=config.setchain.quorum,
                           all_added=deployment.injected_elements)
    assert violations == [], violations[:5]


def test_invalid_element_flood_is_refused_by_correct_servers():
    config = (Scenario.vanilla().servers(5).rate(200)
              .inject_for(5).drain(40).backend("ideal")
              .become_byzantine(1.0, "server-4", behaviour="invalid-element",
                                until=4.0)
              .build())
    deployment = run_experiment(config)
    counters = deployment.fault_injector.report()["byzantine"]["counters"]
    assert counters["invalid_elements_appended"] > 0
    assert counters["invalid_elements_refused"] > 0
    for server in deployment.servers[:4]:
        for epoch_elements in server.get().history.values():
            assert all(element.valid for element in epoch_elements)


def test_equivocating_window_does_not_poison_correct_quorums():
    config = (Scenario.vanilla().servers(5).rate(200)
              .inject_for(5).drain(40).backend("ideal")
              .become_byzantine(1.0, "server-4", behaviour="equivocate",
                                until=4.0)
              .build())
    deployment = run_experiment(config)
    counters = deployment.fault_injector.report()["byzantine"]["counters"]
    assert counters["equivocating_proofs"] > 0
    assert sum(s.invalid_proofs for s in deployment.servers[:4]) > 0
    for server in deployment.servers[:4]:
        view = server.get()
        assert all(proof.epoch_hash != "0" * len(proof.epoch_hash)
                   for proof in view.proofs)
        for epoch in range(1, view.epoch + 1):
            signers = {p.signer for p in view.proofs_for(epoch)}
            assert len(signers - {"server-4"}) >= config.setchain.quorum


def test_silent_window_drops_only_the_byzantine_servers_clients():
    config = (Scenario.compresschain().servers(5).rate(200).collector(20)
              .inject_for(5).drain(40).backend("ideal")
              .become_byzantine(0.0, "server-4", behaviour="silent",
                                until=5.0)
              .build())
    deployment = run_experiment(config)
    counters = deployment.fault_injector.report()["byzantine"]["counters"]
    assert counters["suppressed_elements"] > 0
    # Elements injected through the silent server never reach correct epochs.
    silent_set = deployment.servers[4].get().the_set
    correct_epochs = deployment.servers[0].get().elements_in_epochs()
    swallowed = [e for e in silent_set if e not in correct_epochs]
    assert swallowed  # it did accept (and drop) traffic
    views = {s.name: s.get() for s in deployment.servers[:4]}
    violations = check_all(views, quorum=config.setchain.quorum,
                           all_added=deployment.injected_elements)
    assert violations == [], violations[:5]


# -- composing crash + partition + Byzantine in one schedule --------------------


def test_crash_partition_and_byzantine_compose_in_one_timeline():
    config = (Scenario.hashchain().servers(5).rate(200).collector(20)
              .inject_for(5).drain(60).backend("ideal")
              .become_byzantine(1.0, "server-4", behaviour="withhold",
                                until=3.0)
              .crash(2.0, "server-3", until=3.5)
              .partition(2.5, until=4.0, count=1, role="servers")
              .build())
    deployment = run_experiment(config)
    report = deployment.fault_injector.report()
    kinds = [entry["kind"] for entry in report["events"]]
    assert {"become-byzantine", "crash", "partition"} <= set(kinds)
    views = {s.name: s.get() for s in deployment.servers
             if s.name not in ("server-3", "server-4")}
    assert len(views) >= config.setchain.quorum
    violations = check_all(views, quorum=config.setchain.quorum,
                           all_added=deployment.injected_elements)
    assert violations == [], violations[:5]


def test_crash_only_reports_carry_no_byzantine_block():
    result = run("chaos/smoke")
    assert result.faults is not None
    assert "byzantine" not in result.faults


def test_auto_revert_skips_servers_reclaimed_by_a_later_event():
    """Mirror of the crash-claim regression: the first window's auto-revert
    must not shed a behaviour a later event re-attached."""
    config = (Scenario.hashchain().rate(200).collector(20)
              .inject_for(5).drain(60).backend("ideal")
              .become_byzantine(1.0, "server-9", behaviour="silent",
                                until=3.0)
              .faults(BecomeCorrect(at=2.0, targets=Targets(nodes=("server-9",))))
              .become_byzantine(2.5, "server-9", behaviour="withhold",
                                until=6.0)
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(3.5)
    # The first window's t=3 auto-revert must not release the second claim.
    assert deployment.servers[9].byzantine_behaviour == "withhold"
    deployment.sim.run_until(6.5)
    assert not deployment.servers[9].is_byzantine


def test_become_byzantine_on_already_byzantine_target_skips():
    config = (Scenario.hashchain().rate(200).collector(20)
              .inject_for(5).drain(60).backend("ideal")
              .become_byzantine(1.0, "server-9", behaviour="silent", until=6.0)
              .become_byzantine(2.0, "server-9", behaviour="withhold",
                                until=3.0)
              .build())
    deployment = build_deployment(config)
    deployment.start()
    deployment.sim.run_until(4.0)
    # The overlapping event was skipped: the original behaviour survives its
    # window, and the skipped event opened no Byzantine window of its own.
    assert deployment.servers[9].byzantine_behaviour == "silent"
    skipped = [entry for entry in deployment.fault_injector.applied
               if "skipped" in entry.get("note", "")]
    assert len(skipped) == 1 and skipped[0]["at"] == 2.0
    deployment.sim.run_until(6.5)
    assert not deployment.servers[9].is_byzantine


# -- the f-budget invariant -----------------------------------------------------


def test_overlapping_byzantine_and_crash_windows_exceeding_f_rejected():
    with pytest.raises(ConfigurationError, match="Byzantine budget"):
        (byz_scenario()
         .become_byzantine(1.0, count=1, until=3.0)
         .crash(2.0, count=1, until=4.0)
         .build())


def test_sequential_windows_within_budget_accepted():
    config = (byz_scenario()
              .become_byzantine(1.0, count=1, until=2.5)
              .crash(3.0, count=1, until=4.0)
              .build())
    assert config.faults is not None and len(config.faults.events) == 2


def test_declared_f_bounds_scheduled_byzantine_servers():
    """Satellite fix: a static `.byzantine(f=)` and the schedule must agree —
    scheduling more concurrent Byzantine servers than f is a config error."""
    with pytest.raises(ConfigurationError, match=r"f=1"):
        (Scenario.hashchain().servers(10).byzantine(f=1)
         .rate(200).inject_for(5).drain(60).backend("ideal")
         .become_byzantine(1.0, count=2, until=3.0)
         .build())
    # The same schedule under the default tolerance (f=4 for n=10) is fine.
    config = (Scenario.hashchain().servers(10)
              .rate(200).inject_for(5).drain(60).backend("ideal")
              .become_byzantine(1.0, count=2, until=3.0)
              .build())
    assert config.setchain.max_faulty == 4


def test_crash_only_schedules_beyond_f_stay_allowed():
    """Crash-beyond-f voids liveness only until recovery — a legitimate
    experiment (chaos/crash/beyond-f); the budget gate only arms when the
    schedule turns servers Byzantine."""
    config = get_scenario("chaos/crash/beyond-f")
    assert config.faults is not None


def test_open_ended_byzantine_counts_until_matching_become_correct():
    # Open-ended + a later overlapping crash: worst case 2 faulty of 4 (f=1).
    with pytest.raises(ConfigurationError, match="Byzantine budget"):
        (byz_scenario()
         .become_byzantine(1.0, "server-3", behaviour="silent")
         .crash(2.0, count=1, until=3.0)
         .build())
    # An interposed BecomeCorrect closes the window statically.
    config = (byz_scenario()
              .become_byzantine(1.0, "server-3", behaviour="silent")
              .become_correct(1.5, "server-3")
              .crash(2.0, count=1, until=3.0)
              .build())
    assert config.faults is not None


def test_group_budget_rejects_a_group_driven_below_quorum():
    with pytest.raises(ConfigurationError, match="below quorum"):
        (Scenario.hashchain().mixed(vanilla=4, hashchain=4)
         .rate(200).inject_for(5).drain(60).backend("ideal")
         .become_byzantine(1.0, count=3, until=3.0)
         .build())
    # With a lower declared tolerance the quorum shrinks and each group can
    # afford one faulty server, so the same-shaped schedule builds.
    config = (Scenario.hashchain().mixed(vanilla=4, hashchain=4)
              .byzantine(f=1)
              .rate(200).inject_for(5).drain(60).backend("ideal")
              .become_byzantine(1.0, count=1, until=3.0)
              .build())
    assert config.setchain.quorum == 2


def test_budget_counts_named_nodes_even_with_a_region_selector():
    """Review regression: explicit nodes win over region at apply time
    (resolve ignores region when nodes are given), so the static validator
    must count them the same way — filtering named nodes by a region that
    matches nothing waved a Byzantine majority through."""
    with pytest.raises(ConfigurationError, match="Byzantine budget"):
        (Scenario.hashchain().rate(200).collector(20)
         .inject_for(5).drain(60).backend("ideal")
         .become_byzantine(1.0, "server-0", "server-1", "server-2",
                           "server-3", "server-4",
                           region="eu-west", until=3.0)
         .build())


def test_crash_only_instants_keep_the_crash_exemption():
    """Review regression: a deliberate beyond-f crash window (liveness-only
    experiment) must stay legal even when the same timeline turns a server
    Byzantine at some *other*, non-overlapping instant."""
    config = (Scenario.hashchain().rate(200).collector(20)
              .inject_for(5).drain(60).backend("ideal")
              .become_byzantine(1.0, count=1, until=2.0)
              .crash(3.0, count=5, until=4.0)  # beyond f=4, but Byzantine-free
              .build())
    assert config.faults is not None
    # The same crash window overlapping the Byzantine one is rejected.
    with pytest.raises(ConfigurationError, match="Byzantine budget"):
        (Scenario.hashchain().rate(200).collector(20)
         .inject_for(5).drain(60).backend("ideal")
         .become_byzantine(1.0, count=1, until=4.0)
         .crash(3.0, count=5, until=5.0)
         .build())


def test_validator_targets_never_consume_the_server_budget():
    config = (byz_scenario()
              .become_byzantine(1.0, "server-3", behaviour="silent", until=2.0)
              .churn(1.0, until=3.0, period=1.0, count=3, role="validators")
              .build())
    assert config.faults is not None and len(config.faults.events) == 2


# -- builder / session sugar ----------------------------------------------------


def test_builder_sugar_builds_events_and_round_trips():
    config = (byz_scenario()
              .become_byzantine(1.0, "server-3", behaviour="withhold",
                                until=2.0)
              .become_correct(3.0, "server-3")
              .build())
    events = config.faults.events
    assert [type(e) for e in events] == [BecomeByzantine, BecomeCorrect]
    assert events[0].behaviour == "withhold"
    rebuilt = Scenario.from_config(config).build()
    assert rebuilt == config
    # ...and through the RunResult config echo.
    result = run(config)
    assert result.experiment_config().faults == config.faults
    again = RunResult.from_json(result.to_json())
    assert again == result


def test_session_become_byzantine_validates_names():
    with byz_scenario().session() as session:
        session.run_for(0.5)
        with pytest.raises(NetworkError):
            session.become_byzantine("no-such-server")
        with pytest.raises(ConfigurationError, match="withhold"):
            session.become_byzantine("server-0", "withold")


# -- catalog family, goldens, and byte-identity ---------------------------------


def test_catalog_has_a_byz_family_that_builds():
    names = scenario_names(contains="byz/")
    assert len(names) >= 15
    behaviours_seen = set()
    for name in names:
        config = get_scenario(name)
        assert config.faults is not None and config.faults.events
        for event in config.faults.events:
            if isinstance(event, BecomeByzantine):
                behaviours_seen.add(event.behaviour)
    assert behaviours_seen >= set(BUILTIN_BEHAVIOURS)


@pytest.mark.parametrize("scenario,artifact", BYZ_GOLDEN_RUNS)
def test_byz_scenarios_are_byte_identical_to_goldens(scenario, artifact):
    reset_run_counters()
    result = run(scenario, seed=7)
    golden = (GOLDEN_DIR / artifact).read_text()
    assert result.to_json() + "\n" == golden


def test_same_byz_seed_same_json_regardless_of_jobs():
    specs = [RunSpec(name="byz/smoke", seed=7),
             RunSpec(name="byz/golden/vanilla-silent", seed=7)]
    serial = [result.to_json() for result in run_specs(specs, jobs=1)]
    parallel = [result.to_json() for result in run_specs(specs, jobs=4)]
    assert serial == parallel


def test_report_cli_renders_byzantine_attribution_table(tmp_path, capsys):
    reset_run_counters()
    result = run("byz/smoke", seed=7)
    artifact = tmp_path / "byz.json"
    result.save(artifact)
    assert main(["report", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "byzantine attribution (adversarial runs)" in out
    assert "withheld" in out
