"""The ``python -m repro`` CLI: list-scenarios, run, sweep, report."""

import json
import subprocess
import sys

import pytest

from repro.api import RunResult, Scenario, run
from repro.api.cli import main

SMOKE = "smoke"  # tiny ideal-ledger scenario registered by the catalog


def test_list_scenarios_enumerates_at_least_ten(capsys):
    assert main(["list-scenarios"]) == 0
    out = capsys.readouterr().out
    names = [line.split("|")[0].strip() for line in out.splitlines()[2:]
             if "|" in line]
    assert len(names) >= 10
    assert "base" in names


def test_list_scenarios_json_and_filters(capsys):
    assert main(["list-scenarios", "--tag", "demo", "--json"]) == 0
    records = [json.loads(line) for line in capsys.readouterr().out.splitlines()]
    assert {r["name"] for r in records} == {"quickstart", "smoke"}
    assert all("demo" in r["tags"] for r in records)
    assert main(["list-scenarios", "--tag", "no-such-tag"]) == 1


def test_run_writes_round_trippable_artifact(tmp_path, capsys):
    artifact = tmp_path / "smoke.json"
    assert main(["run", SMOKE, "--json", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "scenario : smoke" in out
    result = RunResult.load(artifact)
    assert RunResult.from_dict(result.to_dict()) == result
    assert result.committed == result.injected > 0


def test_run_unknown_scenario_fails_cleanly(capsys):
    assert main(["run", "no-such-scenario"]) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_run_scaled(capsys):
    assert main(["run", SMOKE, "--scale", "2", "--quiet"]) == 0
    assert capsys.readouterr().out == ""


def test_sweep_writes_one_artifact_per_scenario(tmp_path, capsys):
    assert main(["sweep", "--tag", "demo", "--contains", "smoke",
                 "--out", str(tmp_path), "--quiet"]) == 0
    files = list(tmp_path.glob("*.json"))
    assert [f.name for f in files] == ["smoke.json"]
    assert main(["sweep", "--tag", "no-such-tag"]) == 1


def test_sweep_limit_zero_is_not_a_filter_mismatch(capsys):
    assert main(["sweep", "--tag", "demo", "--limit", "0"]) == 0
    assert "nothing to run" in capsys.readouterr().err


def test_sweep_rejects_negative_limit(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--tag", "demo", "--limit", "-1"])
    assert excinfo.value.code == 2
    assert "must be >= 0" in capsys.readouterr().err


def test_report_renders_saved_artifacts(tmp_path, capsys):
    artifact = tmp_path / "smoke.json"
    main(["run", SMOKE, "--json", str(artifact), "--quiet"])
    capsys.readouterr()
    assert main(["report", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "smoke" in out and "avg thpt 50s" in out
    assert main(["report", str(tmp_path / "missing.json")]) == 1


def test_report_malformed_artifacts_fail_cleanly(tmp_path, capsys):
    truncated = tmp_path / "truncated.json"
    truncated.write_text("{bad")
    assert main(["report", str(truncated)]) == 1
    assert "invalid RunResult JSON" in capsys.readouterr().err
    wrong_shape = tmp_path / "list.json"
    wrong_shape.write_text("[1, 2, 3]")
    assert main(["report", str(wrong_shape)]) == 1
    assert "JSON object" in capsys.readouterr().err
    incomplete = tmp_path / "incomplete.json"
    incomplete.write_text('{"label": "x"}')
    assert main(["report", str(incomplete)]) == 1
    assert "missing RunResult fields" in capsys.readouterr().err


@pytest.mark.parametrize("args", [["run", SMOKE, "--quiet"], ["list-scenarios"]])
def test_module_entry_point_exits_zero(args):
    completed = subprocess.run([sys.executable, "-m", "repro", *args],
                               capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr


# -- tracing (repro trace / sweep --trace-dir / report --phases) ---------------


def test_trace_writes_validated_chrome_trace(tmp_path, capsys):
    from repro.obs.export import validate_trace_file

    out = tmp_path / "smoke.trace.json"
    assert main(["trace", SMOKE, "--out", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "trace" in stdout and str(out) in stdout
    stats = validate_trace_file(out)
    assert stats["format"] == "chrome"
    assert stats["events"] > 0
    # One named track per server plus collector and ledger.
    assert "collector" in stats["tracks"] and "ledger" in stats["tracks"]
    assert any(track.startswith("server-") for track in stats["tracks"])


def test_trace_jsonl_format_and_artifact(tmp_path, capsys):
    from repro.obs.export import validate_trace_file

    out = tmp_path / "smoke.trace.jsonl"
    artifact = tmp_path / "smoke.json"
    assert main(["trace", SMOKE, "--out", str(out), "--format", "jsonl",
                 "--json", str(artifact)]) == 0
    capsys.readouterr()
    assert validate_trace_file(out)["format"] == "jsonl"
    result = RunResult.load(artifact)
    assert result.telemetry is not None
    assert result.telemetry["sample"] == 1.0


def test_sweep_trace_dir_requires_trace_sample(tmp_path, capsys):
    assert main(["sweep", "--contains", "smoke",
                 "--trace-dir", str(tmp_path)]) == 1
    assert "--trace-sample" in capsys.readouterr().err


def test_sweep_with_tracing_writes_trace_files(tmp_path, capsys):
    from repro.obs.export import validate_trace_file

    out = tmp_path / "artifacts"
    traces = tmp_path / "traces"
    assert main(["sweep", "--tag", "demo", "--contains", "smoke",
                 "--out", str(out),
                 "--trace-sample", "1.0", "--trace-dir", str(traces),
                 "--quiet"]) == 0
    trace_files = sorted(traces.glob("*.trace.json"))
    assert len(trace_files) == 1
    assert validate_trace_file(trace_files[0])["format"] == "chrome"
    result = RunResult.load(out / "smoke.json")
    assert result.telemetry is not None


def test_report_phases_renders_latency_table(tmp_path, capsys):
    traced = tmp_path / "traced.json"
    plain = tmp_path / "plain.json"
    assert main(["trace", SMOKE, "--out", str(tmp_path / "t.trace.json"),
                 "--json", str(traced)]) == 0
    assert main(["run", SMOKE, "--json", str(plain), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["report", str(traced), "--phases"]) == 0
    out = capsys.readouterr().out
    assert "phase latency since injection" in out
    assert "committed" in out and "p99" in out
    # Untraced artifacts have no phase data to report.
    assert main(["report", str(plain), "--phases"]) == 0
    assert "no traced artifacts" in capsys.readouterr().out


def test_sweep_family_filter_composes_with_contains(tmp_path, capsys):
    assert main(["sweep", "--family", "shard", "--contains", "smoke",
                 "--out", str(tmp_path), "--quiet"]) == 0
    files = sorted(f.name for f in tmp_path.glob("*.json"))
    assert files == ["shard__smoke.json"]


def test_sweep_unknown_family_errors_and_lists_families(capsys):
    # Regression: an empty spec list after filtering must be a clean error,
    # not a crash further down the sweep.
    assert main(["sweep", "--family", "no-such-family"]) == 1
    err = capsys.readouterr().err
    assert "no scenarios in family 'no-such-family'" in err
    assert "shard" in err and "bench" in err


def test_sweep_with_more_jobs_than_specs(tmp_path, capsys):
    # Regression: --jobs larger than the spec count must clamp, not crash.
    assert main(["sweep", "--family", "shard", "--contains", "smoke",
                 "--jobs", "4", "--out", str(tmp_path), "--quiet"]) == 0
    assert sorted(f.name for f in tmp_path.glob("*.json")) == ["shard__smoke.json"]


def zero_commit_scenario():
    # Every server down before the first element: injection proceeds, nothing
    # ever commits — the edge every summary table must render, not crash on.
    return (Scenario.hashchain().servers(4).rate(50).collector(10)
            .inject_for(5).drain(2).backend("ideal")
            .crash(0.0, "server-0", "server-1", "server-2", "server-3")
            .label("zero-commit").seed(2))


def test_report_renders_zero_commit_artifacts(tmp_path, capsys):
    # Regression: percentile/summary rows over empty commit sequences.
    result = run(zero_commit_scenario())
    assert result.injected > 0 and result.committed == 0
    artifact = tmp_path / "zero.json"
    result.save(artifact)
    assert main(["report", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "zero-commit" in out
    assert "resilience" in out


def test_report_phases_renders_zero_commit_traced_artifacts(tmp_path, capsys):
    result = run(zero_commit_scenario().trace(1.0))
    assert result.committed == 0 and result.telemetry is not None
    artifact = tmp_path / "zero-traced.json"
    result.save(artifact)
    assert main(["report", str(artifact), "--phases"]) == 0
    out = capsys.readouterr().out
    assert "phase latency since injection" in out


def test_report_renders_per_shard_breakdown(tmp_path, capsys):
    result = run(Scenario.hashchain().servers(2).shards(2).rate(300)
                 .collector(20).inject_for(4).drain(30).backend("ideal")
                 .label("shard-report").seed(13))
    artifact = tmp_path / "sharded.json"
    result.save(artifact)
    assert main(["report", str(artifact)]) == 0
    out = capsys.readouterr().out
    assert "per-shard breakdown" in out
    assert "skew=" in out
