"""Tests for epoch-proof creation and the f+1 commit rule."""

import pytest

from repro.core.proofs import (
    committed_epochs,
    create_epoch_proof,
    distinct_signers,
    epoch_is_committed,
    verify_epoch_proof,
)
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import SimulatedScheme
from repro.workload.elements import make_element


@pytest.fixture
def scheme():
    return SimulatedScheme(PublicKeyInfrastructure())


@pytest.fixture
def elements():
    return [make_element("c", 100) for _ in range(5)]


def make_proofs(scheme, elements, epoch, signers):
    proofs = []
    for name in signers:
        keypair = scheme.generate_keypair(name)
        proofs.append(create_epoch_proof(scheme, keypair, epoch, elements))
    return proofs


def test_create_and_verify_epoch_proof(scheme, elements):
    keypair = scheme.generate_keypair("server-0")
    proof = create_epoch_proof(scheme, keypair, 3, elements)
    assert proof.epoch_number == 3 and proof.signer == "server-0"
    assert verify_epoch_proof(scheme, proof, elements)
    assert not verify_epoch_proof(scheme, proof, elements[:-1])


def test_verify_rejects_resigned_by_other_server(scheme, elements):
    kp0 = scheme.generate_keypair("server-0")
    scheme.generate_keypair("server-1")
    proof = create_epoch_proof(scheme, kp0, 1, elements)
    impostor = type(proof)(epoch_number=1, epoch_hash=proof.epoch_hash,
                           signature=proof.signature, signer="server-1")
    assert not verify_epoch_proof(scheme, impostor, elements)


def test_distinct_signers_counts_unique_and_filters_epoch(scheme, elements):
    proofs = make_proofs(scheme, elements, 1, ["s0", "s1", "s2"])
    proofs.append(proofs[0])  # duplicate
    other_epoch = create_epoch_proof(scheme, scheme.generate_keypair("s3"), 2, elements)
    signers = distinct_signers(proofs + [other_epoch], 1)
    assert signers == {"s0", "s1", "s2"}
    assert distinct_signers(proofs, 1, epoch_hash="bogus") == set()


def test_epoch_is_committed_requires_quorum(scheme, elements):
    proofs = make_proofs(scheme, elements, 1, ["s0", "s1"])
    assert not epoch_is_committed(proofs, 1, elements, quorum=3)
    proofs += make_proofs(scheme, elements, 1, ["s2"])
    assert epoch_is_committed(proofs, 1, elements, quorum=3)


def test_epoch_is_committed_ignores_mismatching_proofs(scheme, elements):
    good = make_proofs(scheme, elements, 1, ["s0", "s1"])
    wrong_content = make_proofs(scheme, elements[:-1], 1, ["s2", "s3"])
    assert not epoch_is_committed(good + wrong_content, 1, elements, quorum=3)


def test_epoch_is_committed_with_signature_verification(scheme, elements):
    proofs = make_proofs(scheme, elements, 1, ["s0", "s1"])
    forged = type(proofs[0])(epoch_number=1, epoch_hash=proofs[0].epoch_hash,
                             signature=b"f" * 64, signer="s9")
    scheme.generate_keypair("s9")
    assert not epoch_is_committed(proofs + [forged], 1, elements, quorum=3, scheme=scheme)
    assert epoch_is_committed(proofs + [forged], 1, elements, quorum=3)  # unchecked counts it? no:
    # without scheme the forged proof's hash matches, so it counts; this is the
    # server-side path where signatures were already verified before storage.


def test_committed_epochs_over_history(scheme, elements):
    history = {1: frozenset(elements[:2]), 2: frozenset(elements[2:])}
    proofs = []
    proofs += make_proofs(scheme, history[1], 1, ["a0", "a1", "a2"])
    proofs += make_proofs(scheme, history[2], 2, ["a0"])
    assert committed_epochs(proofs, history, quorum=3) == {1}
