"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_push_and_pop_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(2.0, lambda: order.append("b"))
    queue.push(1.0, lambda: order.append("a"))
    queue.push(3.0, lambda: order.append("c"))
    while queue:
        queue.pop().callback()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    order = []
    for label in "abc":
        queue.push(1.0, lambda lab=label: order.append(lab))
    while queue:
        queue.pop().callback()
    assert order == ["a", "b", "c"]


def test_priority_orders_same_time_events():
    queue = EventQueue()
    order = []
    queue.push(1.0, lambda: order.append("low"), priority=5)
    queue.push(1.0, lambda: order.append("high"), priority=0)
    while queue:
        queue.pop().callback()
    assert order == ["high", "low"]


def test_len_counts_live_events():
    queue = EventQueue()
    e1 = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    assert len(queue) == 2
    e1.cancel()
    queue.pop()
    assert len(queue) == 0


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    fired = []
    event = queue.push(1.0, lambda: fired.append(1))
    queue.push(2.0, lambda: fired.append(2))
    event.cancel()
    queue.pop().callback()
    assert fired == [2]


def test_cancel_is_idempotent():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert queue.peek_time() is None


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 5.0


def test_nan_time_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(float("nan"), lambda: None)


def test_discard_cancelled_compacts_heap():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]
    for event in events[:5]:
        event.cancel()
    queue.discard_cancelled()
    assert len(queue) == 5
    assert queue.peek_time() == 5.0
