"""Tests for the analysis layer: metrics, analytical model, throughput,
efficiency, latency CDFs, commit times, and report rendering."""

import pytest

from repro.analysis.analytical import (
    AnalyticalParameters,
    blocksize_sweep,
    compresschain_throughput,
    hashchain_throughput,
    paper_analysis_parameters,
    throughput_for,
    vanilla_throughput,
)
from repro.analysis.committime import commit_time_quantiles
from repro.analysis.efficiency import efficiency_at, efficiency_profile
from repro.analysis.latency import latency_cdf, stage_latencies
from repro.analysis.metrics import MetricsCollector
from repro.analysis.report import render_series, render_table
from repro.analysis.throughput import (
    ThroughputSeries,
    average_throughput,
    instantaneous_throughput,
    rolling_throughput,
)
from repro.errors import ConfigurationError
from repro.workload.elements import make_element


# -- analytical model (Appendix D.1) ------------------------------------------------------

def test_appendix_d1_values_are_reproduced():
    assert vanilla_throughput(paper_analysis_parameters(500)) == pytest.approx(955, rel=0.02)
    assert compresschain_throughput(paper_analysis_parameters(100)) == pytest.approx(2497, rel=0.02)
    assert compresschain_throughput(paper_analysis_parameters(500)) == pytest.approx(3330, rel=0.02)
    assert hashchain_throughput(paper_analysis_parameters(100)) == pytest.approx(27_157, rel=0.02)
    assert hashchain_throughput(paper_analysis_parameters(500)) == pytest.approx(147_857, rel=0.02)


def test_paper_throughput_ratios_hold():
    p500 = paper_analysis_parameters(500)
    assert hashchain_throughput(p500) / vanilla_throughput(p500) == pytest.approx(155, rel=0.03)
    assert (hashchain_throughput(p500) / compresschain_throughput(p500)
            == pytest.approx(44, rel=0.05))


def test_blocksize_sweep_reproduces_fig2_right_shape():
    sizes = [0.5e6, 4e6, 128e6]
    hashchain = blocksize_sweep("hashchain", sizes)
    vanilla = blocksize_sweep("vanilla", sizes)
    assert all(a < b for a, b in zip(hashchain, hashchain[1:]))  # monotone in C
    # Paper: ~10^6 el/s at 4 MB and >3x10^7 el/s at 128 MB for Hashchain.
    assert hashchain[1] == pytest.approx(1.18e6, rel=0.05)
    assert hashchain[2] > 3e7
    assert all(h > v for h, v in zip(hashchain, vanilla))


def test_throughput_for_dispatch_and_validation():
    params = paper_analysis_parameters(500)
    assert throughput_for("hashchain-light", params) == hashchain_throughput(params)
    with pytest.raises(ConfigurationError):
        throughput_for("bitcoin", params)
    with pytest.raises(ConfigurationError):
        AnalyticalParameters(collector_size=5, n_servers=10)


def test_analytical_edge_cases():
    tiny = AnalyticalParameters(block_size_bytes=100, collector_size=500)
    assert vanilla_throughput(tiny) == 0.0  # proofs alone exceed the block


# -- metrics ------------------------------------------------------------------------------

def build_metrics(commits):
    metrics = MetricsCollector()
    for i, (injected, committed) in enumerate(commits):
        element = make_element("c", 100)
        metrics.record_injected(element, injected)
        metrics.record_added(element, "server-0", injected)
        metrics.record_epoch_assigned(element.element_id, 1, committed - 0.5)
        metrics.record_epoch_committed(1, [element], committed)
    return metrics


def test_metrics_first_observation_wins():
    metrics = MetricsCollector()
    element = make_element("c", 100)
    metrics.record_injected(element, 1.0)
    metrics.record_injected(element, 5.0)
    metrics.record_in_ledger(element.element_id, 3.0)
    metrics.record_in_ledger(element.element_id, 9.0)
    metrics.record_epoch_committed(1, [element], 4.0)
    metrics.record_epoch_committed(1, [element], 8.0)
    record = metrics.elements[element.element_id]
    assert record.injected_at == 1.0
    assert record.in_ledger_at == 3.0
    assert record.committed_at == 4.0
    assert record.commit_latency() == pytest.approx(3.0)
    assert metrics.epoch_commit_times[1] == 4.0


def test_metrics_hash_mapping_resolves_elements():
    metrics = MetricsCollector()
    element = make_element("c", 100)
    metrics.record_injected(element, 0.0)
    metrics.record_batch_hash_elements("deadbeef", [element.element_id])
    metrics.record_in_ledger_by_hash("deadbeef", 2.0)
    assert metrics.elements[element.element_id].in_ledger_at == 2.0


def test_metrics_counts_and_ordering():
    metrics = build_metrics([(0.0, 2.0), (1.0, 3.0), (2.0, 10.0)])
    assert metrics.injected_count == 3
    assert metrics.committed_count == 3
    assert metrics.commit_times() == [2.0, 3.0, 10.0]
    assert metrics.commit_latencies() == [2.0, 2.0, 8.0]
    records = metrics.records()
    assert [r.injected_at for r in records] == [0.0, 1.0, 2.0]


# -- throughput ---------------------------------------------------------------------------

def test_rolling_throughput_uses_window_average():
    commits = [float(t) for t in range(1, 91)]  # 1 el/s for 90 s
    series = rolling_throughput(commits, window=9.0, step=1.0)
    assert series.values[20] == pytest.approx(1.0)
    assert series.at(50.0) == pytest.approx(1.0)
    assert series.peak() == pytest.approx(1.0)


def test_rolling_throughput_empty_and_validation():
    assert rolling_throughput([]).times == ()
    with pytest.raises(ConfigurationError):
        rolling_throughput([1.0], window=0)
    with pytest.raises(ConfigurationError):
        ThroughputSeries(times=(1.0,), values=())


def test_average_and_instantaneous_throughput():
    commits = [0.5 + i * 0.1 for i in range(100)]  # 100 commits in ~10 s
    assert average_throughput(commits, up_to=50.0) == pytest.approx(2.0)
    assert average_throughput(commits, up_to=10.0) == pytest.approx(9.5, rel=0.1)
    series = instantaneous_throughput(commits, bin_width=1.0)
    assert sum(series.values) == pytest.approx(100.0)
    with pytest.raises(ConfigurationError):
        average_throughput(commits, up_to=0)


# -- efficiency ---------------------------------------------------------------------------

def test_efficiency_profile_matches_paper_semantics():
    metrics = build_metrics([(1.0, 40.0), (2.0, 60.0), (3.0, 90.0), (4.0, 120.0)])
    assert efficiency_at(metrics, 50.0) == pytest.approx(0.25)
    profile = efficiency_profile(metrics, label="x")
    assert profile.at_50 == pytest.approx(0.25)
    assert profile.at_75 == pytest.approx(0.5)
    assert profile.at_100 == pytest.approx(0.75)
    assert not profile.fully_efficient
    assert profile.as_dict() == {"50s": 0.25, "75s": 0.5, "100s": 0.75}


def test_efficiency_uses_total_added_override():
    metrics = build_metrics([(1.0, 10.0)])
    assert efficiency_at(metrics, 50.0, total_added=4) == pytest.approx(0.25)
    assert efficiency_at(MetricsCollector(), 50.0) == 0.0


# -- latency ------------------------------------------------------------------------------

def test_latency_cdf_quantiles_and_fractions():
    cdf = latency_cdf([1.0, 2.0, 3.0, 4.0])
    assert cdf.count == 4
    assert cdf.fraction_below(2.0) == pytest.approx(0.5)
    assert cdf.fraction_below(10.0) == 1.0
    assert cdf.quantile(0.5) == pytest.approx(2.5)
    xs, fs = cdf.curve(points=10)
    assert len(xs) == 10 and fs[-1] == 1.0
    with pytest.raises(ConfigurationError):
        cdf.quantile(2.0)


def test_stage_latencies_reconstructs_mempool_stages():
    metrics = MetricsCollector()
    element = make_element("c", 100)
    metrics.record_injected(element, 0.0)
    metrics.record_tx_elements(42, [element.element_id])
    metrics.record_in_ledger(element.element_id, 3.0)
    metrics.record_epoch_committed(1, [element], 5.0)
    arrivals = [{42: 1.0}, {42: 1.5}, {42: 2.0}]  # three mempools
    stages = stage_latencies(metrics, arrivals, quorum=2)
    assert stages["first_mempool"].latencies == (1.0,)
    assert stages["quorum_mempools"].latencies == (1.5,)
    assert stages["all_mempools"].latencies == (2.0,)
    assert stages["ledger"].latencies == (3.0,)
    assert stages["committed"].latencies == (5.0,)
    # Without arrival tables only the last two stages exist.
    assert set(stage_latencies(metrics)) == {"ledger", "committed"}


# -- commit times -------------------------------------------------------------------------

def test_commit_time_quantiles():
    metrics = build_metrics([(0.0, t) for t in (5.0, 10.0, 20.0, 40.0, 80.0,
                                                81.0, 82.0, 83.0, 84.0, 85.0)])
    summary = commit_time_quantiles(metrics)
    assert summary.first_element == 5.0
    assert summary.time_for(0.1) == 5.0
    assert summary.time_for(0.5) == 80.0
    assert summary.reached_half
    partial = commit_time_quantiles(metrics, total_added=100)
    assert partial.time_for(0.5) is None
    with pytest.raises(ConfigurationError):
        commit_time_quantiles(metrics, fractions=(0.0,))


# -- report rendering ----------------------------------------------------------------------

def test_render_table_and_series():
    table = render_table(["a", "b"], [[1, 2.5], ["x", 10_000.0]], title="T")
    assert "T" in table and "10,000" in table and "2.5" in table
    series = {"hashchain": rolling_throughput([float(i) for i in range(1, 60)])}
    text = render_series(series, sample_every=10.0)
    assert "hashchain" in text and "10" in text
    assert render_table(["only"], [])
