"""Unit tests for the simulator scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.scheduler import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_call_at_runs_at_given_time():
    sim = Simulator()
    seen = []
    sim.call_at(2.5, lambda: seen.append(sim.now))
    sim.run_until(5.0)
    assert seen == [2.5]
    assert sim.now == 5.0


def test_call_in_is_relative_to_now():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: sim.call_in(0.5, lambda: seen.append(sim.now)))
    sim.run_until(3.0)
    assert seen == [1.5]


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.call_soon(lambda: seen.append(sim.now))
    sim.run_until(0.0)
    assert seen == [0.0]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.call_at(1.0, lambda: None)
    sim.run_until(2.0)
    with pytest.raises(SimulationError):
        sim.call_at(1.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-0.1, lambda: None)


def test_run_until_does_not_execute_future_events():
    sim = Simulator()
    seen = []
    sim.call_at(10.0, lambda: seen.append("late"))
    sim.run_until(5.0)
    assert seen == []
    assert sim.pending_events() == 1


def test_run_until_backwards_raises():
    sim = Simulator()
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)


def test_run_until_idle_drains_all_events():
    sim = Simulator()
    seen = []
    def chain(n):
        seen.append(n)
        if n < 5:
            sim.call_in(1.0, lambda: chain(n + 1))
    sim.call_soon(lambda: chain(0))
    sim.run_until_idle()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_run_until_idle_respects_max_time():
    sim = Simulator()
    seen = []
    sim.call_at(1.0, lambda: seen.append(1))
    sim.call_at(10.0, lambda: seen.append(10))
    sim.run_until_idle(max_time=5.0)
    assert seen == [1]
    assert sim.now == 5.0


def test_events_executed_counter():
    sim = Simulator()
    for i in range(4):
        sim.call_at(float(i + 1), lambda: None)
    sim.run_until(10.0)
    assert sim.events_executed == 4


def test_max_events_budget_enforced():
    sim = Simulator()
    def reschedule():
        sim.call_in(0.1, reschedule)
    sim.call_soon(reschedule)
    sim.max_events = 50
    with pytest.raises(SimulationError):
        sim.run_until(1000.0)


def test_run_until_condition_stops_when_predicate_true():
    sim = Simulator()
    state = {"count": 0}
    def bump():
        state["count"] += 1
        sim.call_in(1.0, bump)
    sim.call_soon(bump)
    reached = sim.run_until_condition(lambda: state["count"] >= 3, max_time=100.0)
    assert reached
    assert state["count"] >= 3
    assert sim.now <= 100.0


def test_run_until_condition_times_out():
    sim = Simulator()
    reached = sim.run_until_condition(lambda: False, max_time=5.0)
    assert not reached


def test_deterministic_rng_attached():
    a = Simulator(seed=42)
    b = Simulator(seed=42)
    assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]
