"""Heterogeneous clusters: correctness under mixed algorithms and regions.

The satellite guarantees of the topology PR:

* a mixed vanilla+hashchain deployment satisfies Properties 1-8 with the
  quorum computed over the *full* server set;
* a Byzantine server in one region does not break consistency in another;
* the same (scenario, seed) is byte-identical under ``--jobs 1`` vs
  ``--jobs 4`` for a ``wan/`` and a ``mixed/`` scenario (extending the PR 2
  byte-identity suite).
"""

from __future__ import annotations

import pytest

from repro.api import get_scenario
from repro.api.parallel import RunSpec, run_specs
from repro.core.byzantine import WithholdingHashchainServer
from repro.core.deployment import build_deployment
from repro.core.hashchain import HashchainServer
from repro.core.properties import check_all, check_consistent_gets
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import SimulatedScheme
from repro.config import LedgerConfig, SetchainConfig
from repro.ledger.ideal import IdealLedger
from repro.net.latency import ConstantLatency, RegionalLatency
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.workload.elements import make_element


# -- mixed-algorithm properties ------------------------------------------------

def test_mixed_vanilla_hashchain_satisfies_properties_with_full_quorum():
    """Properties 1-8 hold on a 2+2 mixed cluster, quorum over all 4 servers."""
    config = get_scenario("mixed/smoke")
    assert config.setchain.quorum == 2  # f=1 over the full 4-server set
    deployment = build_deployment(config, seed=11)
    deployment.start()
    deployment.run_to_completion()
    assert deployment.committed_fraction == 1.0
    violations = deployment.check_properties(include_liveness=True)
    assert violations == []


def test_mixed_cluster_groups_scope_cross_server_checks():
    """Each algorithm group agrees internally; groups are distinct tenants."""
    config = get_scenario("mixed/smoke")
    deployment = build_deployment(config, seed=3)
    deployment.start()
    deployment.run_to_completion()
    groups = deployment.algorithm_groups()
    assert set(groups.values()) == {"vanilla", "hashchain"}
    views = deployment.views()
    for algorithm in ("vanilla", "hashchain"):
        group_views = {name: view for name, view in views.items()
                       if groups[name] == algorithm}
        assert len(group_views) == 2
        assert check_consistent_gets(group_views) == []
    # Without groups, the cross-group epoch comparison would (correctly)
    # report differences — the group scoping is what makes the multi-tenant
    # semantics explicit.
    assert check_all(views, quorum=config.setchain.quorum,
                     include_liveness=False) != []
    assert check_all(views, quorum=config.setchain.quorum,
                     include_liveness=False, groups=groups) == []


def test_mixed_light_groups_do_not_share_batch_stores():
    """hashchain and hashchain-light groups each keep their own store."""
    config = get_scenario("mixed/light/hashchain-vs-light-n4")
    deployment = build_deployment(config)
    light = [s for s in deployment.servers
             if getattr(s, "light", False)]
    full = [s for s in deployment.servers
            if isinstance(s, HashchainServer) and not s.light]
    assert len(light) == len(full) == 2
    assert light[0].shared_store is light[1].shared_store
    assert all(s.shared_store is None for s in full)


# -- Byzantine region isolation ------------------------------------------------

def _build_two_region_cluster(byzantine_in: str):
    """4 hashchain servers in two regions over 40 ms links; one Byzantine."""
    sim = Simulator(seed=99)
    region_of = {f"server-{i}": ("west" if i < 2 else "east") for i in range(4)}
    latency = RegionalLatency(region_of, intra=ConstantLatency(base=0.001),
                              inter_delay=0.040, inter_jitter=0.005)
    network = Network(sim, latency=latency)
    scheme = SimulatedScheme(PublicKeyInfrastructure())
    config = SetchainConfig(n_servers=4, f=1, collector_limit=10,
                            collector_timeout=0.5, batch_request_timeout=0.5)
    ledger = IdealLedger(sim, LedgerConfig(block_size_bytes=200_000, block_rate=2.0))
    ledger.start()
    servers = []
    for index in range(4):
        name = f"server-{index}"
        keypair = scheme.generate_keypair(name)
        byzantine = region_of[name] == byzantine_in and name == "server-0"
        cls = WithholdingHashchainServer if byzantine else HashchainServer
        server = cls(name, sim, config, scheme, keypair)
        network.register(server)
        server.connect_ledger(ledger.handle_for(name))
        servers.append(server)
    return sim, config, region_of, servers


def test_byzantine_server_in_one_region_does_not_break_the_other():
    sim, config, region_of, servers = _build_two_region_cluster("west")
    correct = servers[1:]
    elements = []
    for i in range(30):
        element = make_element(f"c{i % 3}", 120)
        correct[i % 3].add(element)
        elements.append(element)
    sim.run_until(90.0)
    views = {s.name: s.get() for s in correct}
    # All correct servers — both the withholder's west neighbour and the
    # whole east region — agree and commit every element (quorum f+1=2 is
    # reachable without the Byzantine server).
    assert check_all(views, quorum=config.quorum, all_added=elements,
                     include_liveness=True) == []
    east_views = {name: view for name, view in views.items()
                  if region_of[name] == "east"}
    assert len(east_views) == 2
    for view in east_views.values():
        assert all(element in view.elements_in_epochs() for element in elements)


# -- consensus liveness under vote splits --------------------------------------

def test_round_timeout_escalation_breaks_split_prevote_deadlock():
    """Regional jitter can split a round's prevotes between the proposal and
    nil with neither reaching 2f+1; the timeout ladder (timeout_prevote →
    timeout_precommit) must end the round instead of deadlocking."""
    from repro.ledger.cometbft.consensus import (
        NIL_BLOCK,
        Proposal,
        Vote,
        VoteType,
        block_id_for,
    )
    from repro.ledger.cometbft.engine import CometBFTNetwork
    from repro.ledger.types import new_transaction

    sim = Simulator(seed=5)
    network = Network(sim, latency=ConstantLatency(base=0.001))
    net = CometBFTNetwork(sim, network, 4, LedgerConfig(block_rate=2.0))
    names = net.validators.names
    proposer = net.validators.proposer(1, 0)
    node = next(n for n in net.node_list() if n.name != proposer)
    tx = new_transaction(payload=b"x", size_bytes=10, origin="test")
    proposal = Proposal(height=1, round=0, proposer=proposer,
                        transactions=(tx,),
                        block_id=block_id_for(1, (tx,), proposer))
    node._handle_proposal(proposal)  # node prevotes the block
    assert node.state.prevoted and not node.state.precommitted
    # One more block prevote and two nil prevotes: 2 vs 2, quorum is 3.
    others = [name for name in names if name not in (node.name, proposer)]
    node.state.record_vote(Vote(1, 0, proposer, VoteType.PREVOTE,
                                proposal.block_id))
    for voter in others:
        node.state.record_vote(Vote(1, 0, voter, VoteType.PREVOTE, NIL_BLOCK))
    node._maybe_progress()
    assert not node.state.precommitted  # genuinely split: no quorum either way
    # timeout_prevote: the node precommits nil so the round can end.
    node._on_round_timeout()
    assert node.state.precommitted
    assert node.state.count(0, VoteType.PRECOMMIT, NIL_BLOCK) == 1
    # 2 block + 1 nil precommits heard: a still-unheard validator could push
    # the block to quorum, so the timeout must NOT advance (fork guard).
    node.state.record_vote(Vote(1, 0, others[0], VoteType.PRECOMMIT,
                                proposal.block_id))
    node.state.record_vote(Vote(1, 0, others[1], VoteType.PRECOMMIT,
                                proposal.block_id))
    node._maybe_progress()
    assert node.state.round == 0  # no per-value quorum from the mixed votes
    node._on_round_timeout()
    assert node.state.round == 0  # block at 2 + 1 unheard could still commit
    # Once every validator has precommitted (2 block + 2 nil), the round is
    # provably dead: timeout_precommit advances.
    node.state.record_vote(Vote(1, 0, proposer, VoteType.PRECOMMIT, NIL_BLOCK))
    node._maybe_progress()
    assert node.state.round == 0
    node._on_round_timeout()
    assert node.state.round == 1
    assert not node.state.prevoted and not node.state.precommitted


def test_wan_consensus_commits_blocks_despite_jitter():
    """End-to-end: a 2-region CometBFT cluster with jittered 30 ms links
    keeps committing blocks (the deadlock this PR fixed stalled it at 0)."""
    from repro.api import Scenario

    config = (Scenario.hashchain().region("us", 2).region("eu", 2)
              .wan(inter_ms=30, jitter_ms=6).byzantine(f=1)
              .rate(200).collector(20).inject_for(5).drain(120).build())
    deployment = build_deployment(config, seed=2)
    deployment.start()
    deployment.run_to_completion()
    assert deployment.ledger_backend.min_committed_height() > 0
    assert deployment.committed_fraction == 1.0
    assert deployment.check_properties() == []


# -- determinism across worker counts -----------------------------------------

@pytest.mark.parametrize("scenario", ["wan/hashchain/smoke", "mixed/smoke"])
def test_topology_scenarios_byte_identical_across_jobs(scenario):
    specs = [RunSpec(name=scenario, seed=21), RunSpec(name=scenario, seed=22),
             RunSpec(name="smoke", seed=23)]
    serial = [result.to_json() for result in run_specs(specs, jobs=1)]
    parallel = [result.to_json() for result in run_specs(specs, jobs=4)]
    assert serial == parallel
    assert serial[0] != serial[1]  # different seeds genuinely differ
