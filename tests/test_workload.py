"""Tests for elements, the Arbitrum-like generator, clients, and traces."""

import pytest

from repro.config import WorkloadConfig
from repro.errors import ConfigurationError, InvalidElementError
from repro.sim.rng import DeterministicRNG
from repro.sim.scheduler import Simulator
from repro.workload.clients import ClientPool, InjectionClient
from repro.workload.elements import Element, make_element
from repro.workload.generator import MIN_ELEMENT_SIZE, ArbitrumLikeGenerator, ElementSizeStats
from repro.workload.traces import WorkloadTrace, record_trace, replay_trace


class SinkServer:
    """Minimal add target collecting elements."""

    def __init__(self):
        self.elements = []

    def add(self, element):
        self.elements.append(element)


# -- elements -----------------------------------------------------------------------

def test_make_element_assigns_unique_ids():
    ids = {make_element("c", 100).element_id for _ in range(100)}
    assert len(ids) == 100


def test_element_rejects_non_positive_size():
    with pytest.raises(InvalidElementError):
        Element(element_id=1, client="c", size_bytes=0, body_digest="d")


def test_element_canonical_bytes_stable_and_distinct():
    a = make_element("c", 100)
    b = make_element("c", 100)
    assert a.canonical_bytes() == a.canonical_bytes()
    assert a.canonical_bytes() != b.canonical_bytes()
    assert a.is_element


# -- generator -----------------------------------------------------------------------

def test_generator_matches_paper_statistics():
    generator = ArbitrumLikeGenerator(DeterministicRNG(1))
    sizes = [generator.next_size() for _ in range(20_000)]
    mean = sum(sizes) / len(sizes)
    variance = sum((s - mean) ** 2 for s in sizes) / len(sizes)
    # Paper: mean 438, std 753.5.  Allow sampling tolerance.
    assert mean == pytest.approx(438, rel=0.10)
    assert variance ** 0.5 == pytest.approx(753.5, rel=0.30)
    assert min(sizes) >= MIN_ELEMENT_SIZE


def test_generator_zero_std_is_constant():
    generator = ArbitrumLikeGenerator(DeterministicRNG(1), ElementSizeStats(200.0, 0.0))
    assert {generator.next_size() for _ in range(10)} == {200}


def test_generator_counts_and_mean():
    generator = ArbitrumLikeGenerator(DeterministicRNG(2))
    assert generator.observed_mean_size == 0.0
    batch = generator.batch("client-0", 50, now=1.0)
    assert len(batch) == 50
    assert generator.generated == 50
    assert generator.observed_mean_size > 0
    assert all(e.client == "client-0" and e.created_at == 1.0 for e in batch)


def test_element_size_stats_validation():
    with pytest.raises(ConfigurationError):
        ElementSizeStats(-1.0, 1.0)


def test_generator_is_deterministic_per_seed():
    a = ArbitrumLikeGenerator(DeterministicRNG(9))
    b = ArbitrumLikeGenerator(DeterministicRNG(9))
    assert [a.next_size() for _ in range(20)] == [b.next_size() for _ in range(20)]


# -- clients --------------------------------------------------------------------------

def test_injection_client_respects_rate_and_duration():
    sim = Simulator(seed=0)
    sink = SinkServer()
    client = InjectionClient("client-0", sim, sink, rate=100.0, duration=5.0,
                             generator=ArbitrumLikeGenerator(DeterministicRNG(0)))
    client.start()
    sim.run_until(20.0)
    assert client.sent == pytest.approx(500, abs=1)
    assert len(sink.elements) == client.sent
    assert client.finished


def test_injection_client_fractional_rate_accumulates():
    sim = Simulator(seed=0)
    sink = SinkServer()
    client = InjectionClient("client-0", sim, sink, rate=3.3, duration=10.0,
                             generator=ArbitrumLikeGenerator(DeterministicRNG(0)))
    client.start()
    sim.run_until(20.0)
    assert client.sent == pytest.approx(33, abs=1)


def test_client_pool_splits_rate_evenly():
    sim = Simulator(seed=0)
    sinks = [SinkServer() for _ in range(4)]
    seen = []
    pool = ClientPool(sim, sinks, WorkloadConfig(sending_rate=400, injection_duration=5),
                      on_element=seen.append)
    pool.start()
    sim.run_until(10.0)
    assert pool.total_sent == pytest.approx(2000, abs=4)
    per_server = [len(s.elements) for s in sinks]
    assert max(per_server) - min(per_server) <= 2
    assert len(seen) == pool.total_sent
    assert pool.all_finished


def test_client_pool_requires_targets():
    sim = Simulator(seed=0)
    with pytest.raises(ConfigurationError):
        ClientPool(sim, [], WorkloadConfig())


def test_client_validation_errors():
    sim = Simulator(seed=0)
    with pytest.raises(ConfigurationError):
        InjectionClient("c", sim, SinkServer(), rate=0, duration=1,
                        generator=ArbitrumLikeGenerator(DeterministicRNG(0)))


# -- traces ---------------------------------------------------------------------------------

def test_record_trace_is_deterministic_and_ordered():
    a = record_trace(rate=100, duration=2.0, clients=["c0", "c1"], seed=5)
    b = record_trace(rate=100, duration=2.0, clients=["c0", "c1"], seed=5)
    assert a.entries == b.entries
    assert len(a) == pytest.approx(200, abs=2)
    times = [e.time for e in a]
    assert times == sorted(times)
    assert a.total_bytes > 0
    assert a.duration <= 2.0 + 1e-6


def test_trace_json_roundtrip(tmp_path):
    trace = record_trace(rate=50, duration=1.0, clients=["c0"], seed=1)
    path = tmp_path / "trace.json"
    trace.to_json(path)
    loaded = WorkloadTrace.from_json(path)
    assert loaded.entries == trace.entries


def test_replay_trace_injects_against_named_targets():
    sim = Simulator(seed=0)
    trace = record_trace(rate=100, duration=1.0, clients=["c0", "c1"], seed=2)
    sinks = {"c0": SinkServer(), "c1": SinkServer()}
    injected = replay_trace(trace, sim, sinks)
    sim.run_until(2.0)
    assert len(injected) == len(trace)
    assert len(sinks["c0"].elements) + len(sinks["c1"].elements) == len(trace)


def test_replay_trace_unknown_client_raises():
    sim = Simulator(seed=0)
    trace = record_trace(rate=10, duration=1.0, clients=["ghost"], seed=3)
    replay_trace(trace, sim, targets={})
    with pytest.raises(ConfigurationError):
        sim.run_until(2.0)


def test_trace_rejects_unsorted_entries():
    from repro.workload.traces import TraceEntry
    with pytest.raises(ConfigurationError):
        WorkloadTrace(entries=(TraceEntry(2.0, "c", 10), TraceEntry(1.0, "c", 10)))
