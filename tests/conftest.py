"""Shared fixtures for the Setchain reproduction test suite."""

from __future__ import annotations

import pytest

from repro.config import LedgerConfig, SetchainConfig
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import SimulatedScheme
from repro.ledger.ideal import IdealLedger
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.scheduler import Simulator
from repro.workload.generator import ArbitrumLikeGenerator
from repro.sim.rng import DeterministicRNG


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=1234)


@pytest.fixture
def network(sim: Simulator) -> Network:
    """A network with a small constant latency."""
    return Network(sim, latency=ConstantLatency(base=0.001))


@pytest.fixture
def scheme() -> SimulatedScheme:
    """The fast simulated signature scheme over a fresh PKI."""
    return SimulatedScheme(PublicKeyInfrastructure())


@pytest.fixture
def generator() -> ArbitrumLikeGenerator:
    """An element generator with a fixed RNG stream."""
    return ArbitrumLikeGenerator(DeterministicRNG(7))


@pytest.fixture
def small_setchain_config() -> SetchainConfig:
    """A 4-server Setchain config with a small collector for fast tests."""
    return SetchainConfig(n_servers=4, collector_limit=10, collector_timeout=0.5,
                          batch_request_timeout=0.5)


@pytest.fixture
def fast_ledger_config() -> LedgerConfig:
    """A ledger producing small blocks quickly (keeps unit tests snappy)."""
    return LedgerConfig(block_size_bytes=200_000, block_rate=2.0)


@pytest.fixture
def ideal_ledger(sim: Simulator, fast_ledger_config: LedgerConfig) -> IdealLedger:
    """A started ideal ledger."""
    ledger = IdealLedger(sim, fast_ledger_config)
    ledger.start()
    return ledger


def build_servers(algorithm: str, sim: Simulator, network: Network,
                  scheme: SimulatedScheme, config: SetchainConfig,
                  ledger: IdealLedger, metrics=None, light: bool = False):
    """Helper used by algorithm tests: n servers of one kind over an ideal ledger."""
    from repro.compressor.model import ModelCompressor
    from repro.core.batch_store import BatchStore
    from repro.core.compresschain import CompresschainServer
    from repro.core.hashchain import HashchainServer
    from repro.core.vanilla import VanillaServer

    shared = BatchStore() if light else None
    servers = []
    for index in range(config.n_servers):
        name = f"server-{index}"
        keypair = scheme.generate_keypair(name)
        if algorithm == "vanilla":
            server = VanillaServer(name, sim, config, scheme, keypair, metrics=metrics)
        elif algorithm == "compresschain":
            server = CompresschainServer(name, sim, config, scheme, keypair,
                                         ModelCompressor(), metrics=metrics, light=light)
        elif algorithm == "hashchain":
            server = HashchainServer(name, sim, config, scheme, keypair,
                                     metrics=metrics, light=light, shared_store=shared)
        else:
            raise ValueError(algorithm)
        network.register(server)
        server.connect_ledger(ledger.handle_for(name))
        servers.append(server)
    return servers
