"""Deployment start/stop lifecycle (service mode's SIGTERM/restart path)."""

import pytest

from repro.api.builder import Scenario
from repro.core.deployment import build_deployment
from repro.errors import NetworkError


def small_config():
    return (Scenario.hashchain().servers(4).rate(100).collector(10)
            .inject_for(5).drain(30).backend("ideal").build())


def test_stop_is_idempotent_and_halts_block_production():
    deployment = build_deployment(small_config(), seed=1)
    deployment.start()
    deployment.run(until=6.0)
    height = deployment.ledger_backend.height
    assert height > 0
    deployment.stop()
    deployment.stop()  # regression: second stop must be a no-op, not an error
    assert deployment.stopped
    # With injection and block production stopped, advancing the clock
    # produces no further blocks.
    deployment.run(until=20.0)
    assert deployment.ledger_backend.height == height


def test_context_manager_starts_and_stops():
    with build_deployment(small_config(), seed=1) as deployment:
        assert deployment.started
        deployment.run(until=2.0)
    assert deployment.stopped


def test_double_start_and_start_after_stop_are_errors():
    deployment = build_deployment(small_config(), seed=1)
    deployment.start()
    with pytest.raises(NetworkError, match="already started"):
        deployment.start()
    deployment.stop()
    with pytest.raises(NetworkError, match="already stopped"):
        deployment.start()


def test_start_without_injection_runs_no_clients():
    deployment = build_deployment(small_config(), seed=1)
    deployment.start(inject=False)
    deployment.run(until=10.0)
    assert deployment.clients.total_sent == 0
    assert deployment.injected_elements == []
    # The rest of the system is live: a hand-added element still commits.
    from repro.workload.elements import make_element
    element = make_element("probe", 438, created_at=deployment.sim.now)
    assert deployment.servers[0].add(element)
    deployment.metrics.record_injected(element, deployment.sim.now)
    deployment.run(until=20.0)
    assert deployment.metrics.committed_count == 1
    deployment.stop()
