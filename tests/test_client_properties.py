"""Tests for the light client and for the Property 1-8 checkers themselves."""

import pytest

from repro.core.client import SetchainClient
from repro.core.proofs import create_epoch_proof
from repro.core.properties import (
    check_add_before_get,
    check_add_get_local,
    check_all,
    check_consistent_gets,
    check_consistent_sets,
    check_eventual_get,
    check_get_global,
    check_unique_epoch,
    check_valid_epoch_proofs,
)
from repro.core.types import SetchainView
from repro.errors import SetchainError
from repro.workload.elements import make_element

from conftest import build_servers


def make_view(the_set=(), history=None, epoch=0, proofs=()):
    return SetchainView.snapshot({e.element_id: e for e in the_set},
                                 {k: set(v) for k, v in (history or {}).items()},
                                 epoch, set(proofs))


# -- property checkers on synthetic views -------------------------------------------------

def test_consistent_sets_detects_missing_elements():
    e = make_element("c", 10)
    good = make_view(the_set=[e], history={1: [e]}, epoch=1)
    bad = make_view(the_set=[], history={1: [e]}, epoch=1)
    assert not check_consistent_sets(good)
    assert check_consistent_sets(bad)


def test_unique_epoch_detects_overlap():
    e = make_element("c", 10)
    bad = make_view(the_set=[e], history={1: [e], 2: [e]}, epoch=2)
    violations = check_unique_epoch(bad)
    assert violations and "Unique-Epoch" in str(violations[0])


def test_consistent_gets_detects_divergence():
    e1, e2 = make_element("c", 10), make_element("c", 10)
    views = {"a": make_view(the_set=[e1], history={1: [e1]}, epoch=1),
             "b": make_view(the_set=[e2], history={1: [e2]}, epoch=1)}
    assert check_consistent_gets(views)
    same = {"a": views["a"], "b": views["a"]}
    assert not check_consistent_gets(same)


def test_get_global_and_eventual_get():
    e = make_element("c", 10)
    holder = make_view(the_set=[e], history={1: [e]}, epoch=1)
    empty = make_view()
    assert check_get_global({"a": holder, "b": empty})
    assert not check_get_global({"a": holder, "b": holder})
    assert check_eventual_get(make_view(the_set=[e]))
    assert not check_eventual_get(holder)


def test_add_before_get_and_add_get_local():
    e, foreign = make_element("c", 10), make_element("c", 10)
    view = make_view(the_set=[e, foreign], history={1: [e, foreign]}, epoch=1)
    assert check_add_before_get(view, all_added=[e])
    assert not check_add_before_get(view, all_added=[e, foreign])
    assert check_add_get_local(make_view(), added_elements=[e])
    assert not check_add_get_local(view, added_elements=[e])


def test_valid_epoch_proofs_checker(scheme):
    elements = [make_element("c", 10)]
    proofs = [create_epoch_proof(scheme, scheme.generate_keypair(f"s{i}"), 1, elements)
              for i in range(3)]
    view = make_view(the_set=elements, history={1: elements}, epoch=1, proofs=proofs)
    assert not check_valid_epoch_proofs(view, quorum=3)
    assert check_valid_epoch_proofs(view, quorum=4)


def test_check_all_aggregates(scheme):
    e = make_element("c", 10)
    views = {"a": make_view(the_set=[e], history={1: [e]}, epoch=1)}
    violations = check_all(views, quorum=1, all_added=[e], include_liveness=True)
    # Only missing proofs should be reported.
    assert all(v.property_name == "Valid-Epoch" for v in violations)
    assert not check_all(views, quorum=1, all_added=[e], include_liveness=False)


# -- light client -------------------------------------------------------------------------

def test_client_quorum_validation(scheme):
    with pytest.raises(SetchainError):
        SetchainClient("c", scheme, quorum=0)


def test_client_add_get_and_commit_check_on_live_cluster(sim, network, scheme,
                                                         small_setchain_config,
                                                         ideal_ledger):
    cluster = build_servers("hashchain", sim, network, scheme, small_setchain_config,
                            ideal_ledger)
    client = SetchainClient("client-0", scheme, quorum=small_setchain_config.quorum)
    element = make_element("client-0", 120)
    assert client.add(cluster[0], element)
    assert client.added == [element]
    # Before anything reaches the ledger the element is uncommitted.
    early = client.check_commit(client.get(cluster[1]), element)
    assert not early.committed and early.epoch is None
    # Drive the simulation until commit through a *different* server.
    outcome = client.wait_for_commit(sim, cluster[1], element, max_time=60.0)
    assert outcome.committed
    assert outcome.valid_proofs >= small_setchain_config.quorum
    assert outcome.epoch is not None


def test_client_counts_only_valid_distinct_proofs(scheme):
    elements = [make_element("c", 10)]
    good = [create_epoch_proof(scheme, scheme.generate_keypair(f"s{i}"), 1, elements)
            for i in range(2)]
    # A forged proof from an unknown signer and a duplicate signer must not count.
    forged = type(good[0])(epoch_number=1, epoch_hash=good[0].epoch_hash,
                           signature=b"0" * 64, signer="s0")
    view = make_view(the_set=elements, history={1: elements}, epoch=1,
                     proofs=good + [forged])
    client = SetchainClient("c", scheme, quorum=3)
    assert client.count_valid_proofs(view, 1) == 2
    check = client.check_commit(view, elements[0])
    assert check.epoch == 1 and not check.committed


def test_client_commit_check_for_unknown_epoch(scheme):
    client = SetchainClient("c", scheme, quorum=2)
    view = make_view()
    assert client.count_valid_proofs(view, 1) == 0
    assert not client.check_commit(view, make_element("c", 10)).committed
