"""Tests for the CometBFT-style consensus engine."""

import pytest

from repro.config import LedgerConfig
from repro.errors import ConsensusError
from repro.ledger.abci import Application
from repro.ledger.cometbft.consensus import ConsensusState, Vote, VoteType, block_id_for
from repro.ledger.cometbft.engine import CometBFTNetwork
from repro.ledger.cometbft.validator import ValidatorSet
from repro.ledger.types import Block, new_transaction
from repro.net.latency import ConstantLatency
from repro.net.network import Network
from repro.sim.scheduler import Simulator


class RecordingApp(Application):
    def __init__(self):
        self.blocks: list[Block] = []

    def finalize_block(self, block: Block) -> None:
        self.blocks.append(block)


def make_cluster(n=4, block_rate=2.0, block_size=100_000, seed=0):
    sim = Simulator(seed=seed)
    network = Network(sim, latency=ConstantLatency(base=0.002))
    config = LedgerConfig(block_size_bytes=block_size, block_rate=block_rate)
    cluster = CometBFTNetwork(sim, network, n, config)
    apps = []
    for node in cluster.node_list():
        app = RecordingApp()
        node.subscribe(app)
        apps.append(app)
    cluster.start()
    return sim, cluster, apps


# -- validator set -----------------------------------------------------------------

def test_validator_set_quorum_math():
    vs = ValidatorSet([f"v{i}" for i in range(4)])
    assert vs.max_faulty == 1 and vs.quorum == 3
    vs10 = ValidatorSet([f"v{i}" for i in range(10)])
    assert vs10.max_faulty == 3 and vs10.quorum == 7


def test_validator_proposer_rotates_round_robin():
    vs = ValidatorSet(["a", "b", "c"])
    assert [vs.proposer(h) for h in (1, 2, 3, 4)] == ["a", "b", "c", "a"]
    assert vs.proposer(1, round_=1) == "b"


def test_validator_set_rejects_bad_input():
    with pytest.raises(ConsensusError):
        ValidatorSet([])
    with pytest.raises(ConsensusError):
        ValidatorSet(["a", "a"])
    with pytest.raises(ConsensusError):
        ValidatorSet(["a"]).proposer(0)


# -- consensus bookkeeping --------------------------------------------------------------

def test_block_id_depends_on_content():
    t1, t2 = new_transaction("a", 1, "v"), new_transaction("b", 1, "v")
    assert block_id_for(1, (t1,), "v") != block_id_for(1, (t2,), "v")
    assert block_id_for(1, (t1,), "v") != block_id_for(2, (t1,), "v")


def test_consensus_state_vote_counting():
    state = ConsensusState(height=3)
    for voter in ("a", "b", "a"):
        count = state.record_vote(Vote(height=3, round=0, voter=voter,
                                       vote_type=VoteType.PREVOTE, block_id="x"))
    assert count == 2  # duplicate voter not double-counted
    assert state.count(0, VoteType.PREVOTE, "x") == 2
    assert state.count(0, VoteType.PRECOMMIT, "x") == 0
    with pytest.raises(ConsensusError):
        state.record_vote(Vote(height=4, round=0, voter="a",
                               vote_type=VoteType.PREVOTE, block_id="x"))


# -- engine behaviour ---------------------------------------------------------------------

def test_appended_transaction_commits_on_every_node():
    sim, cluster, apps = make_cluster(n=4)
    node = cluster.node_list()[0]
    tx = new_transaction("payload", 200, node.name)
    node.append(tx)
    sim.run_until(5.0)
    for app in apps:
        assert any(t.tx_id == tx.tx_id for block in app.blocks for t in block)


def test_all_nodes_commit_same_blocks_in_same_order():
    sim, cluster, apps = make_cluster(n=4)
    nodes = cluster.node_list()
    for i in range(20):
        nodes[i % 4].append(new_transaction(f"tx{i}", 100, nodes[i % 4].name))
    sim.run_until(15.0)
    reference = [[t.tx_id for t in block] for block in apps[0].blocks]
    assert len(reference) >= 1
    for app in apps[1:]:
        assert [[t.tx_id for t in block] for block in app.blocks] == reference


def test_block_rate_is_respected_under_load():
    sim, cluster, apps = make_cluster(n=4, block_rate=2.0)
    nodes = cluster.node_list()
    # Keep the mempool non-empty for 10 seconds.
    for i in range(100):
        sim.call_at(i * 0.1, lambda i=i: nodes[i % 4].append(
            new_transaction(f"tx{i}", 100, nodes[i % 4].name)))
    sim.run_until(10.0)
    blocks = len(apps[0].blocks)
    # Target is one block every 0.5 s; consensus latency makes it slightly slower.
    assert 10 <= blocks <= 21


def test_block_size_cap_limits_block_bytes():
    sim, cluster, apps = make_cluster(n=4, block_size=1_000)
    node = cluster.node_list()[0]
    for _ in range(10):
        node.append(new_transaction("x", 400, node.name))
    sim.run_until(10.0)
    assert all(block.size_bytes <= 1_000 for app in apps for block in app.blocks)
    total = sum(len(block) for block in apps[0].blocks)
    assert total == 10


def test_gossip_fills_all_mempools():
    sim, cluster, _ = make_cluster(n=4, block_rate=0.1)  # slow blocks
    nodes = cluster.node_list()
    tx = new_transaction("gossip-me", 100, nodes[0].name)
    nodes[0].append(tx)
    sim.run_until(1.0)
    assert all(tx.tx_id in node.mempool or tx.tx_id in node.inclusion_height
               for node in nodes)


def test_mempool_arrival_times_recorded_for_latency_stages():
    sim, cluster, _ = make_cluster(n=4)
    nodes = cluster.node_list()
    tx = new_transaction("measure", 100, nodes[0].name)
    nodes[0].append(tx)
    sim.run_until(5.0)
    times = [node.mempool.arrival_times.get(tx.tx_id) for node in nodes]
    assert all(t is not None for t in times)
    assert times[0] <= min(t for t in times[1:])


def test_crash_fault_minority_does_not_stop_progress():
    sim, cluster, apps = make_cluster(n=4)
    nodes = cluster.node_list()
    nodes[3].crash()
    for i in range(10):
        nodes[i % 3].append(new_transaction(f"tx{i}", 100, nodes[i % 3].name))
    sim.run_until(30.0)
    live_apps = apps[:3]
    committed = [sum(len(b) for b in app.blocks) for app in live_apps]
    assert all(c == 10 for c in committed)
    assert cluster.min_committed_height() >= 1


def test_subscribe_twice_rejected():
    sim, cluster, apps = make_cluster(n=4)
    node = cluster.node_list()[0]
    with pytest.raises(ConsensusError):
        node.subscribe(RecordingApp())
