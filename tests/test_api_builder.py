"""ScenarioBuilder: fluent construction, validation, did-you-mean errors."""

import pytest

from repro.api import Scenario, ScenarioBuilder
from repro.config import ExperimentConfig, base_scenario
from repro.errors import ConfigurationError


def test_fluent_chain_builds_expected_config():
    config = (Scenario.hashchain()
              .rate(10_000).servers(10).collector(100)
              .delay_ms(30).byzantine(f=2).build())
    assert isinstance(config, ExperimentConfig)
    assert config.algorithm == "hashchain"
    assert config.workload.sending_rate == 10_000
    assert config.setchain.n_servers == 10
    assert config.setchain.collector_limit == 100
    assert config.setchain.f == 2
    assert config.ledger.network_delay == pytest.approx(0.030)


def test_algorithm_classmethods_cover_all_variants():
    assert Scenario.vanilla().build().algorithm == "vanilla"
    assert Scenario.compresschain().build().algorithm == "compresschain"
    assert Scenario.hashchain().build().algorithm == "hashchain"
    assert Scenario.hashchain_light().build().algorithm == "hashchain-light"
    assert Scenario.compresschain_light().build().algorithm == "compresschain-light"


def test_unknown_algorithm_suggests_closest():
    with pytest.raises(ConfigurationError, match="did you mean 'hashchain'"):
        Scenario("hashchian")


def test_builders_are_immutable():
    base = Scenario.hashchain().rate(1_000)
    fast = base.rate(50_000)
    assert base.build().workload.sending_rate == 1_000
    assert fast.build().workload.sending_rate == 50_000


def test_layer_override_typo_gets_did_you_mean():
    with pytest.raises(ConfigurationError, match="collector_limit"):
        Scenario.hashchain().setchain(colector_limit=5)
    with pytest.raises(ConfigurationError, match="block_size_bytes"):
        Scenario.hashchain().ledger(block_size=1)
    with pytest.raises(ConfigurationError, match="sending_rate"):
        Scenario.hashchain().workload(sending_rte=1)


def test_method_typo_gets_did_you_mean():
    with pytest.raises(AttributeError, match="'collector'"):
        Scenario.hashchain().colector(5)


def test_ledger_override_rejects_ambiguous_network_delay():
    # Milliseconds in the legacy shim vs seconds in LedgerConfig: refuse the
    # raw field and point at delay_ms().
    with pytest.raises(ConfigurationError, match="delay_ms"):
        Scenario.hashchain().ledger(network_delay=30)


def test_layer_overrides_reach_the_config():
    config = (Scenario.compresschain()
              .setchain(collector_timeout=2.5)
              .ledger(block_rate=1.6)
              .workload(element_size_std=10.0)
              .build())
    assert config.setchain.collector_timeout == 2.5
    assert config.ledger.block_rate == 1.6
    assert config.workload.element_size_std == 10.0


def test_invalid_values_rejected_at_build_time():
    with pytest.raises(ConfigurationError):
        Scenario.hashchain().servers(4).byzantine(f=2).build()  # needs f < n/2
    with pytest.raises(ConfigurationError):
        Scenario.hashchain().rate(-5).build()
    with pytest.raises(ConfigurationError):
        Scenario.hashchain().delay_ms(-1)


def test_backend_validation():
    assert Scenario.hashchain().backend("ideal").build().ledger_backend == "ideal"
    with pytest.raises(ConfigurationError, match="ideal"):
        Scenario.hashchain().backend("idael")


def test_auto_label_matches_legacy_format():
    config = Scenario.hashchain().rate(5_000).collector(500).servers(7).build()
    assert config.label == "hashchain rate=5000 c=500 n=7"


def test_from_config_round_trips():
    original = (Scenario.compresschain().rate(2_500).servers(7).collector(500)
                .delay_ms(100).byzantine(f=3).backend("ideal")
                .label("round-trip").build())
    rebuilt = ScenarioBuilder.from_config(original).build()
    assert rebuilt == original


def test_base_scenario_shim_matches_builder():
    via_shim = base_scenario("hashchain", sending_rate=5_000, collector_limit=500,
                             n_servers=7, network_delay_ms=30)
    via_builder = (Scenario.hashchain().rate(5_000).collector(500)
                   .servers(7).delay_ms(30).build())
    assert via_shim == via_builder


def test_base_scenario_accepts_both_delay_spellings():
    a = base_scenario("vanilla", network_delay_ms=30)
    b = base_scenario("vanilla", network_delay=30)
    assert a.ledger.network_delay == b.ledger.network_delay == pytest.approx(0.030)
    with pytest.raises(ConfigurationError, match="not both"):
        base_scenario("vanilla", network_delay=30, network_delay_ms=100)


def test_base_scenario_still_rejects_unknown_overrides():
    with pytest.raises(ConfigurationError, match="bogus"):
        base_scenario("vanilla", bogus=1)
