"""PR 2 fast paths: event-queue compaction, crypto caches, collector views,
multicast, and the bench/parallel harness determinism guarantees."""

import json

import pytest

from repro.api.parallel import RunSpec, default_jobs, run_specs
from repro.bench import (
    BENCH_SMOKE,
    BenchCase,
    compare_benches,
    load_bench,
    run_case,
    write_bench,
)
from repro.bench.__main__ import main as bench_main
from repro.core.collector import Collector
from repro.core.types import EpochProof, HashBatch
from repro.crypto import ed25519
from repro.crypto.keys import PublicKeyInfrastructure
from repro.crypto.signatures import SimulatedScheme
from repro.errors import ConfigurationError, NetworkError
from repro.net.network import Network
from repro.net.node import NetworkNode
from repro.sim.events import EventQueue
from repro.sim.scheduler import Simulator
from repro.workload.elements import make_element


# -- event queue --------------------------------------------------------------

def test_cancel_10k_events_compacts_and_len_stays_o1():
    queue = EventQueue()
    events = [queue.push(float(i + 1), lambda: None) for i in range(10_000)]
    keeper = queue.push(20_000.0, lambda: None)
    for event in events:
        event.cancel()
    # O(1) live count, and lazy compaction has shed the cancelled entries
    # instead of letting the heap carry 10k tombstones.
    assert len(queue) == 1
    assert len(queue._heap) < 200
    assert queue.peek_time() == 20_000.0
    assert queue.pop() is keeper


def test_pop_due_respects_horizon_and_order():
    queue = EventQueue()
    queue.push(2.0, lambda: None)
    early = queue.push(1.0, lambda: None)
    assert queue.pop_due(0.5) is None
    assert queue.pop_due(1.0) is early
    assert queue.pop_due(10.0).time == 2.0
    assert queue.pop_due(10.0) is None


def test_pop_due_skips_cancelled_events():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    second = queue.push(2.0, lambda: None)
    first.cancel()
    assert queue.pop_due(5.0) is second


def test_cancel_after_pop_is_harmless():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert queue.pop() is event
    event.cancel()  # already executed/popped: must not corrupt the counter
    assert len(queue) == 0
    queue.push(2.0, lambda: None)
    assert len(queue) == 1


def test_fused_run_loop_matches_event_order():
    sim = Simulator()
    order = []
    sim.call_at(2.0, lambda: order.append("late"))
    sim.call_at(1.0, lambda: order.append("early"), priority=5)
    sim.call_at(1.0, lambda: order.append("first"), priority=0)
    sim.run_until(5.0)
    assert order == ["first", "early", "late"]
    assert sim.pending_events() == 0


# -- crypto -------------------------------------------------------------------

def test_windowed_base_mul_matches_generic_double_and_add():
    for scalar in (0, 1, 2, 15, 16, 17, ed25519._q - 1, 2**254 + 12345):
        assert ed25519._point_equal(ed25519._point_mul_base(scalar),
                                    ed25519._point_mul(scalar, ed25519._G))


def test_point_double_matches_point_add():
    point = ed25519._G
    for _ in range(8):
        assert ed25519._point_equal(ed25519._point_double(point),
                                    ed25519._point_add(point, point))
        point = ed25519._point_add(point, ed25519._G)


def test_verify_cache_only_keeps_positives(monkeypatch):
    scheme = SimulatedScheme(PublicKeyInfrastructure())
    keypair = scheme.generate_keypair("server-0")
    signature = scheme.sign(keypair, "payload")
    assert scheme.verify("server-0", "payload", signature)
    # A cached positive is served without re-running the backend.
    monkeypatch.setattr(SimulatedScheme, "_verify",
                        lambda self, owner, message, sig: pytest.fail(
                            "cached verification re-ran the backend"))
    assert scheme.verify("server-0", "payload", signature)


def test_verify_failures_are_not_cached():
    scheme = SimulatedScheme(PublicKeyInfrastructure())
    keypair = scheme.generate_keypair("server-0")
    good = scheme.sign(keypair, "payload")
    forged = bytes(64)
    assert not scheme.verify("server-0", "payload", forged)
    assert not scheme.verify("server-0", "payload", forged)
    assert ("server-0", "payload", forged) not in scheme._verified
    assert scheme.verify("server-0", "payload", good)


def test_canonical_bytes_are_cached_and_stable():
    element = make_element("client-1", 120)
    assert element.canonical_bytes() is element.canonical_bytes()
    proof = EpochProof(epoch_number=3, epoch_hash="ab", signature=b"\x01",
                       signer="s0")
    assert proof.canonical_bytes() == (
        b"proof|3|ab|s0|01")
    hb = HashBatch(batch_hash="cd", signature=b"\x02", signer="s1")
    assert hb.canonical_bytes() == b"hash-batch|cd|s1|02"
    # Equality/hash semantics ignore the cache field.
    assert hb == HashBatch(batch_hash="cd", signature=b"\x02", signer="s1")
    assert hash(proof) == hash(EpochProof(epoch_number=3, epoch_hash="ab",
                                          signature=b"\x01", signer="s0"))


# -- collector ----------------------------------------------------------------

def test_pending_view_is_zero_copy_and_pending_is_a_snapshot():
    sim = Simulator()
    flushed = []
    collector = Collector(sim, limit=10, timeout=1.0, on_flush=flushed.append)
    collector.add("a")
    view = collector.pending_view()
    snapshot = collector.pending
    collector.add("b")
    assert list(view) == ["a", "b"]      # live view follows the buffer
    assert snapshot == ("a",)            # snapshot does not
    assert collector.pending_view() is view


def test_flush_hands_over_an_immutable_tuple():
    sim = Simulator()
    flushed = []
    collector = Collector(sim, limit=2, timeout=1.0, on_flush=flushed.append)
    collector.add("a")
    collector.add("b")
    assert flushed == [("a", "b")]
    assert isinstance(flushed[0], tuple)


# -- network multicast --------------------------------------------------------

class _Sink(NetworkNode):
    def __init__(self, name, sim):
        super().__init__(name, sim)
        self.seen = []
        self.on("ping", lambda m: self.seen.append(m))


def _mesh(n):
    sim = Simulator(seed=1)
    network = Network(sim)
    nodes = [_Sink(f"n{i}", sim) for i in range(n)]
    for node in nodes:
        network.register(node)
    return sim, network, nodes


def test_broadcast_shares_one_payload_object():
    sim, network, nodes = _mesh(4)
    payload = {"k": "v"}
    nodes[0].broadcast("ping", payload, size_bytes=10)
    sim.run_until_idle()
    received = [m for node in nodes[1:] for m in node.seen]
    assert len(received) == 3
    assert all(m.payload is payload for m in received)
    assert not nodes[0].seen
    assert nodes[0].messages_sent == 3
    assert nodes[0].bytes_sent == 30


def test_broadcast_include_self_delivers_locally():
    sim, network, nodes = _mesh(3)
    nodes[0].broadcast("ping", "x", include_self=True)
    sim.run_until_idle()
    assert len(nodes[0].seen) == 1
    assert all(len(node.seen) == 1 for node in nodes)


def test_multicast_respects_drop_rules_and_partitions():
    sim, network, nodes = _mesh(4)
    network.add_drop_rule(lambda m: m.recipient == "n2")
    network.partition({"n0"}, {"n3"})
    nodes[0].broadcast("ping", "x")
    sim.run_until_idle()
    assert len(nodes[1].seen) == 1
    assert not nodes[2].seen and not nodes[3].seen
    assert network.messages_dropped == 2


def test_multicast_unknown_recipient_raises():
    sim, network, nodes = _mesh(2)
    with pytest.raises(NetworkError):
        network.multicast("n0", "ping", "x", recipients=["ghost"])


# -- bench harness ------------------------------------------------------------

def test_run_case_produces_the_bench_schema():
    record = run_case(BenchCase("smoke", seed=7))
    assert record.scenario == "smoke" and record.seed == 7
    assert record.wall_s > 0
    assert record.events_per_s > 0 and record.elements_per_s > 0


def test_bench_artifact_roundtrip_and_compare(tmp_path):
    from repro.bench import BenchRecord
    before = [BenchRecord("s", 1, 2.0, 100.0, 10.0)]
    after = [BenchRecord("s", 1, 0.5, 400.0, 40.0)]
    b_path = write_bench(before, tmp_path / "before.json", label="b")
    a_path = write_bench(after, tmp_path / "after.json", label="a")
    merged = compare_benches(load_bench(b_path), load_bench(a_path))
    assert merged["speedup"] == {"s": pytest.approx(4.0)}
    assert merged["overall_wall_speedup"] == pytest.approx(4.0)
    assert merged["before"]["label"] == "b"


def test_load_bench_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    with pytest.raises(ConfigurationError):
        load_bench(bad)
    bad.write_text("not json")
    with pytest.raises(ConfigurationError):
        load_bench(bad)


def test_bench_cli_run_and_compare(tmp_path, capsys):
    out = tmp_path / "b.json"
    assert bench_main(["run", "--contains", "vanilla", "--out", str(out)]) == 0
    data = json.loads(out.read_text())
    assert [r["scenario"] for r in data["results"]] == ["bench/vanilla"]
    assert data["set"] == "bench-smoke/partial"  # filtered != the pinned set
    merged = tmp_path / "merged.json"
    assert bench_main(["compare", str(out), str(out),
                       "--out", str(merged)]) == 0
    assert json.loads(merged.read_text())["overall_wall_speedup"] == 1.0
    assert bench_main(["run", "--contains", "no-such-case"]) == 1


def test_bench_smoke_set_is_pinned():
    # The trajectory in BENCH_*.json is only comparable across PRs if the
    # set stays frozen; changing it must be a conscious decision.
    assert [(c.scenario, c.seed) for c in BENCH_SMOKE] == [
        ("bench/hashchain-base", 1101),
        ("bench/hashchain-heavy", 1102),
        ("bench/compresschain", 1103),
        ("bench/vanilla", 1104),
        ("bench/hashchain-ed25519", 1105),
    ]


# -- parallel sweep determinism ----------------------------------------------

def test_same_seed_same_json_regardless_of_jobs():
    specs = [RunSpec(name="smoke", seed=11),
             RunSpec(name="quickstart", seed=12),
             RunSpec(name="bench/vanilla", seed=13)]
    serial = [result.to_json() for result in run_specs(specs, jobs=1)]
    parallel = [result.to_json() for result in run_specs(specs, jobs=4)]
    assert serial == parallel


def test_run_specs_order_is_input_order():
    specs = [RunSpec(name="quickstart", seed=1), RunSpec(name="smoke", seed=1)]
    results = run_specs(specs, jobs=2)
    assert [r.label for r in results] == ["quickstart", "smoke"]


def test_default_jobs_is_positive():
    assert default_jobs() >= 1


def test_cli_sweep_jobs_matches_serial(tmp_path):
    from repro.api.cli import main
    serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
    assert main(["sweep", "--tag", "demo", "--out", str(serial_dir),
                 "--quiet", "--seed", "5"]) == 0
    assert main(["sweep", "--tag", "demo", "--out", str(parallel_dir),
                 "--quiet", "--seed", "5", "--jobs", "4"]) == 0
    serial_files = sorted(p.name for p in serial_dir.glob("*.json"))
    assert serial_files == sorted(p.name for p in parallel_dir.glob("*.json"))
    for name in serial_files:
        assert (serial_dir / name).read_bytes() == (parallel_dir / name).read_bytes()
