"""Session: incremental control, mid-run inspection, manual injection."""

import pytest

from repro.api import RunResult, Scenario, Session
from repro.errors import ConfigurationError, SetchainError, SimulationError


def tiny_scenario():
    return (Scenario.hashchain().servers(4).rate(100).collector(10)
            .inject_for(5).drain(30).backend("ideal").label("session-test"))


def test_session_requires_start():
    session = tiny_scenario().session()
    assert not session.started
    with pytest.raises(SimulationError, match="not started"):
        session.run_for(1.0)
    with pytest.raises(SimulationError, match="not started"):
        session.inject()


def test_context_manager_starts_and_double_start_rejected():
    with tiny_scenario().session() as session:
        assert session.started
        with pytest.raises(SimulationError, match="already started"):
            session.start()


def test_incremental_time_control():
    with tiny_scenario().session() as session:
        assert session.now == 0.0
        session.run_for(2.0)
        assert session.now == pytest.approx(2.0)
        session.run_until(3.5)
        assert session.now == pytest.approx(3.5)
        assert session.step() is True  # events are pending mid-run
        with pytest.raises(ConfigurationError):
            session.run_for(-1.0)


def test_mid_run_views_and_backlog():
    with tiny_scenario().session() as session:
        session.run_for(4.0)
        views = session.views()
        assert set(views) == {f"server-{i}" for i in range(4)}
        assert session.view(0) == session.view("server-0")
        with pytest.raises(ConfigurationError, match="no server"):
            session.view("server-99")
        backlog = session.backlog()
        assert set(backlog) == set(views)
        assert all(isinstance(v, int) for v in backlog.values())
        assert session.injected_count > 0


def test_manual_injection_commits():
    with tiny_scenario().session() as session:
        session.run_for(1.0)
        before = session.injected_count
        element = session.inject(size_bytes=400, client="manual")
        assert session.injected_count == before + 1
        assert element.client == "manual"
        session.run_to_completion()
        assert session.committed_count == session.injected_count
        assert session.committed_fraction == 1.0
        assert session.check_properties() == []
        with pytest.raises(ConfigurationError, match="out of range"):
            session.inject(server=99)


def test_rejected_injection_is_not_counted():
    with tiny_scenario().session() as session:
        session.run_for(1.0)
        element = session.inject()
        before = session.injected_count
        with pytest.raises(SetchainError, match="rejected"):
            session.inject(element=element)  # duplicate add
        assert session.injected_count == before
        session.run_to_completion()
        assert session.committed_count == session.injected_count


def test_run_to_completion_after_passing_the_horizon():
    # run_for past the configured horizon must not break run()/run_to_completion.
    with tiny_scenario().session() as session:
        session.run_for(session.config.total_duration + 5.0)
        session.run_to_completion()
        assert session.committed_count == session.injected_count > 0


def test_session_accepts_registry_name_and_scale():
    with Session("smoke") as session:
        session.run()
        assert session.committed_count > 0
    scaled = Session("base", scale=100.0)
    assert scaled.config.workload.sending_rate == pytest.approx(100.0)


def test_session_result_is_serialisable():
    with tiny_scenario().session() as session:
        session.run()
        result = session.result()
    assert isinstance(result, RunResult)
    assert result.label == "session-test"
    assert RunResult.from_dict(result.to_dict()) == result


def test_session_rejects_unbuildable_input():
    with pytest.raises(ConfigurationError, match="cannot build a session"):
        Session(3.14)  # type: ignore[arg-type]
