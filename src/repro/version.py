"""Package version, kept separate so substrates can import it without cycles."""

__version__ = "1.0.0"
