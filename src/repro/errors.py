"""Exception hierarchy shared across the Setchain reproduction.

Every subsystem raises subclasses of :class:`ReproError` so callers can catch
library failures without also swallowing programming errors.
"""

from __future__ import annotations

import difflib


def did_you_mean(unknown: str, candidates: list[str]) -> str:
    """Error-message suffix naming the closest valid spellings.

    Shared by every name-lookup surface (scenario registry, builder methods,
    topology plugin registries) so lookup failures read the same everywhere.
    """
    close = difflib.get_close_matches(unknown, candidates, n=3, cutoff=0.5)
    if close:
        return f"; did you mean {' or '.join(repr(c) for c in close)}?"
    shown = sorted(candidates)
    if len(shown) > 10:
        return (f"; valid names include {', '.join(shown[:10])}, "
                f"… ({len(shown)} total)")
    return f"; valid names: {', '.join(shown)}"


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent with another."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly (e.g. time going backwards)."""


class NetworkError(ReproError):
    """A network-level failure: unknown destination, closed channel, oversized message."""


class CryptoError(ReproError):
    """Signature/verification failure or malformed key material."""


class InvalidSignatureError(CryptoError):
    """A signature did not verify against the claimed signer's public key."""


class LedgerError(ReproError):
    """Block-based ledger misuse: invalid transaction, unknown subscriber, etc."""


class MempoolFullError(LedgerError):
    """The mempool rejected a transaction because a count or byte cap was reached."""


class ConsensusError(LedgerError):
    """The BFT consensus engine reached an inconsistent state."""


class SetchainError(ReproError):
    """Setchain-level protocol violation (invalid element, duplicate add, bad proof)."""


class InvalidElementError(SetchainError):
    """An element failed ``valid_element`` validation."""


class DuplicateElementError(SetchainError):
    """An element was added twice to the same server."""


class BatchUnavailableError(SetchainError):
    """Hashchain could not recover the batch behind a hash (hash-reversal failed)."""


class PropertyViolation(ReproError):
    """One of the Setchain correctness properties (1-8) was observed to fail."""

    def __init__(self, property_name: str, detail: str) -> None:
        super().__init__(f"{property_name}: {detail}")
        self.property_name = property_name
        self.detail = detail
