"""repro — a reproduction of *Setchain Algorithms for Blockchain Scalability* (IPPS 2025).

The package implements the paper's three Setchain algorithms (Vanilla,
Compresschain, Hashchain) with epoch-proofs on top of a simulated
CometBFT-style block-based ledger, plus every substrate they need (discrete-
event simulation, network, crypto, mempool/consensus, compression, workload)
and the full evaluation harness.

Quick start::

    from repro import base_scenario, run_scenario

    result = run_scenario(base_scenario("hashchain", sending_rate=500,
                                        injection_duration=10), scale=1)
    print(result.avg_throughput_50s, result.efficiency.at_100)
"""

from .version import __version__
from .config import (
    ExperimentConfig,
    LedgerConfig,
    SetchainConfig,
    WorkloadConfig,
    base_scenario,
)
from .core import (
    BaseSetchainServer,
    CompresschainServer,
    HashchainServer,
    SetchainClient,
    SetchainView,
    VanillaServer,
    build_deployment,
    run_experiment,
)
from .experiments.runner import ExperimentResult, run_scenario, scaled_config

__all__ = [
    "__version__",
    "ExperimentConfig",
    "LedgerConfig",
    "SetchainConfig",
    "WorkloadConfig",
    "base_scenario",
    "BaseSetchainServer",
    "VanillaServer",
    "CompresschainServer",
    "HashchainServer",
    "SetchainClient",
    "SetchainView",
    "build_deployment",
    "run_experiment",
    "ExperimentResult",
    "run_scenario",
    "scaled_config",
]
