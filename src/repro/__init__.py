"""repro — a reproduction of *Setchain Algorithms for Blockchain Scalability* (IPPS 2025).

The package implements the paper's three Setchain algorithms (Vanilla,
Compresschain, Hashchain) with epoch-proofs on top of a simulated
CometBFT-style block-based ledger, plus every substrate they need (discrete-
event simulation, network, crypto, mempool/consensus, compression, workload)
and the full evaluation harness.

The public face is the :mod:`repro.api` subsystem — a typed scenario
builder, a named-scenario registry, interactive sessions, and serialisable
results::

    from repro import Scenario, run

    result = run(Scenario.hashchain().rate(500).inject_for(10))
    print(result.avg_throughput_50s, result.efficiency["100s"])
    result.save("hashchain.json")          # exact JSON round-trip

    run("figure4/hashchain", scale=50)     # any registered scenario by name

Interactive control of a deployment (step time, inject, inspect views)::

    from repro import Session

    with Session("quickstart") as session:
        session.run_for(10.0)
        print(session.backlog(), session.committed_fraction)

The same registry backs the command line: ``python -m repro list-scenarios``,
``run``, ``sweep``, and ``report``.  The historic ``base_scenario(**kwargs)``
and ``run_scenario(...)`` entry points remain as thin shims over the builder
and runner.
"""

from .version import __version__
from .config import (
    ExperimentConfig,
    LedgerConfig,
    RegionSpec,
    SetchainConfig,
    TopologyConfig,
    WorkloadConfig,
    base_scenario,
)
from .topology import (
    register_algorithm,
    register_latency_profile,
    register_ledger_backend,
)
from .core import (
    BaseSetchainServer,
    ByzantineBehaviour,
    CompresschainServer,
    HashchainServer,
    SetchainClient,
    SetchainView,
    VanillaServer,
    build_deployment,
    register_behaviour,
    run_experiment,
)
from .experiments.runner import ExperimentResult, run_scenario, scaled_config
from .api import (
    RunResult,
    Scenario,
    ScenarioBuilder,
    Session,
    get_scenario,
    register_scenario,
    run,
    scenario_names,
)

__all__ = [
    "__version__",
    # configuration
    "ExperimentConfig",
    "LedgerConfig",
    "SetchainConfig",
    "WorkloadConfig",
    "RegionSpec",
    "TopologyConfig",
    "base_scenario",
    # topology registries
    "register_algorithm",
    "register_ledger_backend",
    "register_latency_profile",
    # public experiment API
    "Scenario",
    "ScenarioBuilder",
    "Session",
    "RunResult",
    "run",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    # core system
    "BaseSetchainServer",
    "ByzantineBehaviour",
    "register_behaviour",
    "VanillaServer",
    "CompresschainServer",
    "HashchainServer",
    "SetchainClient",
    "SetchainView",
    "build_deployment",
    "run_experiment",
    # batch runner (legacy entry points)
    "ExperimentResult",
    "run_scenario",
    "scaled_config",
]
