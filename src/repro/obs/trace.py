"""Element-lifecycle tracing over simulated time.

A :class:`Tracer` hangs off the :class:`~repro.analysis.metrics.MetricsCollector`
(and the :class:`~repro.core.deployment.Deployment` for fault/membership
annotations) and records phase transitions as they are observed::

    injected → collector_queued → flushed → signed → in_ledger
             → epoch_assigned → committed

Design constraints, in order:

* **Zero cost when absent.**  Every hot-path hook is a single
  ``if self.tracer is not None:`` check; no tracer, no work, and the PR 3-8
  golden artifacts stay byte-identical.
* **Deterministic.**  All timestamps are simulated seconds; the sampling
  policy draws from a dedicated stream derived with
  ``derive_seed(seed, "trace")`` and never touches ``sim.rng``, so enabling
  tracing cannot perturb a run, and the same ``(scenario, seed,
  trace_sample)`` always produces byte-identical trace files — including
  across ``sweep --jobs 1`` vs ``--jobs 4`` worker processes.
* **Batch-aware.**  The ``*_many`` recording paths take one timeline event
  per call plus one dict probe per element, so million-element runs stay
  within the tracing overhead budget; per-element state is bounded by the
  sampling rate.

Two kinds of data accumulate:

* **timeline events** — ``(ts_us, track, name, count)`` tuples, one per
  recording call, placed on a track per server plus the synthetic
  ``collector`` (injection side) and ``ledger`` tracks.  These become the
  Chrome ``trace_event`` / JSONL exports (:mod:`repro.obs.export`).
* **element spans** — per *sampled* element, the first observation time of
  each phase.  These yield exact per-phase latency percentiles for
  ``RunResult.telemetry`` and ``repro report --phases``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from ..errors import ConfigurationError
from ..sim.rng import DeterministicRNG, derive_seed
from .registry import Registry, flush_size_summary, phase_percentiles

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.deployment import Deployment

#: Lifecycle phases in pipeline order.  ``injected`` is the epoch every
#: latency is measured from; the rest each carry a latency distribution.
PHASES: tuple[str, ...] = ("injected", "collector_queued", "flushed",
                           "signed", "in_ledger", "epoch_assigned",
                           "committed")

#: Synthetic track names (server tracks use the server's own name).
TRACK_COLLECTOR = "collector"
TRACK_LEDGER = "ledger"


def _us(t: float) -> int:
    """Simulated seconds -> integer microseconds (byte-stable in JSON)."""
    return int(round(t * 1e6))


class Tracer:
    """Deterministic lifecycle tracer; see the module docstring."""

    __slots__ = ("sample", "seed", "_rng", "_stamps", "events",
                 "phase_latencies", "registry", "sampled_elements",
                 "skipped_elements")

    def __init__(self, sample: float = 1.0, seed: int = 0) -> None:
        if not 0.0 < sample <= 1.0:
            raise ConfigurationError(
                f"trace_sample must be within (0, 1], got {sample!r}")
        self.sample = float(sample)
        self.seed = int(seed)
        # A dedicated derived stream: tracing must never consume sim.rng.
        self._rng = DeterministicRNG(derive_seed(self.seed, "trace"))
        #: element_id -> {phase: simulated time} for sampled elements only.
        self._stamps: dict[int, dict[str, float]] = {}
        #: Timeline: (ts_us, track, name, count) in observation order.
        self.events: list[tuple[int, str, str, int]] = []
        self.phase_latencies: dict[str, list[float]] = {
            phase: [] for phase in PHASES[1:]}
        self.registry = Registry()
        self.sampled_elements = 0
        self.skipped_elements = 0

    # -- recording (hot paths; callers gate on `if tracer is not None`) -------

    def injected(self, element_id: int, t: float) -> None:
        """One element injected (the Session.inject / service path)."""
        self.events.append((_us(t), TRACK_COLLECTOR, "injected", 1))
        if element_id in self._stamps:
            return
        if self.sample >= 1.0 or self._rng.random() < self.sample:
            self._stamps[element_id] = {"injected": t}
            self.sampled_elements += 1
        else:
            self.skipped_elements += 1

    def injected_many(self, element_ids: Sequence[int], t: float) -> None:
        """One injection tick: the sampling decision happens here, once per
        element, in injection order (deterministic across batching)."""
        self.events.append((_us(t), TRACK_COLLECTOR, "injected",
                            len(element_ids)))
        stamps = self._stamps
        if self.sample >= 1.0:
            fresh = 0
            for element_id in element_ids:
                if element_id not in stamps:
                    stamps[element_id] = {"injected": t}
                    fresh += 1
            self.sampled_elements += fresh
            return
        draw = self._rng.random
        sample = self.sample
        for element_id in element_ids:
            if element_id in stamps:
                continue
            if draw() < sample:
                stamps[element_id] = {"injected": t}
                self.sampled_elements += 1
            else:
                self.skipped_elements += 1

    def phase_many(self, element_ids: Sequence[int], phase: str, t: float,
                   track: str) -> None:
        """Record ``phase`` for a batch of elements at simulated time ``t``.

        Emits one timeline event on ``track`` and stamps every *sampled*
        element's first observation of the phase (latency measured from its
        injection).
        """
        self.events.append((_us(t), track, phase, len(element_ids)))
        stamps = self._stamps
        latencies = self.phase_latencies[phase]
        for element_id in element_ids:
            span = stamps.get(element_id)
            if span is not None and phase not in span:
                span[phase] = t
                latencies.append(t - span["injected"])

    def phase_one(self, element_id: int, phase: str, t: float,
                  track: str) -> None:
        """Scalar :meth:`phase_many` for per-element code paths."""
        self.events.append((_us(t), track, phase, 1))
        span = self._stamps.get(element_id)
        if span is not None and phase not in span:
            span[phase] = t
            self.phase_latencies[phase].append(t - span["injected"])

    def annotate(self, t: float, track: str, name: str) -> None:
        """A non-phase marker (fault, membership, byzantine) on a track."""
        self.events.append((_us(t), track, name, 0))

    # -- derived views --------------------------------------------------------

    def tracks(self) -> list[str]:
        """All track names observed so far, sorted (export tid order)."""
        return sorted({event[1] for event in self.events})

    def spans(self) -> dict[int, dict[str, float]]:
        """Per-sampled-element phase timestamps (read-only view)."""
        return self._stamps

    def phase_summary(self) -> dict[str, dict[str, Any]]:
        """count/p50/p95/p99/max per phase with at least one observation."""
        summary: dict[str, dict[str, Any]] = {}
        for phase in PHASES[1:]:
            latencies = self.phase_latencies[phase]
            if latencies:
                summary[phase] = phase_percentiles(sorted(latencies))
        return summary

    def telemetry_report(self,
                         deployment: "Deployment | None" = None) -> dict[str, Any]:
        """The ``RunResult.telemetry`` block (sorted keys, rounded floats).

        With a deployment, the always-on hot-seam counters (signature
        verify-cache, hashchain scan-cache, event queue, batch flush sizes)
        are snapshotted in; they are plain integer attributes maintained
        whether or not tracing is enabled, so reading them here costs the
        traced run nothing extra.
        """
        report: dict[str, Any] = {
            "sample": self.sample,
            "sampled_elements": self.sampled_elements,
            "skipped_elements": self.skipped_elements,
            "trace_events": len(self.events),
            "phases": self.phase_summary(),
        }
        if deployment is not None:
            scheme = deployment.scheme
            counters = {
                "verify_cache_hits": scheme.cache_hits,
                "verify_cache_misses": scheme.cache_misses,
                "verify_cache_evictions": scheme.cache_evictions,
                "scan_cache_hits": sum(
                    getattr(server, "scan_cache_hits", 0)
                    for server in deployment.servers),
                "events_executed": deployment.sim.events_executed,
                "events_pending": deployment.sim.pending_events(),
            }
            report["counters"] = counters
            flushes = flush_size_summary(deployment.metrics.batch_flushes)
            if flushes is not None:
                report["flush_sizes"] = flushes
        registry = self.registry.snapshot()
        if registry:
            report["registry"] = registry
        return report
