"""Observability: deterministic tracing, telemetry, and Prometheus export.

The subsystem has three pillars (see :mod:`repro.obs.trace` for the design
constraints — zero cost when disabled, deterministic, batch-aware):

* :class:`Tracer` — element-lifecycle spans over simulated time, enabled
  with ``ScenarioBuilder.trace(sample)`` / ``trace_sample=`` on the config
  or ``repro trace <scenario>`` on the CLI;
* :mod:`repro.obs.export` — Chrome ``trace_event`` and JSONL trace files;
* :class:`Registry` / :mod:`repro.obs.prom` — dependency-free counters,
  gauges, log-scale histograms, and the Prometheus text exposition served
  by ``GET /metrics?format=prometheus`` in service mode.
"""

from .export import (
    export_chrome,
    export_jsonl,
    validate_trace_file,
    write_trace,
)
from .prom import parse_exposition, render_snapshot
from .registry import Counter, Gauge, Histogram, Registry
from .trace import PHASES, TRACK_COLLECTOR, TRACK_LEDGER, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "PHASES",
    "Registry",
    "TRACK_COLLECTOR",
    "TRACK_LEDGER",
    "Tracer",
    "export_chrome",
    "export_jsonl",
    "parse_exposition",
    "render_snapshot",
    "validate_trace_file",
    "write_trace",
]
