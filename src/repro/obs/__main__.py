"""``python -m repro.obs`` — validate observability artifacts.

The tiny validator CLI behind ``make trace-smoke``:

* ``validate-trace PATH [--format auto|chrome|jsonl]`` — parse a trace file
  written by ``repro trace`` and check its structural schema;
* ``prom-smoke [--scenario service/smoke]`` — start an in-process service
  runtime with its HTTP endpoint, stream a little traffic, then validate the
  Prometheus exposition at ``/metrics?format=prometheus``, the JSON default
  at ``/metrics``, and the ``/healthz`` response headers.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from typing import Sequence

from ..errors import ConfigurationError, ReproError
from .export import validate_trace_file
from .prom import parse_exposition


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate trace files and Prometheus exposition output.")
    sub = parser.add_subparsers(dest="command", required=True)

    trace_p = sub.add_parser("validate-trace",
                             help="validate a trace file's schema")
    trace_p.add_argument("path", help="trace file written by `repro trace`")
    trace_p.add_argument("--format", choices=("auto", "chrome", "jsonl"),
                         default="auto", help="trace format (default: sniff)")
    trace_p.add_argument("--min-tracks", type=int, default=1,
                         help="fail below this many named tracks (default 1)")

    prom_p = sub.add_parser(
        "prom-smoke",
        help="end-to-end check of the service Prometheus endpoint")
    prom_p.add_argument("--scenario", default="service/smoke",
                        help="service scenario to run (default service/smoke)")
    prom_p.add_argument("--seed", type=int, default=7)
    prom_p.add_argument("--elements", type=int, default=200,
                        help="elements to stream before scraping (default 200)")
    prom_p.add_argument("--ticks", type=int, default=20,
                        help="service ticks to advance (default 20)")
    return parser


def _cmd_validate_trace(args: argparse.Namespace) -> int:
    stats = validate_trace_file(args.path, fmt=args.format)
    tracks = stats.get("tracks", [])
    if len(tracks) < args.min_tracks:
        print(f"error: {args.path}: {len(tracks)} named tracks, "
              f"expected at least {args.min_tracks}", file=sys.stderr)
        return 1
    print(f"{args.path}: valid {stats['format']} trace — "
          f"{stats['events']} events on {len(tracks)} tracks "
          f"({', '.join(tracks)})")
    return 0


def _fetch(url: str) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(url)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:  # 4xx/5xx still carry a body
        return error.code, dict(error.headers), error.read()


def _cmd_prom_smoke(args: argparse.Namespace) -> int:
    from ..service.http import MetricsEndpoint
    from ..service.runtime import ServiceRuntime

    failures: list[str] = []
    with ServiceRuntime(args.scenario, seed=args.seed) as runtime:
        runtime.submit_many(args.elements)
        for _ in range(args.ticks):
            runtime.tick()
        with MetricsEndpoint(runtime) as endpoint:
            # 1. Prometheus exposition parses and carries the core families.
            status, headers, body = _fetch(
                endpoint.url + "/metrics?format=prometheus")
            if status != 200:
                failures.append(f"/metrics?format=prometheus returned {status}")
            if not headers.get("Content-Type", "").startswith("text/plain"):
                failures.append("prometheus reply is not text/plain")
            try:
                metrics = parse_exposition(body.decode())
            except ConfigurationError as error:
                failures.append(f"exposition invalid: {error}")
                metrics = {}
            for family in ("repro_injected_total", "repro_committed_total",
                           "repro_ingress_total", "repro_server_backlog"):
                if family not in metrics:
                    failures.append(f"exposition missing {family}")
            # 2. The JSON default is unchanged.
            status, headers, body = _fetch(endpoint.url + "/metrics")
            if status != 200 or not headers.get("Content-Type", "").startswith(
                    "application/json"):
                failures.append("/metrics JSON default broken")
            else:
                snapshot = json.loads(body)
                if snapshot.get("injected", 0) <= 0:
                    failures.append("JSON snapshot shows no injected elements")
            # 3. healthz carries the caching headers (and Retry-After on 503).
            status, headers, body = _fetch(endpoint.url + "/healthz")
            if headers.get("Cache-Control") != "no-store":
                failures.append("/healthz missing Cache-Control: no-store")
            if status == 503 and "Retry-After" not in headers:
                failures.append("/healthz 503 without Retry-After")
            if status == 200 and json.loads(body).get("status") != "ok":
                failures.append("/healthz 200 but status != ok")
    if failures:
        for failure in failures:
            print(f"error: {failure}", file=sys.stderr)
        return 1
    print(f"prom-smoke ok: {args.scenario} exposition valid "
          f"({len(metrics)} metric families)")
    return 0


_COMMANDS = {"validate-trace": _cmd_validate_trace,
             "prom-smoke": _cmd_prom_smoke}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
