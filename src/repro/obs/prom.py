"""Prometheus text exposition: render service scrapes, parse/validate output.

:func:`render_snapshot` turns one :meth:`ServiceRuntime.metrics_snapshot`
dict (taken under the runtime lock, rendered outside it) into the Prometheus
text format served by ``GET /metrics?format=prometheus``.  The metric
vocabulary mirrors the JSON scrape: ``repro_injected_total``,
``repro_ingress_total{verdict=...}``, per-server gauges labelled by server
name, ledger and membership gauges.

:func:`parse_exposition` is the tiny validating parser the ``trace-smoke``
job and the tests run over the rendered output: it checks metric-name and
label syntax, ``# TYPE`` declarations preceding their samples, and histogram
``+Inf``/``_count`` consistency — enough to catch every malformed line a
renderer bug could produce, with no dependencies.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from ..errors import ConfigurationError
from .registry import format_value

_METRIC_NAME = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$")
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
_VALID_TYPES = frozenset(
    {"counter", "gauge", "histogram", "summary", "untyped"})

#: The content type Prometheus scrapers expect for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


class _Lines:
    """Accumulates exposition lines, emitting TYPE headers once per metric."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._typed: set[str] = set()

    def sample(self, name: str, kind: str, value: Any,
               labels: Mapping[str, Any] | None = None,
               help: str = "") -> None:
        if name not in self._typed:
            self._typed.add(name)
            if help:
                self._lines.append(f"# HELP {name} {help}")
            self._lines.append(f"# TYPE {name} {kind}")
        if labels:
            rendered = ",".join(f'{key}="{_escape_label(val)}"'
                                for key, val in labels.items())
            self._lines.append(f"{name}{{{rendered}}} {format_value(value)}")
        else:
            self._lines.append(f"{name} {format_value(value)}")

    def text(self) -> str:
        return "\n".join(self._lines) + "\n" if self._lines else "\n"


def render_snapshot(snapshot: Mapping[str, Any],
                    healthz: Mapping[str, Any] | None = None,
                    tracer: Any = None) -> str:
    """Render one service metrics snapshot as Prometheus exposition text.

    The snapshot must be a finished dict (one ``metrics_snapshot()`` call —
    a single lock acquisition); this function only formats and never touches
    the runtime, so rendering happens outside the lock.
    """
    out = _Lines()
    out.sample("repro_service_info", "gauge", 1,
               {"label": snapshot.get("label", ""),
                "algorithm": snapshot.get("algorithm", "")},
               help="Static service identity (value is always 1).")
    out.sample("repro_now_seconds", "gauge", snapshot.get("now", 0.0),
               help="Current simulated time.")
    out.sample("repro_ticks_total", "counter", snapshot.get("ticks", 0),
               help="Service ticks driven so far.")
    out.sample("repro_injected_total", "counter", snapshot.get("injected", 0),
               help="Elements injected into the deployment.")
    out.sample("repro_committed_total", "counter",
               snapshot.get("committed", 0),
               help="Elements whose commit has been observed.")
    out.sample("repro_committed_this_run_total", "counter",
               snapshot.get("committed_this_run", 0))
    out.sample("repro_recovered_commits_total", "counter",
               snapshot.get("recovered_commits", 0))
    out.sample("repro_committed_fraction", "gauge",
               snapshot.get("committed_fraction", 0.0))
    first_commit = snapshot.get("first_commit")
    if first_commit is not None:
        out.sample("repro_first_commit_seconds", "gauge", first_commit)
    out.sample("repro_rolling_throughput", "gauge",
               snapshot.get("rolling_throughput", 0.0),
               help="Commit throughput over the rolling window (el/s).")
    ingress = snapshot.get("ingress", {})
    for verdict in ("accepted", "deferred", "rejected", "drained",
                    "server_rejected"):
        out.sample("repro_ingress_total", "counter",
                   ingress.get(verdict, 0), {"verdict": verdict},
                   help="Ingress submissions by backpressure verdict.")
    out.sample("repro_ingress_queue_depth", "gauge",
               ingress.get("queue_depth", 0),
               help="Elements waiting in the ingress queue.")
    out.sample("repro_ingress_queue_limit", "gauge",
               ingress.get("queue_limit", 0))
    for server, state in snapshot.get("servers", {}).items():
        labels = {"server": server}
        out.sample("repro_server_crashed", "gauge",
                   state.get("crashed", False), labels)
        out.sample("repro_server_byzantine", "gauge",
                   state.get("byzantine", False), labels)
        out.sample("repro_server_backlog", "gauge",
                   state.get("backlog", 0), labels,
                   help="Pending block-processing work items.")
        out.sample("repro_server_epoch", "gauge",
                   state.get("epoch", 0), labels)
    ledger = snapshot.get("ledger", {})
    if "height" in ledger:
        out.sample("repro_ledger_height", "gauge", ledger["height"])
    if "pending" in ledger:
        out.sample("repro_ledger_pending", "gauge", ledger["pending"])
    if "durable" in ledger:
        out.sample("repro_ledger_durable", "gauge", ledger["durable"])
    if "resumed_from" in ledger:
        out.sample("repro_ledger_resumed_from", "gauge",
                   ledger["resumed_from"])
    out.sample("repro_recovered_blocks", "gauge",
               snapshot.get("recovered_blocks", 0))
    membership = snapshot.get("membership")
    if membership:
        out.sample("repro_membership_epoch", "gauge",
                   membership.get("epoch", 0))
        out.sample("repro_membership_size", "gauge",
                   membership.get("size", 0))
        out.sample("repro_membership_quorum", "gauge",
                   membership.get("quorum", 0))
    if healthz is not None:
        out.sample("repro_healthy", "gauge",
                   healthz.get("status") == "ok",
                   help="1 while a commit quorum of servers is live.")
        out.sample("repro_live_servers", "gauge",
                   healthz.get("live_servers", 0))
        out.sample("repro_quorum", "gauge", healthz.get("quorum", 0))
    if tracer is not None:
        phases = sorted(tracer.phase_summary().items())
        if phases:
            lines = out._lines
            lines.append("# HELP repro_phase_latency_seconds Per-phase "
                         "latency since injection (sampled elements).")
            lines.append("# TYPE repro_phase_latency_seconds summary")
            for phase, stats in phases:
                for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                                      ("0.99", "p99")):
                    lines.append(
                        f'repro_phase_latency_seconds{{phase="{phase}",'
                        f'quantile="{quantile}"}} '
                        f"{format_value(stats[key])}")
                total = sum(tracer.phase_latencies[phase])
                lines.append(f'repro_phase_latency_seconds_sum'
                             f'{{phase="{phase}"}} {format_value(total)}')
                lines.append(f'repro_phase_latency_seconds_count'
                             f'{{phase="{phase}"}} {stats["count"]}')
    return out.text()


# -- validation ---------------------------------------------------------------

def _base_name(name: str, types: Mapping[str, str]) -> str:
    """Map a ``_bucket``/``_sum``/``_count`` series to its parent metric."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            parent = name[: -len(suffix)]
            if types.get(parent) in ("histogram", "summary"):
                return parent
    return name


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Parse and validate Prometheus text exposition.

    Returns ``{metric_name: {"type": ..., "samples": [(labels, value)]}}``.
    Raises :class:`ConfigurationError` on the first format violation: bad
    metric/label syntax, a sample before (or without) its ``# TYPE``, an
    unknown type, a non-numeric value, or a histogram without ``+Inf``.
    """
    if not text.endswith("\n"):
        raise ConfigurationError("exposition must end with a newline")
    types: dict[str, str] = {}
    metrics: dict[str, dict[str, Any]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, kind = parts[2], (parts[3] if len(parts) > 3 else "")
                if not _METRIC_NAME.match(name):
                    raise ConfigurationError(
                        f"line {number}: invalid metric name {name!r}")
                if kind not in _VALID_TYPES:
                    raise ConfigurationError(
                        f"line {number}: invalid metric type {kind!r}")
                if name in types:
                    raise ConfigurationError(
                        f"line {number}: duplicate TYPE for {name!r}")
                if name in metrics:
                    raise ConfigurationError(
                        f"line {number}: TYPE for {name!r} after its samples")
                types[name] = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                if not _METRIC_NAME.match(parts[2]):
                    raise ConfigurationError(
                        f"line {number}: invalid metric name in HELP")
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ConfigurationError(f"line {number}: malformed sample {line!r}")
        name = match.group("name")
        labels: dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(raw_labels):
                if not _LABEL_NAME.match(pair.group(1)):
                    raise ConfigurationError(
                        f"line {number}: invalid label name {pair.group(1)!r}")
                labels[pair.group(1)] = pair.group(2)
                consumed += pair.end() - pair.start()
            leftovers = re.sub(r"[,\s]", "", _LABEL_PAIR.sub("", raw_labels))
            if leftovers:
                raise ConfigurationError(
                    f"line {number}: malformed labels {raw_labels!r}")
        raw_value = match.group("value")
        try:
            value = float(raw_value)
        except ValueError:
            if raw_value not in ("NaN", "+Inf", "-Inf"):
                raise ConfigurationError(
                    f"line {number}: non-numeric value {raw_value!r}")
            value = float("nan") if raw_value == "NaN" else float(
                raw_value.replace("Inf", "inf"))
        base = _base_name(name, types)
        if base not in types:
            raise ConfigurationError(
                f"line {number}: sample for {name!r} without a # TYPE")
        metrics.setdefault(base, {"type": types[base], "samples": []})
        metrics[base]["samples"].append((labels, value))
    for name, kind in types.items():
        if kind == "histogram" and name in metrics:
            buckets = [(labels, value) for labels, value
                       in metrics[name]["samples"] if "le" in labels]
            if buckets and not any(labels["le"] == "+Inf"
                                   for labels, _ in buckets):
                raise ConfigurationError(
                    f"histogram {name!r} has no +Inf bucket")
    return metrics
