"""Lightweight telemetry primitives: counters, gauges, log-scale histograms.

A :class:`Registry` is a small, dependency-free metric store in the spirit of
a Prometheus client library, built for the simulator's constraints:

* **deterministic** — snapshots are plain dicts with sorted keys, integer
  counts, and floats rounded to six decimals, so they can be embedded in
  byte-stable :class:`~repro.api.results.RunResult` artifacts;
* **cheap** — counters are a single attribute increment; histograms use a
  fixed log-scale bucket ladder (powers of two), so ``observe`` is a
  ``bisect`` plus two adds and never allocates;
* **renderable** — :meth:`Registry.render_prometheus` emits the Prometheus
  text exposition format (``# HELP`` / ``# TYPE`` plus samples) that the
  service endpoint serves under ``/metrics?format=prometheus``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable, Mapping

from ..errors import ConfigurationError

#: Default histogram ladder: powers of two from 1e-4 (0.1 ms of simulated
#: time) up to ~1677 s.  Fixed — not data-dependent — so two runs of the same
#: scenario always bucket identically.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(1e-4 * 2 ** i for i in range(25))

#: Ladder for size-like observations (batch flush items/bytes): powers of two
#: from 1 up to ~16M.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(2 ** i) for i in range(25))


def _round6(value: float) -> float:
    return round(float(value), 6)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time numeric metric (set, not accumulated)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float:
        return _round6(self.value)


class Histogram:
    """A fixed-bucket histogram over a log-scale ladder.

    Buckets are *upper bounds*; an observation lands in the first bucket whose
    bound is >= the value, with an implicit ``+Inf`` overflow bucket at the
    end.  Counts are stored per-bucket (non-cumulative); the Prometheus
    renderer accumulates them into the required cumulative ``le`` series.
    """

    __slots__ = ("name", "help", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be a sorted non-empty ladder")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        counts = self.counts
        bounds = self.bounds
        total = 0.0
        n = 0
        for value in values:
            counts[bisect_left(bounds, value)] += 1
            total += value
            n += 1
        self.sum += total
        self.count += n

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                return self.bounds[index] if index < len(self.bounds) \
                    else self.bounds[-1]
        return self.bounds[-1]

    def snapshot(self) -> dict[str, Any]:
        """Compact form: only non-empty buckets, keyed by their upper bound."""
        buckets = {repr(_round6(self.bounds[i])) if i < len(self.bounds)
                   else "+Inf": c
                   for i, c in enumerate(self.counts) if c}
        return {"buckets": buckets, "sum": _round6(self.sum),
                "count": self.count}


class Registry:
    """A named collection of metrics with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory(name, **kwargs)
        elif not isinstance(metric, factory):
            raise ConfigurationError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {factory.kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, Gauge, help=help)

    def histogram(self, name: str, help: str = "",
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, help=help, bounds=bounds)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self) -> dict[str, Any]:
        """All metrics as a sorted, JSON-stable dict."""
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)}

    def render_prometheus(self, prefix: str = "repro_") -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            full = prefix + name
            if metric.help:
                lines.append(f"# HELP {full} {metric.help}")
            lines.append(f"# TYPE {full} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = 0
                for index, bound in enumerate(metric.bounds):
                    cumulative += metric.counts[index]
                    lines.append(
                        f'{full}_bucket{{le="{_round6(bound)!r}"}} {cumulative}')
                cumulative += metric.counts[-1]
                lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{full}_sum {_round6(metric.sum)!r}")
                lines.append(f"{full}_count {metric.count}")
            else:
                lines.append(f"{full} {format_value(metric.value)}")
        return "\n".join(lines) + "\n" if lines else ""


def format_value(value: Any) -> str:
    """One Prometheus sample value: ints bare, floats rounded, bools as 0/1."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(_round6(float(value)))


def flush_size_summary(flushes: Iterable[Any]) -> dict[str, Any] | None:
    """Batch-flush size statistics (items per flush) from
    :class:`~repro.analysis.metrics.BatchFlushEvent` records, or ``None``
    when no flushes happened (e.g. the vanilla algorithm)."""
    sizes = [int(f.n_items) for f in flushes]
    if not sizes:
        return None
    histogram = Histogram("flush_items", bounds=SIZE_BUCKETS)
    histogram.observe_many(float(s) for s in sizes)
    snap = histogram.snapshot()
    snap["max"] = max(sizes)
    snap["sum"] = sum(sizes)
    return snap


def phase_percentiles(sorted_values: "list[float]") -> dict[str, Any]:
    """count/p50/p95/p99/max for a pre-sorted latency list (rounded).

    An empty list (a zero-commit run, or a phase no element reached) yields a
    zeroed row rather than indexing past the end — report tables render it as
    an all-zero line instead of crashing.
    """
    n = len(sorted_values)
    if n == 0:
        return {"count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

    def pick(q: float) -> float:
        return _round6(sorted_values[min(n - 1, int(q * n))])

    return {"count": n, "p50": pick(0.50), "p95": pick(0.95),
            "p99": pick(0.99), "max": _round6(sorted_values[-1])}
