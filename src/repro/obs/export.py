"""Trace exporters and validators: Chrome ``trace_event`` JSON and JSONL.

Both formats serialise the same :class:`~repro.obs.trace.Tracer` content and
are **byte-deterministic**: timestamps are integer microseconds of simulated
time, keys are sorted, tracks get their thread ids by sorted name, and no
wall-clock, pid, or hash-order data is ever emitted — the same
``(scenario, seed, trace_sample)`` writes the same bytes from any worker
process.

* **chrome** — the ``trace_event`` JSON object format (a ``traceEvents``
  array plus ``displayTimeUnit``), loadable in Perfetto / ``chrome://tracing``
  with one named track per server plus the ``collector`` and ``ledger``
  tracks (``thread_name`` metadata events).  Phase observations are instant
  events carrying the batch size in ``args.count``.
* **jsonl** — one JSON object per line: a header, every timeline event, then
  one span line per sampled element with its per-phase timestamps.  This is
  the machine-diffable format the determinism tests byte-compare.

The validators parse a file back and check structural invariants; they are
what ``repro.obs validate-trace`` and ``make trace-smoke`` run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError
from .trace import Tracer

#: Bumped whenever either trace layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

_JSON_COMPACT = {"sort_keys": True, "separators": (",", ":")}


def export_chrome(tracer: Tracer, label: str = "") -> str:
    """The tracer's timeline as Chrome ``trace_event`` JSON text."""
    tracks = tracer.tracks()
    tid_of = {track: tid for tid, track in enumerate(tracks)}
    events: list[dict[str, Any]] = [
        {"args": {"name": label or "repro"}, "name": "process_name",
         "ph": "M", "pid": 0},
    ]
    for track in tracks:
        events.append({"args": {"name": track}, "name": "thread_name",
                       "ph": "M", "pid": 0, "tid": tid_of[track]})
    for ts_us, track, name, count in tracer.events:
        event: dict[str, Any] = {"name": name, "ph": "i", "pid": 0,
                                 "s": "t", "tid": tid_of[track], "ts": ts_us}
        if count:
            event["args"] = {"count": count}
        events.append(event)
    document = {"displayTimeUnit": "ms", "traceEvents": events}
    return json.dumps(document, **_JSON_COMPACT) + "\n"


def export_jsonl(tracer: Tracer, label: str = "") -> str:
    """The tracer's timeline and element spans as JSONL text."""
    lines = [json.dumps({"format": "repro-trace",
                         "label": label,
                         "sample": tracer.sample,
                         "schema_version": TRACE_SCHEMA_VERSION,
                         "tracks": tracer.tracks(),
                         "type": "header"}, **_JSON_COMPACT)]
    for ts_us, track, name, count in tracer.events:
        lines.append(json.dumps({"count": count, "name": name,
                                 "track": track, "ts_us": ts_us,
                                 "type": "event"}, **_JSON_COMPACT))
    spans = tracer.spans()
    for element_id in sorted(spans):
        phases = {phase: _int_us(t) for phase, t in spans[element_id].items()}
        lines.append(json.dumps({"element_id": element_id, "phases": phases,
                                 "type": "span"}, **_JSON_COMPACT))
    return "\n".join(lines) + "\n"


def _int_us(t: float) -> int:
    return int(round(t * 1e6))


def write_trace(tracer: Tracer, path: "str | Path", fmt: str = "chrome",
                label: str = "") -> Path:
    """Write one trace file (creating parent directories) and return its path."""
    if fmt == "chrome":
        text = export_chrome(tracer, label=label)
    elif fmt == "jsonl":
        text = export_jsonl(tracer, label=label)
    else:
        raise ConfigurationError(
            f"unknown trace format {fmt!r} (expected 'chrome' or 'jsonl')")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text)
    return target


# -- validation ---------------------------------------------------------------

def validate_chrome_trace(text: str) -> dict[str, Any]:
    """Validate Chrome ``trace_event`` text; returns summary statistics.

    Checks the structural contract Perfetto relies on: a ``traceEvents``
    array, every event carrying a phase, ``thread_name`` metadata naming
    every (pid, tid) that instant events reference, and integer microsecond
    timestamps.  Raises :class:`ConfigurationError` on the first violation.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"trace is not valid JSON: {error}") from error
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ConfigurationError("chrome trace must be an object with a "
                                 "'traceEvents' array")
    events = document["traceEvents"]
    if not isinstance(events, list):
        raise ConfigurationError("'traceEvents' must be an array")
    named_tracks: dict[tuple[int, int], str] = {}
    instants = 0
    for index, event in enumerate(events):
        if not isinstance(event, dict) or "ph" not in event:
            raise ConfigurationError(
                f"traceEvents[{index}] is not an event object with 'ph'")
        phase = event["ph"]
        if phase == "M":
            if event.get("name") == "thread_name":
                name = event.get("args", {}).get("name")
                if not isinstance(name, str) or not name:
                    raise ConfigurationError(
                        f"traceEvents[{index}]: thread_name metadata "
                        "without args.name")
                named_tracks[(event.get("pid", 0), event.get("tid", 0))] = name
            continue
        ts = event.get("ts")
        if not isinstance(ts, int) or ts < 0:
            raise ConfigurationError(
                f"traceEvents[{index}]: ts must be a non-negative integer "
                f"microsecond count, got {ts!r}")
        if not isinstance(event.get("name"), str):
            raise ConfigurationError(f"traceEvents[{index}]: missing name")
        key = (event.get("pid", 0), event.get("tid", 0))
        if key not in named_tracks:
            raise ConfigurationError(
                f"traceEvents[{index}]: event on unnamed track pid/tid {key}")
        instants += 1
    return {"events": instants, "tracks": sorted(named_tracks.values())}


def validate_jsonl_trace(text: str) -> dict[str, Any]:
    """Validate repro JSONL trace text; returns summary statistics."""
    lines = text.splitlines()
    if not lines:
        raise ConfigurationError("empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as error:
        raise ConfigurationError(f"trace header is not valid JSON: {error}") from error
    if (not isinstance(header, dict) or header.get("type") != "header"
            or header.get("format") != "repro-trace"):
        raise ConfigurationError(
            "first line must be a {'type': 'header', 'format': 'repro-trace'} "
            "object")
    version = header.get("schema_version", 0)
    if version > TRACE_SCHEMA_VERSION:
        raise ConfigurationError(
            f"trace schema version {version} is newer than this library "
            f"understands ({TRACE_SCHEMA_VERSION})")
    tracks = header.get("tracks")
    if not isinstance(tracks, list):
        raise ConfigurationError("header.tracks must be a list")
    events = spans = 0
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"line {number} is not valid JSON: {error}") from error
        kind = record.get("type") if isinstance(record, dict) else None
        if kind == "event":
            if (not isinstance(record.get("ts_us"), int)
                    or record.get("track") not in tracks
                    or not isinstance(record.get("name"), str)):
                raise ConfigurationError(
                    f"line {number}: malformed event record")
            events += 1
        elif kind == "span":
            phases = record.get("phases")
            if (not isinstance(record.get("element_id"), int)
                    or not isinstance(phases, dict)
                    or "injected" not in phases
                    or not all(isinstance(v, int) for v in phases.values())):
                raise ConfigurationError(
                    f"line {number}: malformed span record")
            spans += 1
        else:
            raise ConfigurationError(
                f"line {number}: unknown record type {kind!r}")
    return {"events": events, "spans": spans, "tracks": sorted(tracks)}


def validate_trace_file(path: "str | Path", fmt: str = "auto") -> dict[str, Any]:
    """Validate a trace file on disk, sniffing the format when ``auto``."""
    text = Path(path).read_text()
    if fmt == "auto":
        fmt = "jsonl" if text.startswith('{"') and '"type":"header"' in \
            text.split("\n", 1)[0] else "chrome"
    if fmt == "chrome":
        return {"format": "chrome", **validate_chrome_trace(text)}
    if fmt == "jsonl":
        return {"format": "jsonl", **validate_jsonl_trace(text)}
    raise ConfigurationError(
        f"unknown trace format {fmt!r} (expected 'auto', 'chrome', 'jsonl')")
