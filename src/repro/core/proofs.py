"""Epoch-proof creation and the f+1 commit rule.

An epoch-proof is ``p_v(i) = Sign_v(Hash(i, history[i]))``.  An epoch is
*committed* (and an element in it is final) once ``f + 1`` consistent
epoch-proofs from distinct signers are available: at least one of them must
come from a correct server, so the epoch content is trustworthy even when the
client only ever talks to a single (possibly Byzantine) server.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..crypto.hashing import hash_epoch
from ..crypto.keys import KeyPair
from ..crypto.signatures import SignatureScheme
from ..workload.elements import Element
from .types import EpochProof, epoch_proof_payload


def create_epoch_proof(scheme: SignatureScheme, keypair: KeyPair,
                       epoch_number: int, elements: Iterable[Element]) -> EpochProof:
    """Sign the hash of ``(epoch_number, elements)`` as server ``keypair.owner``."""
    epoch_hash = hash_epoch(epoch_number, elements)
    signature = scheme.sign(keypair, epoch_proof_payload(epoch_number, epoch_hash))
    return EpochProof(epoch_number=epoch_number, epoch_hash=epoch_hash,
                      signature=signature, signer=keypair.owner)


def verify_epoch_proof(scheme: SignatureScheme, proof: EpochProof,
                       elements: Iterable[Element]) -> bool:
    """Client-side check: does ``proof`` really cover this epoch content?"""
    expected = hash_epoch(proof.epoch_number, elements)
    if expected != proof.epoch_hash:
        return False
    return scheme.verify(proof.signer,
                         epoch_proof_payload(proof.epoch_number, proof.epoch_hash),
                         proof.signature)


def distinct_signers(proofs: Iterable[EpochProof], epoch_number: int,
                     epoch_hash: str | None = None) -> set[str]:
    """Signers of proofs for ``epoch_number`` (optionally only those matching a hash)."""
    signers: set[str] = set()
    for proof in proofs:
        if proof.epoch_number != epoch_number:
            continue
        if epoch_hash is not None and proof.epoch_hash != epoch_hash:
            continue
        signers.add(proof.signer)
    return signers


def epoch_is_committed(proofs: Iterable[EpochProof], epoch_number: int,
                       elements: Iterable[Element], quorum: int,
                       scheme: SignatureScheme | None = None) -> bool:
    """The f+1 rule: enough *consistent* proofs from distinct signers.

    When ``scheme`` is provided each candidate proof's signature is verified;
    otherwise only hash consistency is required (servers have already verified
    signatures before storing proofs).
    """
    epoch_hash = hash_epoch(epoch_number, elements)
    signers: set[str] = set()
    for proof in proofs:
        if proof.epoch_number != epoch_number or proof.epoch_hash != epoch_hash:
            continue
        if scheme is not None and not scheme.verify(
                proof.signer, epoch_proof_payload(proof.epoch_number, proof.epoch_hash),
                proof.signature):
            continue
        signers.add(proof.signer)
        if len(signers) >= quorum:
            return True
    return len(signers) >= quorum


def committed_epochs(proofs: Iterable[EpochProof],
                     history: Mapping[int, frozenset[Element]] | Mapping[int, set[Element]],
                     quorum: int) -> set[int]:
    """All epoch numbers in ``history`` that satisfy the f+1 rule under ``proofs``."""
    result: set[int] = set()
    proofs = list(proofs)
    for epoch_number, elements in history.items():
        if epoch_is_committed(proofs, epoch_number, elements, quorum):
            result.add(epoch_number)
    return result
