"""The light client workflow (paper §2, "Setchain Epoch-proofs").

A client adds an element through a *single* server and later gets the
Setchain state from a (possibly different) single server.  It trusts an epoch
— and therefore the inclusion of its element — once the returned ``proofs``
set contains at least ``f + 1`` valid epoch-proofs for that epoch from
distinct signers, because at least one of those signers must be correct.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.signatures import SignatureScheme
from ..errors import SetchainError
from ..workload.elements import Element
from .base import BaseSetchainServer
from .proofs import verify_epoch_proof
from .types import SetchainView


@dataclass(frozen=True)
class CommitCheck:
    """Result of a client-side commit verification."""

    element: Element
    epoch: int | None
    valid_proofs: int
    quorum: int

    @property
    def committed(self) -> bool:
        """True when the element sits in an epoch backed by >= f+1 valid proofs."""
        return self.epoch is not None and self.valid_proofs >= self.quorum


class SetchainClient:
    """A client that talks to one server at a time."""

    def __init__(self, name: str, scheme: SignatureScheme, quorum: int) -> None:
        if quorum < 1:
            raise SetchainError("quorum must be at least 1 (f + 1)")
        self.name = name
        self.scheme = scheme
        self.quorum = quorum
        #: Elements this client has added, for bookkeeping.
        self.added: list[Element] = []

    # -- operations ----------------------------------------------------------------

    def add(self, server: BaseSetchainServer, element: Element) -> bool:
        """``S.add_v(e)`` against a single server ``v``."""
        accepted = server.add(element)
        if accepted:
            self.added.append(element)
        return accepted

    def get(self, server: BaseSetchainServer) -> SetchainView:
        """``S.get_w()`` against a single server ``w``."""
        return server.get()

    # -- verification ---------------------------------------------------------------

    def count_valid_proofs(self, view: SetchainView, epoch_number: int) -> int:
        """Valid, distinct-signer epoch-proofs the view holds for ``epoch_number``."""
        elements = view.history.get(epoch_number)
        if elements is None:
            return 0
        signers: set[str] = set()
        for proof in view.proofs_for(epoch_number):
            if proof.signer in signers:
                continue
            if verify_epoch_proof(self.scheme, proof, elements):
                signers.add(proof.signer)
        return len(signers)

    def check_commit(self, view: SetchainView, element: Element) -> CommitCheck:
        """Has ``element`` been committed according to this (single-server) view?"""
        epoch_number = view.epoch_of(element)
        if epoch_number is None:
            return CommitCheck(element=element, epoch=None, valid_proofs=0,
                               quorum=self.quorum)
        valid = self.count_valid_proofs(view, epoch_number)
        return CommitCheck(element=element, epoch=epoch_number, valid_proofs=valid,
                           quorum=self.quorum)

    def wait_for_commit(self, sim, server: BaseSetchainServer, element: Element,
                        poll_interval: float = 0.5,
                        max_time: float = 300.0) -> CommitCheck:  # type: ignore[no-untyped-def]
        """Drive the simulation until the element commits (or the deadline passes).

        This is the simulation-side equivalent of a client polling ``get``
        every ``poll_interval`` seconds.
        """
        deadline = sim.now + max_time

        def committed() -> bool:
            return self.check_commit(self.get(server), element).committed

        sim.run_until_condition(committed, check_interval=poll_interval, max_time=deadline)
        return self.check_commit(self.get(server), element)
