"""Epoch execution layer (paper Appendix G: extension to a full blockchain).

The extended abstract sketches how a Setchain becomes a full blockchain:

1. while elements are added and epochs created, each transaction is validated
   *optimistically and independently* (in parallel, ignoring semantics);
2. once an epoch consolidates and its elements are ordered, the effects are
   applied *sequentially* in that order against the replicated state, and any
   transaction found semantically invalid at its final position is marked
   void rather than removed.

This module implements that two-phase scheme over a simple account/balance
state machine so the trade-off the appendix discusses (epoch size vs
sequential execution cost) can be exercised and benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..errors import SetchainError
from ..workload.elements import Element


@dataclass(frozen=True, slots=True)
class Transfer:
    """A semantic payload for an element: move ``amount`` from ``sender`` to ``receiver``."""

    sender: str
    receiver: str
    amount: int

    def __post_init__(self) -> None:
        if self.amount <= 0:
            raise SetchainError("transfer amount must be positive")


@dataclass
class ExecutionResult:
    """Outcome of executing one epoch."""

    epoch_number: int
    applied: int = 0
    voided: int = 0
    #: element_id -> reason string for voided transactions.
    void_reasons: dict[int, str] = field(default_factory=dict)


class AccountState:
    """The replicated account/balance state machine."""

    def __init__(self, initial_balances: Mapping[str, int] | None = None) -> None:
        self.balances: dict[str, int] = dict(initial_balances or {})

    def balance(self, account: str) -> int:
        return self.balances.get(account, 0)

    def credit(self, account: str, amount: int) -> None:
        self.balances[account] = self.balance(account) + amount

    def try_apply(self, transfer: Transfer) -> bool:
        """Apply the transfer if funds allow; returns False (void) otherwise."""
        if self.balance(transfer.sender) < transfer.amount:
            return False
        self.balances[transfer.sender] -= transfer.amount
        self.credit(transfer.receiver, transfer.amount)
        return True


class EpochExecutor:
    """Two-phase execution of consolidated epochs.

    ``payload_of`` maps an element to its semantic payload (or ``None`` for
    elements with no executable semantics, which are skipped).
    """

    def __init__(self, state: AccountState,
                 payload_of: Callable[[Element], Transfer | None]) -> None:
        self.state = state
        self.payload_of = payload_of
        self.results: list[ExecutionResult] = []
        self._executed_epochs: set[int] = set()

    # -- phase 1: optimistic, order-independent validation -------------------------

    @staticmethod
    def optimistic_valid(element: Element) -> bool:
        """Per-element validation that ignores state (parallelisable)."""
        return element.valid and element.size_bytes > 0

    def optimistic_filter(self, elements: Iterable[Element]) -> list[Element]:
        """Filter an epoch's elements with the stateless check only."""
        return [e for e in elements if self.optimistic_valid(e)]

    # -- phase 2: sequential application in epoch order ------------------------------

    def execute_epoch(self, epoch_number: int,
                      elements: Sequence[Element]) -> ExecutionResult:
        """Apply one consolidated epoch; elements execute in a deterministic order."""
        if epoch_number in self._executed_epochs:
            raise SetchainError(f"epoch {epoch_number} was already executed")
        expected = len(self.results) + 1
        if epoch_number != expected:
            raise SetchainError(
                f"epochs must execute in order: expected {expected}, got {epoch_number}")
        result = ExecutionResult(epoch_number=epoch_number)
        ordered = sorted(self.optimistic_filter(elements),
                         key=lambda e: e.element_id)
        for element in ordered:
            payload = self.payload_of(element)
            if payload is None:
                continue
            if self.state.try_apply(payload):
                result.applied += 1
            else:
                result.voided += 1
                result.void_reasons[element.element_id] = "insufficient funds"
        self._executed_epochs.add(epoch_number)
        self.results.append(result)
        return result

    def execute_history(self, history: Mapping[int, Iterable[Element]]) -> list[ExecutionResult]:
        """Execute every not-yet-executed epoch of a server's history, in order."""
        outcomes: list[ExecutionResult] = []
        for epoch_number in sorted(history):
            if epoch_number in self._executed_epochs:
                continue
            outcomes.append(self.execute_epoch(epoch_number, list(history[epoch_number])))
        return outcomes

    @property
    def total_applied(self) -> int:
        return sum(r.applied for r in self.results)

    @property
    def total_voided(self) -> int:
        return sum(r.voided for r in self.results)
