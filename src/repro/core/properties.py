"""Checkers for the Setchain correctness properties (paper §2, Properties 1-8).

Safety properties (1, 5, 6, 7) are checked against any snapshot.  Liveness
properties (2, 3, 4, 8) are phrased in the paper as "eventually ..."; their
checkers are meant to be applied to *final* views taken after the simulation
has drained, where "eventually" has already had a chance to happen.

Each checker returns a list of :class:`~repro.errors.PropertyViolation`; an
empty list means the property holds for the supplied views.  ``check_all``
aggregates every applicable property.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import PropertyViolation
from ..workload.elements import Element
from .types import SetchainView


def check_consistent_sets(view: SetchainView, server: str = "?") -> list[PropertyViolation]:
    """Property 1 (Consistent-Sets): every epoch is a subset of the_set."""
    violations: list[PropertyViolation] = []
    for epoch_number, elements in view.history.items():
        missing = elements - view.the_set
        if missing:
            violations.append(PropertyViolation(
                "Consistent-Sets",
                f"server {server}: epoch {epoch_number} has {len(missing)} element(s) "
                f"not in the_set"))
    return violations


def check_add_get_local(view: SetchainView, added_elements: Iterable[Element],
                        server: str = "?") -> list[PropertyViolation]:
    """Property 2 (Add-Get-Local): valid elements added at this server appear in its the_set."""
    violations: list[PropertyViolation] = []
    for element in added_elements:
        if element.valid and element not in view.the_set:
            violations.append(PropertyViolation(
                "Add-Get-Local",
                f"server {server}: added element {element.element_id} missing from the_set"))
    return violations


def check_get_global(views: Mapping[str, SetchainView]) -> list[PropertyViolation]:
    """Property 3 (Get-Global): an element in one correct server's the_set is in all."""
    violations: list[PropertyViolation] = []
    names = sorted(views)
    for holder in names:
        for element in views[holder].the_set:
            for other in names:
                if other == holder:
                    continue
                if element not in views[other].the_set:
                    violations.append(PropertyViolation(
                        "Get-Global",
                        f"element {element.element_id} in {holder}'s the_set but "
                        f"missing from {other}'s"))
    return violations


def check_eventual_get(view: SetchainView, server: str = "?") -> list[PropertyViolation]:
    """Property 4 (Eventual-Get): every element of the_set eventually reaches history."""
    in_epochs = view.elements_in_epochs()
    violations: list[PropertyViolation] = []
    for element in view.the_set:
        if element not in in_epochs:
            violations.append(PropertyViolation(
                "Eventual-Get",
                f"server {server}: element {element.element_id} in the_set but in no epoch"))
    return violations


def check_unique_epoch(view: SetchainView, server: str = "?") -> list[PropertyViolation]:
    """Property 5 (Unique-Epoch): epochs are pairwise disjoint."""
    violations: list[PropertyViolation] = []
    seen: dict[Element, int] = {}
    for epoch_number in sorted(view.history):
        for element in view.history[epoch_number]:
            previous = seen.get(element)
            if previous is not None:
                violations.append(PropertyViolation(
                    "Unique-Epoch",
                    f"server {server}: element {element.element_id} in epochs "
                    f"{previous} and {epoch_number}"))
            else:
                seen[element] = epoch_number
    return violations


def check_consistent_gets(views: Mapping[str, SetchainView]) -> list[PropertyViolation]:
    """Property 6 (Consistent-Gets): common-prefix epochs are identical across servers."""
    violations: list[PropertyViolation] = []
    names = sorted(views)
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            view_a, view_b = views[first], views[second]
            common = min(view_a.epoch, view_b.epoch)
            for epoch_number in range(1, common + 1):
                if view_a.history.get(epoch_number) != view_b.history.get(epoch_number):
                    violations.append(PropertyViolation(
                        "Consistent-Gets",
                        f"epoch {epoch_number} differs between {first} and {second}"))
    return violations


def check_add_before_get(view: SetchainView, all_added: Iterable[Element],
                         server: str = "?") -> list[PropertyViolation]:
    """Property 7 (Add-before-Get): the_set only contains elements some client added."""
    added_ids = {element.element_id for element in all_added}
    violations: list[PropertyViolation] = []
    for element in view.the_set:
        if element.element_id not in added_ids:
            violations.append(PropertyViolation(
                "Add-before-Get",
                f"server {server}: element {element.element_id} was never added by a client"))
    return violations


def check_valid_epoch_proofs(view: SetchainView, quorum: int,
                             server: str = "?") -> list[PropertyViolation]:
    """Property 8 (Valid-Epoch): every epoch eventually has >= f+1 proofs in the view."""
    violations: list[PropertyViolation] = []
    for epoch_number in range(1, view.epoch + 1):
        signers = {p.signer for p in view.proofs_for(epoch_number)}
        if len(signers) < quorum:
            violations.append(PropertyViolation(
                "Valid-Epoch",
                f"server {server}: epoch {epoch_number} has only {len(signers)} "
                f"proof signer(s), quorum is {quorum}"))
    return violations


def check_all(views: Mapping[str, SetchainView], quorum: int,
              all_added: Sequence[Element] | None = None,
              added_per_server: Mapping[str, Sequence[Element]] | None = None,
              include_liveness: bool = True,
              groups: Mapping[str, str] | None = None) -> list[PropertyViolation]:
    """Run every applicable property checker over the given correct-server views.

    ``groups`` (server name -> group key) scopes the cross-server properties
    (3, Get-Global; 6, Consistent-Gets) to servers in the same group.  A
    heterogeneous deployment passes its algorithm groups here: servers running
    different algorithms are separate Setchain instances sharing one ledger
    substrate, so cross-group epoch agreement is neither expected nor claimed.
    The per-view properties (1, 2, 4, 5, 7, 8) and the quorum are always over
    the full server set.  ``groups=None`` (or a single group) checks every
    pair, exactly as before.
    """
    violations: list[PropertyViolation] = []
    for server, view in views.items():
        violations.extend(check_consistent_sets(view, server))
        violations.extend(check_unique_epoch(view, server))
        if all_added is not None:
            violations.extend(check_add_before_get(view, all_added, server))
        if include_liveness:
            violations.extend(check_eventual_get(view, server))
            violations.extend(check_valid_epoch_proofs(view, quorum, server))
            if added_per_server is not None and server in added_per_server:
                violations.extend(check_add_get_local(view, added_per_server[server], server))
    if groups is None:
        grouped_views: list[Mapping[str, SetchainView]] = [views]
    else:
        by_group: dict[str, dict[str, SetchainView]] = {}
        for server, view in views.items():
            by_group.setdefault(groups.get(server, "?"), {})[server] = view
        grouped_views = [by_group[key] for key in sorted(by_group)]
    for group in grouped_views:
        violations.extend(check_consistent_gets(group))
        if include_liveness:
            violations.extend(check_get_global(group))
    return violations
