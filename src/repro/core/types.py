"""Setchain-level data types: epoch-proofs, hash-batches, and the get() view."""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Iterable, Mapping

from ..config import EPOCH_PROOF_SIZE, HASH_BATCH_SIZE
from ..crypto.hashing import canonical_many
from ..errors import SetchainError
from ..workload.elements import Element


def epoch_proof_payload(epoch_number: int, epoch_hash: str) -> str:
    """Canonical string signed by an epoch-proof: ``Hash(i, history[i])`` tagged by i."""
    return f"epoch-proof|{epoch_number}|{epoch_hash}"


def canonical_bytes_many(items: Iterable[object]) -> list[bytes]:
    """Canonical encodings for a whole flush in one pass.

    Batch counterpart of calling ``canonical_bytes()`` per item: reads the
    cached encodings of elements/proofs/hash-batches directly, in input order.
    """
    return canonical_many(items)


@dataclass(frozen=True, slots=True)
class EpochProof:
    """``⟨j, p, w⟩``: server ``w``'s signature ``p`` over the hash of epoch ``j``.

    The wire length is the paper's measured 139 bytes regardless of the
    concrete signature backend.
    """

    epoch_number: int
    epoch_hash: str
    signature: bytes
    signer: str
    size_bytes: int = EPOCH_PROOF_SIZE
    #: Cached canonical encoding (fields are frozen; hashed once per batch).
    _canonical: bytes = field(init=False, repr=False, compare=False, default=b"")
    #: Cached ``hash()`` — proofs live in sets checked on every ledger batch
    #: re-absorption, and the fields never change.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.epoch_number < 1:
            raise SetchainError("epoch numbers start at 1")
        if not self.signer:
            raise SetchainError("epoch-proof must name its signer")
        object.__setattr__(
            self, "_canonical",
            (f"proof|{self.epoch_number}|{self.epoch_hash}|{self.signer}|"
             f"{self.signature.hex()}").encode())
        # Same tuple the dataclass-generated __hash__ would hash (the compare
        # fields, in declaration order), so set iteration orders are unchanged.
        object.__setattr__(
            self, "_hash",
            hash((self.epoch_number, self.epoch_hash, self.signature,
                  self.signer, self.size_bytes)))

    def __hash__(self) -> int:
        return self._hash

    def canonical_bytes(self) -> bytes:
        return self._canonical

    @property
    def is_element(self) -> bool:
        """Type tag: epoch-proofs are not Setchain elements."""
        return False


def hash_batch_payload(batch_hash: str) -> str:
    """Canonical string a server signs when emitting a hash-batch."""
    return f"hash-batch|{batch_hash}"


@dataclass(frozen=True, slots=True)
class HashBatch:
    """``⟨h, s, v⟩``: the hash of a batch, signed by server ``v`` (Hashchain).

    Fixed 139-byte wire size (hash + signature + identity), per the paper.
    """

    batch_hash: str
    signature: bytes
    signer: str
    size_bytes: int = HASH_BATCH_SIZE
    #: Cached canonical encoding (fields are frozen; hashed once per batch).
    _canonical: bytes = field(init=False, repr=False, compare=False, default=b"")

    def __post_init__(self) -> None:
        if not self.batch_hash:
            raise SetchainError("hash-batch must carry a batch hash")
        if not self.signer:
            raise SetchainError("hash-batch must name its signer")
        object.__setattr__(
            self, "_canonical",
            f"hash-batch|{self.batch_hash}|{self.signer}|{self.signature.hex()}".encode())

    def canonical_bytes(self) -> bytes:
        return self._canonical

    @property
    def is_element(self) -> bool:
        return False


@dataclass(frozen=True)
class SetchainView:
    """The tuple returned by ``S.get()``: ``(the_set, history, epoch, proofs)``.

    ``history`` maps epoch number (1-based) to the frozenset of elements
    stamped with that epoch.  The view is a snapshot — mutating the server
    afterwards does not change an already-returned view.
    """

    the_set: frozenset[Element]
    history: Mapping[int, frozenset[Element]]
    epoch: int
    proofs: frozenset[EpochProof]

    @staticmethod
    def snapshot(the_set: dict[int, Element], history: dict[int, set[Element]],
                 epoch: int, proofs: set[EpochProof]) -> "SetchainView":
        """Build an immutable snapshot from a server's mutable state."""
        frozen_history = {i: frozenset(elements) for i, elements in history.items()}
        return SetchainView(
            the_set=frozenset(the_set.values()),
            history=MappingProxyType(frozen_history),
            epoch=epoch,
            proofs=frozenset(proofs),
        )

    def elements_in_epochs(self) -> frozenset[Element]:
        """Union of all epochs (⋃ history[i])."""
        combined: set[Element] = set()
        for elements in self.history.values():
            combined.update(elements)
        return frozenset(combined)

    def epoch_of(self, element: Element) -> int | None:
        """Epoch number containing ``element``, or ``None`` if not yet epoched."""
        for number, elements in self.history.items():
            if element in elements:
                return number
        return None

    def proofs_for(self, epoch_number: int) -> frozenset[EpochProof]:
        """All proofs in the view claiming to cover ``epoch_number``."""
        return frozenset(p for p in self.proofs if p.epoch_number == epoch_number)
