"""Setchain core: the paper's contribution.

Public surface:

* the three algorithms — :class:`VanillaServer`, :class:`CompresschainServer`,
  :class:`HashchainServer` — plus Byzantine variants for fault injection,
* the light-client workflow (:class:`SetchainClient`, f+1 epoch-proof rule),
* the Property 1-8 checkers,
* :func:`build_deployment` / :func:`run_experiment` to assemble a full cluster.
"""

from .types import EpochProof, HashBatch, SetchainView, epoch_proof_payload, hash_batch_payload
from .collector import Collector
from .batch_store import BatchStore
from .proofs import (
    create_epoch_proof,
    verify_epoch_proof,
    epoch_is_committed,
    committed_epochs,
    distinct_signers,
)
from .validation import (
    valid_element,
    valid_proof,
    valid_hash_batch,
    batch_matches_hash,
    split_batch,
)
from .base import BaseSetchainServer
from .vanilla import VanillaServer
from .compresschain import CompresschainServer
from .hashchain import HashchainServer
from .byzantine import (
    ByzantineBehaviour,
    EquivocateBehaviour,
    InvalidElementBehaviour,
    SilentBehaviour,
    WithholdBehaviour,
    WrongHashBehaviour,
    WithholdingHashchainServer,
    WrongHashHashchainServer,
    InvalidElementVanillaServer,
    EquivocatingProofServer,
    SilentServer,
    behaviour_names,
    get_behaviour,
    has_behaviour,
    make_invalid_element,
    register_behaviour,
    unregister_behaviour,
)
from .client import SetchainClient, CommitCheck
from .properties import check_all
from .execution import AccountState, EpochExecutor, ExecutionResult, Transfer
from .deployment import Deployment, build_deployment, run_experiment

__all__ = [
    "EpochProof",
    "HashBatch",
    "SetchainView",
    "epoch_proof_payload",
    "hash_batch_payload",
    "Collector",
    "BatchStore",
    "create_epoch_proof",
    "verify_epoch_proof",
    "epoch_is_committed",
    "committed_epochs",
    "distinct_signers",
    "valid_element",
    "valid_proof",
    "valid_hash_batch",
    "batch_matches_hash",
    "split_batch",
    "BaseSetchainServer",
    "VanillaServer",
    "CompresschainServer",
    "HashchainServer",
    "ByzantineBehaviour",
    "EquivocateBehaviour",
    "InvalidElementBehaviour",
    "SilentBehaviour",
    "WithholdBehaviour",
    "WrongHashBehaviour",
    "WithholdingHashchainServer",
    "WrongHashHashchainServer",
    "InvalidElementVanillaServer",
    "EquivocatingProofServer",
    "SilentServer",
    "behaviour_names",
    "get_behaviour",
    "has_behaviour",
    "make_invalid_element",
    "register_behaviour",
    "unregister_behaviour",
    "SetchainClient",
    "CommitCheck",
    "check_all",
    "AccountState",
    "EpochExecutor",
    "ExecutionResult",
    "Transfer",
    "Deployment",
    "build_deployment",
    "run_experiment",
]
