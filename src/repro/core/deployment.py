"""Cluster deployment: build a complete, runnable Setchain system.

A :class:`Deployment` mirrors the paper's evaluation platform: ``n`` docker
containers, each holding one client, one collector, and one ledger server,
become ``n`` triples of (injection client, Setchain server, ledger node) wired
over a latency-modelled network, plus a metrics collector standing in for the
log analysis pipeline.

Construction is composed in stages from the :mod:`repro.topology` registries
— latency profile, ledger backend, then one algorithm factory per server — so
new algorithms, backends, and link models plug in without editing this
module.  A :class:`~repro.config.TopologyConfig` on the experiment config
generalises the paper's homogeneous LAN cluster to named regions with
per-region algorithms (heterogeneous clusters) and inter-region delay
matrices; configs without a topology build exactly the legacy deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.metrics import MetricsCollector
from ..analysis.throughput import average_throughput
from ..config import ExperimentConfig
from ..crypto.keys import PublicKeyInfrastructure
from ..crypto.signatures import SignatureScheme, make_scheme
from ..errors import NetworkError
from ..faults.injector import FaultInjector
from ..net.latency import LatencyModel, RegionalLatency
from ..net.network import Network
from ..obs.trace import Tracer
from ..shard.router import ShardRouter
from ..sim.scheduler import Simulator
from ..topology.plugins import (
    DeploymentContext,
    LedgerBackend,
    get_algorithm,
    get_latency_profile,
    get_ledger_backend,
)
from ..workload.clients import ClientPool
from ..workload.elements import Element
from .base import BaseSetchainServer
from .membership import MembershipLog
from .properties import check_all
from .types import SetchainView

#: How often (simulated seconds) join/leave transitions re-check whether a
#: bootstrapping server has caught up or a draining server has emptied.
_MEMBERSHIP_POLL = 0.25


@dataclass
class Deployment:
    """Everything built for one experiment run."""

    config: ExperimentConfig
    sim: Simulator
    network: Network
    scheme: SignatureScheme
    servers: list[BaseSetchainServer]
    clients: ClientPool
    metrics: MetricsCollector
    ledger_backend: LedgerBackend
    injected_elements: list[Element] = field(default_factory=list)
    #: Server name -> region name (empty for homogeneous deployments).
    region_of: dict[str, str] = field(default_factory=dict)
    #: Executes ``config.faults``; ``None`` for fault-free runs.
    fault_injector: FaultInjector | None = None
    #: Build-time context, kept so runtime joins can run algorithm factories.
    context: DeploymentContext | None = None
    #: Server-set membership epochs.  Always built (one initial epoch); the
    #: servers only start consulting it once the first join/leave happens, so
    #: static runs never touch the membership hot paths.
    membership: MembershipLog | None = None
    #: Servers that left the cluster (kept for reporting, not for checks).
    departed_servers: list[BaseSetchainServer] = field(default_factory=list)
    #: Lifecycle tracer (also reachable as ``metrics.tracer``); ``None`` when
    #: ``config.trace_sample`` is unset, so untraced runs pay one identity
    #: check per hook and nothing else.
    tracer: Tracer | None = None
    #: Element-space partitioner for sharded deployments; ``None`` (the
    #: default) is the single-instance layout — workload clients and the
    #: service ingress bypass routing entirely.
    shard_router: ShardRouter | None = None
    _next_server_index: int = field(default=0, init=False, repr=False)
    _started: bool = field(default=False, init=False, repr=False)
    _stopped: bool = field(default=False, init=False, repr=False)

    # -- running ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    @property
    def stopped(self) -> bool:
        return self._stopped

    def start(self, *, inject: bool = True) -> None:
        """Start ledger block production, servers, client injection, and arm
        the fault schedule (when one is configured).

        ``inject=False`` leaves the batch injection clients idle — service
        mode streams its own elements through the ingress queue instead of
        running the configured fixed-rate workload.
        """
        if self._stopped:
            raise NetworkError("deployment already stopped; build a new one")
        if self._started:
            raise NetworkError("deployment already started")
        self.ledger_backend.start()
        for server in self.servers:
            server.start()
        if inject:
            self.clients.start()
        if self.fault_injector is not None:
            self.fault_injector.arm()
        self._started = True

    def stop(self) -> None:
        """Stop client injection and ledger block production (idempotent).

        Service mode calls this on SIGTERM and during rolling restarts; the
        simulator and all state stay inspectable after stopping, but no new
        blocks are produced if the clock is advanced further.
        """
        if self._stopped:
            return
        self._stopped = True
        self.clients.stop()
        stop = getattr(self.ledger_backend, "stop", None)
        if stop is not None:
            stop()

    def __enter__(self) -> "Deployment":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def run(self, until: float | None = None) -> None:
        """Run the simulation for the configured experiment duration.

        A no-op when simulated time is already past the horizon, so
        :meth:`run_to_completion` works from any point in a run.
        """
        horizon = until if until is not None else self.config.total_duration
        self.sim.run_until(max(horizon, self.sim.now))

    def run_to_completion(self, extra_time: float = 200.0,
                          poll: float = 1.0) -> None:
        """Run past the configured horizon until every injected element commits
        (or ``extra_time`` more simulated seconds elapse)."""
        self.run()
        deadline = self.sim.now + extra_time

        def all_committed() -> bool:
            return (self.clients.all_finished
                    and self.metrics.committed_count >= len(self.injected_elements) > 0)

        self.sim.run_until_condition(all_committed, check_interval=poll,
                                     max_time=deadline)

    # -- views and checks ------------------------------------------------------------

    def views(self) -> dict[str, SetchainView]:
        """get() snapshots of every (assumed-correct) server."""
        return {server.name: server.get() for server in self.servers}

    def byzantine_servers(self) -> set[str]:
        """Servers outside the paper's guarantees: every server that ever ran
        a Byzantine behaviour — scheduled or interactive — whether or not it
        has reverted (a reverted server is still a faulty process; it may
        e.g. hold silently dropped elements in its the_set forever)."""
        return {server.name for server in self.servers
                if server.ever_byzantine}

    def algorithm_groups(self) -> dict[str, str]:
        """Server name -> algorithm-group key for heterogeneous clusters.

        Servers running different algorithms speak different wire formats over
        the shared ledger: each algorithm group is its own Setchain instance
        (multi-tenant over one consensus substrate), so cross-server agreement
        is scoped to the group.
        """
        return {server.name: server.algorithm_group()
                for server in self.servers}

    def check_properties(self, include_liveness: bool = True):  # type: ignore[no-untyped-def]
        """Run the Property 1-8 checkers over the current views.

        The quorum is always computed over the *full* server set
        (``config.setchain.quorum``).  For heterogeneous deployments the
        cross-server properties (Get-Global, Consistent-Gets) are checked
        within each algorithm group — see :meth:`algorithm_groups`; sharded
        deployments reuse exactly that scoping, one group per shard.  Servers
        that are (or ever were) Byzantine are excluded: Properties 1-8 are
        claimed for correct servers only.
        """
        groups = (self.algorithm_groups()
                  if (self.config.is_heterogeneous
                      or self.shard_router is not None) else None)
        faulty = self.byzantine_servers()
        still_bootstrapping = {server.name for server in self.servers
                               if server.bootstrapping}
        views = {name: view for name, view in self.views().items()
                 if name not in faulty and name not in still_bootstrapping}
        quorum = self.config.setchain.quorum
        if self.membership is not None and self.membership.changed:
            # Epochs committed under an earlier (smaller) membership carry
            # that epoch's quorum of proofs; check against the weakest quorum
            # any epoch used.  Static runs never take this branch.
            quorum = min(quorum, self.membership.min_quorum())
        return check_all(views, quorum=quorum,
                         all_added=self.injected_elements,
                         include_liveness=include_liveness, groups=groups)

    @property
    def committed_fraction(self) -> float:
        """Fraction of injected elements committed so far (the efficiency metric)."""
        if not self.injected_elements:
            return 0.0
        return self.metrics.committed_count / len(self.injected_elements)

    # -- crash faults ---------------------------------------------------------------

    def _node_for_fault(self, name: str):  # type: ignore[no-untyped-def]
        """The crashable object behind ``name``: a server or a ledger node."""
        for server in self.servers:
            if server.name == name:
                return server
        nodes = getattr(self.ledger_backend, "nodes", None)
        if nodes and name in nodes:
            return nodes[name]
        if name in self.network:
            return self.network.node(name)
        raise NetworkError(f"no crashable node named {name!r} in this deployment")

    def node_crashed(self, name: str) -> bool:
        """Whether the named server or ledger node is currently crash-faulted."""
        return self._node_for_fault(name).crashed

    def crash_node(self, name: str) -> None:
        """Crash-fault a server or ledger node by name (idempotent)."""
        node = self._node_for_fault(name)
        crash = getattr(self.ledger_backend, "crash_node", None)
        if crash is not None and node not in self.servers:
            crash(name)
        else:
            node.crash()
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, name, "fault:crash")

    def recover_node(self, name: str) -> None:
        """Recover a crashed server or ledger node by name (idempotent).

        Ledger nodes recover through their backend when it knows how (e.g.
        CometBFT's block-sync from a live peer); servers replay the blocks
        their co-located ledger node finalised while they were down.
        """
        node = self._node_for_fault(name)
        recover = getattr(self.ledger_backend, "recover_node", None)
        if recover is not None and node not in self.servers:
            recover(name)
        else:
            node.recover()
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, name, "fault:recover")

    # -- Byzantine behaviours ---------------------------------------------------

    def _server_named(self, name: str) -> BaseSetchainServer:
        for server in self.servers:
            if server.name == name:
                return server
        raise NetworkError(
            f"no Setchain server named {name!r} in this deployment "
            "(only servers can turn Byzantine)")

    def node_byzantine(self, name: str) -> bool:
        """Whether the named server currently runs a Byzantine behaviour.

        ``False`` for non-server nodes: the consensus layer models its own
        fault threshold.
        """
        for server in self.servers:
            if server.name == name:
                return server.is_byzantine
        return False

    def become_byzantine(self, name: str, behaviour: str = "silent") -> None:
        """Attach a Byzantine behaviour strategy to a server, mid-run."""
        self._server_named(name).become_byzantine(behaviour)
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, name, f"byzantine:{behaviour}")

    def become_correct(self, name: str) -> None:
        """Shed a server's Byzantine behaviour (idempotent)."""
        self._server_named(name).become_correct()
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, name, "byzantine:reverted")

    # -- dynamic membership -----------------------------------------------------

    def _backend_height(self) -> int:
        """The ledger's current committed height, backend-agnostic."""
        height = getattr(self.ledger_backend, "height", None)
        if height is not None:
            return int(height)
        min_height = getattr(self.ledger_backend, "min_committed_height", None)
        if min_height is not None:
            return int(min_height())
        return 0

    def _require_membership(self) -> MembershipLog:
        if self.membership is None:
            raise NetworkError("this deployment has no membership log")
        return self.membership

    def _activate_membership(self) -> MembershipLog:
        """Wire every server to the membership log (first change only)."""
        log = self._require_membership()
        for server in self.servers:
            server.attach_membership(log)
        return log

    def _active_peers(self, group: str, exclude: str) -> list[BaseSetchainServer]:
        """Live, caught-up servers of ``group`` other than ``exclude``."""
        return [server for server in self.servers
                if server.name != exclude and server.algorithm_group() == group
                and not server.crashed and not server.bootstrapping
                and not server.draining and not server.departed]

    def add_server(self, name: str | None = None, algorithm: str | None = None,
                   region: str | None = None) -> BaseSetchainServer:
        """Join a server at runtime: build, state-transfer, then admit.

        The joiner bootstraps by replaying the committed chain (the same
        replay path crash recovery uses) with its batch store primed from a
        live peer; it counts toward f+1 quorums only once caught up, at which
        point a membership epoch activating two blocks later is appended.
        With the CometBFT backend a new co-located validator joins the
        validator set the same way.
        """
        if not self._started or self._stopped:
            raise NetworkError("joins need a started, not-yet-stopped deployment")
        if self.context is None:
            raise NetworkError("this deployment was not built for runtime joins")
        log = self._activate_membership()
        if name is None:
            name = f"server-{self._next_server_index}"
        if name in self.network or any(s.name == name for s in self.servers):
            raise NetworkError(f"a node named {name!r} already exists")
        self._next_server_index += 1
        if algorithm is None:
            algorithm = self.config.algorithm
        keypair = self.scheme.generate_keypair(
            name, deployment_seed=self.config.workload.seed)
        server = get_algorithm(algorithm)(self.context, name, keypair)
        if self.shard_router is not None:
            # Shard placement before any group-scoped step below (donor
            # selection, store handoff) — the joiner's group key carries its
            # shard index.  Filling an under-sized shard first and opening a
            # fresh shard otherwise gives both elastic stories: replace a
            # lost member, or add a whole shard under load (router traffic
            # starts once the new shard reaches a routable quorum).
            self._enroll_in_shard(server)
        self.network.register(server)
        # Ledger hookup: a fresh co-located validator (CometBFT) or a fresh
        # sequencer handle (ideal/sqlite).
        add_validator = getattr(self.ledger_backend, "add_validator", None)
        if add_validator is not None:
            ledger_node = add_validator()
            handle = ledger_node
            committed = list(ledger_node.committed_blocks)
            if region is not None and isinstance(self.network.latency,
                                                RegionalLatency):
                self.network.latency.region_of[ledger_node.name] = region
        else:
            handle = self.ledger_backend.handle_for(name)  # type: ignore[attr-defined]
            committed = list(self.ledger_backend.blocks)  # type: ignore[attr-defined]
        server.connect_ledger(handle)
        if region is not None:
            self.region_of[name] = region
            if isinstance(self.network.latency, RegionalLatency):
                self.network.latency.region_of[name] = region
        server.attach_membership(log)
        server.begin_bootstrap()
        server.start()
        self.servers.append(server)
        # State transfer, stage 1: prime the batch store from a live peer so
        # the replay resolves hashes locally instead of storming the donors
        # with Request_batch traffic (the sqlite restart-resume treatment).
        store = getattr(server, "store", None)
        if store is not None:
            donors = self._active_peers(server.algorithm_group(), name)
            if donors:
                for digest, items in donors[0].store.items():
                    store.register_remote(digest, items)
        # State transfer, stage 2: replay the committed chain through the
        # normal FinalizeBlock path (crash recovery's replay, from genesis).
        for block in committed:
            server.finalize_block(block)
        join_record_at = self.sim.now

        def _check_caught_up() -> None:
            if server.departed:
                return  # left again before ever catching up
            pending = getattr(server, "_pending", None)
            if server.backlog == 0 and not server._busy and pending is None:
                server.end_bootstrap()
                epoch = log.join(name, at=join_record_at,
                                 effective_height=self._backend_height() + 2)
                log.joins[-1].caught_up_at = self.sim.now
                for member in self.servers:
                    member.attach_membership(log)
                del epoch
                return
            self.sim.call_in(_MEMBERSHIP_POLL, _check_caught_up)

        self.sim.call_in(_MEMBERSHIP_POLL, _check_caught_up)
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, name, "membership:join")
        return server

    def remove_server(self, name: str, drain: bool = True) -> None:
        """Leave: drain the server's obligations, then retire it cleanly.

        Draining stops new adds immediately, flushes the collector, keeps
        processing blocks until the pipeline and any in-flight Request_batch
        are empty, hands the batch store off to live peers (so pending
        hash-reversal obligations stay servable), and only then retires the
        server — distinct from a crash, which drops all of that on the floor.
        ``drain=False`` retires immediately (an impatient operator).
        """
        log = self._activate_membership()
        server = next((s for s in self.servers if s.name == name), None)
        if server is None:
            raise NetworkError(f"no Setchain server named {name!r} to remove")
        if len(self.servers) <= 1:
            raise NetworkError("cannot remove the last server")
        # With CometBFT, the co-located validator leaves the set now (two-
        # block activation); the node keeps validating until then.
        ledger_node = server._ledger
        remove_validator = getattr(self.ledger_backend, "remove_validator", None)
        node_name = getattr(ledger_node, "name", None)
        nodes = getattr(self.ledger_backend, "nodes", None)
        colocated = (remove_validator is not None and nodes is not None
                     and node_name in nodes)
        if colocated:
            remove_validator(node_name)
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, name, "membership:leave")
        if not drain:
            self._retire_server(server, drained=False)
            return
        server.begin_drain()

        def _shard_pipeline_dry() -> bool:
            # Whole-shard retirement: when no continuing (non-draining)
            # member would remain to process the shard's ledger traffic, the
            # last leavers must also wait for every element admitted to the
            # shard to commit — the origin filter means no other shard can
            # finish that work for them.  Unsharded drains are unchanged.
            if self.shard_router is None:
                return True
            shard = server.shard_index
            continuing = any(s is not server and s.shard_index == shard
                             and not s.departed and not s.draining
                             for s in self.servers)
            if continuing:
                return True
            added = self.metrics.shard_added.get(shard, 0)
            return self.metrics.shard_committed.get(shard, 0) >= added

        def _check_drained() -> None:
            if server.departed:
                return  # crashed-and-removed or retired through another path
            pending = getattr(server, "_pending", None)
            collector = getattr(server, "collector", None)
            collector_empty = collector is None or not collector.pending_view()
            if (server.backlog == 0 and not server._busy and pending is None
                    and collector_empty and _shard_pipeline_dry()):
                self._retire_server(server, drained=True)
                return
            self.sim.call_in(_MEMBERSHIP_POLL, _check_drained)

        self.sim.call_in(_MEMBERSHIP_POLL, _check_drained)

    def _retire_server(self, server: BaseSetchainServer, drained: bool) -> None:
        log = self._require_membership()
        # Hand off Request_batch obligations: every batch only this server
        # holds is copied to the live peers of its group before it goes away.
        store = getattr(server, "store", None)
        if store is not None:
            peers = self._active_peers(server.algorithm_group(), server.name)
            for digest, items in store.items():
                for peer in peers:
                    peer_store = getattr(peer, "store", None)
                    if peer_store is not None and digest not in peer_store:
                        peer_store.register_remote(digest, items)
        server.retire()
        self.network.unregister(server.name)
        self.servers.remove(server)
        self.departed_servers.append(server)
        log.leave(server.name, at=self.sim.now,
                  effective_height=self._backend_height() + 2, drained=drained)
        log.leaves[-1].retired_at = self.sim.now
        for member in self.servers:
            member.attach_membership(log)
        retire_node = getattr(self.ledger_backend, "retire_node", None)
        nodes = getattr(self.ledger_backend, "nodes", None)
        node_name = getattr(server._ledger, "name", None)
        if retire_node is not None and nodes is not None and node_name in nodes:
            retire_node(node_name)
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, server.name,
                                 "membership:retired")

    def add_validator(self, name: str | None = None) -> str:
        """Grow the consensus layer by one (app-less) validator."""
        add = getattr(self.ledger_backend, "add_validator", None)
        if add is None:
            raise NetworkError(
                f"ledger backend {self.config.ledger_backend!r} has no "
                "validator set to grow")
        return add(name).name

    def remove_validator(self, name: str) -> None:
        """Shrink the consensus layer by one validator (two-block delay).

        Refused while the validator still feeds a Setchain server — remove
        the server instead, which retires the co-located validator with it.
        """
        remove = getattr(self.ledger_backend, "remove_validator", None)
        nodes = getattr(self.ledger_backend, "nodes", None)
        if remove is None or nodes is None:
            raise NetworkError(
                f"ledger backend {self.config.ledger_backend!r} has no "
                "validator set to shrink")
        node = nodes.get(name)
        if node is None:
            raise NetworkError(f"unknown validator {name!r}")
        if node.app is not None:
            raise NetworkError(
                f"validator {name!r} still serves a Setchain server; remove "
                "the server instead")
        effective = remove(name)
        retire = getattr(self.ledger_backend, "retire_node", None)

        def _check_inactive() -> None:
            if name not in nodes:
                return
            if self._backend_height() >= effective:
                if retire is not None:
                    retire(name)
                return
            self.sim.call_in(_MEMBERSHIP_POLL, _check_inactive)

        self.sim.call_in(_MEMBERSHIP_POLL, _check_inactive)

    def membership_report(self) -> dict | None:
        """The ``RunResult.membership`` block; ``None`` for static runs."""
        log = self.membership
        if log is None or not log.changed:
            return None
        by_name = {server.name: server
                   for server in list(self.servers) + self.departed_servers}
        joins = []
        for record in log.joins:
            entry: dict = {"node": record.node, "at": record.at,
                           "effective_height": record.effective_height}
            if record.caught_up_at is not None:
                entry["caught_up_at"] = record.caught_up_at
                entry["catch_up_s"] = record.caught_up_at - record.at
            server = by_name.get(record.node)
            if server is not None and server.first_commit_at is not None:
                first = server.first_commit_at
                entry["first_commit_at"] = first
                entry["join_to_first_commit_s"] = max(0.0, first - record.at)
            joins.append(entry)
        leaves = []
        for record in log.leaves:
            entry = {"node": record.node, "at": record.at,
                     "effective_height": record.effective_height,
                     "drained": record.drained}
            if record.retired_at is not None:
                entry["retired_at"] = record.retired_at
            server = by_name.get(record.node)
            if server is not None:
                entry["drained_rejects"] = server.drained_rejects
            leaves.append(entry)
        current = log.current
        report = {
            "epochs": [epoch.to_dict() for epoch in log.epochs],
            "joins": joins,
            "leaves": leaves,
            "current": {"epoch": current.index,
                        "members": list(current.members),
                        "size": len(current.members),
                        "f": current.f,
                        "quorum": current.quorum},
        }
        validators = getattr(self.ledger_backend, "validators", None)
        if validators is not None and validators.version:
            report["validator_epochs"] = [
                {"effective_height": height, "members": list(members)}
                for height, members in validators.epochs()]
        return report

    # -- sharding -----------------------------------------------------------------

    def _enroll_in_shard(self, server: BaseSetchainServer) -> None:
        """Assign a runtime joiner to a shard and refresh the peer sets."""
        router = self.shard_router
        assert router is not None
        shard = router.placement_for_join(self.config.setchain.n_servers)
        server.shard_index = shard
        router.add_server(shard, server)
        members = frozenset(s.name for s in router.shard_servers[shard]
                            if not s.departed)
        for member in router.shard_servers[shard]:
            member.shard_peers = members
        self.metrics.assign_shard(server.name, shard)
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, server.name, f"shard:{shard}")

    def shard_report(self) -> dict | None:
        """The ``RunResult.shards`` block; ``None`` for unsharded runs.

        Per shard: its server roster, router admissions, added/committed
        element counts (observed by that shard's servers), first-commit time,
        and committed throughput over the paper's 50 s window.  The router's
        defer/reject counters and the admission skew ratio (max/mean per-shard
        load; 1.0 is perfectly even) summarise the partition quality.
        """
        router = self.shard_router
        if router is None:
            return None
        metrics = self.metrics
        per_shard: dict[str, dict] = {}
        for index, members in enumerate(router.shard_servers):
            added = metrics.shard_added.get(index, 0)
            committed = metrics.shard_committed.get(index, 0)
            times = metrics.shard_commit_times.get(index, [])
            entry: dict = {
                "servers": [s.name for s in members],
                "routed": router.per_shard_routed[index],
                "added": added,
                "committed": committed,
                "committed_fraction": (round(committed / added, 6)
                                       if added else 0.0),
                "avg_throughput_50s": round(
                    average_throughput(sorted(times), up_to=50.0), 1),
            }
            if times:
                entry["first_commit"] = round(min(times), 6)
            per_shard[str(index)] = entry
        return {
            "count": router.n_shards,
            "quorum": router.quorum,
            "router": router.counters(),
            "skew_ratio": router.skew_ratio(),
            "per_shard": per_shard,
        }


def build_latency(config: ExperimentConfig) -> LatencyModel:
    """Stage 1: the latency model, from the profile/topology registries.

    Without a topology this is exactly the legacy LAN profile.  With one, the
    intra-region profile is wrapped in a :class:`RegionalLatency` carrying
    the inter-region delay matrix.  Only the servers are mapped here; ledger
    nodes are co-located with their servers by :func:`build_deployment` once
    the backend has built them (see :func:`colocate_ledger_nodes`), so the
    mapping works for any registered backend, not one naming convention.
    """
    topology = config.topology
    network_delay = config.ledger.network_delay
    if topology is None:
        return get_latency_profile("lan")(network_delay)
    intra = get_latency_profile(topology.intra_profile)(0.0)
    region_of: dict[str, str] = {}
    for index, (region, _algorithm) in enumerate(config.server_assignments()):
        assert region is not None
        region_of[f"server-{index}"] = region
    links = {frozenset((a, b)): delay for a, b, delay in topology.links}
    return RegionalLatency(region_of, intra,
                           inter_delay=topology.inter_delay,
                           inter_jitter=topology.inter_jitter,
                           links=links, extra_delay=network_delay)


def colocate_ledger_nodes(latency: LatencyModel, network: Network,
                          ledger_handles: list, assignments: list) -> None:
    """Place each per-server ledger node in its server's region.

    ``ledger_handles[i]`` serves ``server-i``; when the handle is itself a
    node on the simulated network (e.g. a CometBFT validator), its consensus
    traffic must pay the same inter-region delays as its co-located server.
    Handles that are plain objects (the ideal ledger's sequencer handles)
    exchange no network messages and are skipped.
    """
    if not isinstance(latency, RegionalLatency):
        return
    for index, handle in enumerate(ledger_handles):
        name = getattr(handle, "name", None)
        region = assignments[index][0]
        if name is not None and name in network and region is not None:
            latency.region_of[name] = region


def build_deployment(config: ExperimentConfig, seed: int | None = None) -> Deployment:
    """Construct (but do not start) a full deployment for ``config``.

    Stages: simulator → latency model → network → signature scheme → ledger
    backend → one registered algorithm factory per server → injection
    clients.  Every stage resolves through the :mod:`repro.topology`
    registries, so third-party algorithms/backends/profiles registered from
    user code participate without core edits.
    """
    sim = Simulator(seed=seed if seed is not None else config.workload.seed)
    latency = build_latency(config)
    network = Network(sim, latency=latency)
    pki = PublicKeyInfrastructure()
    scheme = make_scheme(config.setchain.signature_scheme, pki)
    metrics = MetricsCollector()
    tracer: Tracer | None = None
    if config.trace_sample is not None:
        # The tracer draws from its own derived stream, never ``sim.rng``,
        # so enabling it cannot perturb the simulation's event schedule.
        tracer = Tracer(sample=config.trace_sample,
                        seed=seed if seed is not None else config.workload.seed)
        metrics.tracer = tracer

    n = config.total_servers
    ledger_backend, ledger_handles = get_ledger_backend(config.ledger_backend)(
        sim, network, n, config)

    assignments = config.server_assignments()
    colocate_ledger_nodes(latency, network, ledger_handles, assignments)
    region_of: dict[str, str] = {}
    context = DeploymentContext(sim=sim, network=network, config=config,
                                scheme=scheme, metrics=metrics)
    servers: list[BaseSetchainServer] = []
    for index, (region, algorithm) in enumerate(assignments):
        name = f"server-{index}"
        keypair = scheme.generate_keypair(name, deployment_seed=config.workload.seed)
        server = get_algorithm(algorithm)(context, name, keypair)
        network.register(server)
        server.connect_ledger(ledger_handles[index])
        servers.append(server)
        if region is not None:
            region_of[name] = region
    if region_of:
        metrics.set_region_map(region_of)

    shard_router: ShardRouter | None = None
    if config.shards is not None:
        # Block placement: servers [k*n_servers, (k+1)*n_servers) form shard
        # k, each a multi-tenant group over the shared ledger with the
        # per-shard f+1 commit quorum.
        per_shard = config.setchain.n_servers
        shard_lists = [servers[k * per_shard:(k + 1) * per_shard]
                       for k in range(config.shards)]
        for shard_index, members in enumerate(shard_lists):
            names = frozenset(server.name for server in members)
            for server in members:
                server.shard_index = shard_index
                server.shard_peers = names
                if tracer is not None:
                    tracer.annotate(0.0, server.name, f"shard:{shard_index}")
        shard_router = ShardRouter(shard_lists,
                                   quorum=config.setchain.quorum)
        metrics.set_shard_map(shard_router.shard_map())

    injected: list[Element] = []

    def on_element(element: Element) -> None:
        injected.append(element)
        metrics.record_injected(element, sim.now)

    def on_elements(elements: list[Element]) -> None:
        injected.extend(elements)
        metrics.record_injected_many(elements, sim.now)

    clients = ClientPool(sim, targets=list(servers), workload=config.workload,
                         on_element=on_element, on_elements=on_elements,
                         router=shard_router)

    # Sharded runs pin the membership f to the per-shard tolerance: joins and
    # leaves must never dilute a shard's f+1 commit quorum with the (much
    # larger) deployment-wide server count.
    membership = MembershipLog([server.name for server in servers],
                               explicit_f=(config.setchain.max_faulty
                                           if config.shards is not None
                                           else config.setchain.f))
    deployment = Deployment(config=config, sim=sim, network=network, scheme=scheme,
                            servers=servers, clients=clients, metrics=metrics,
                            ledger_backend=ledger_backend, injected_elements=injected,
                            region_of=region_of, context=context,
                            membership=membership, tracer=tracer,
                            shard_router=shard_router)
    deployment._next_server_index = n
    if config.faults is not None and config.faults.events:
        # Construction only derives an RNG stream (no draws) and allocates
        # timers at start(); fault-free runs never reach here, so their
        # schedules and artifacts are untouched.
        deployment.fault_injector = FaultInjector(deployment, config.faults)
    return deployment


def run_experiment(config: ExperimentConfig, seed: int | None = None,
                   to_completion: bool = False) -> Deployment:
    """Build, start, and run a deployment; returns it with metrics populated."""
    deployment = build_deployment(config, seed=seed)
    deployment.start()
    if to_completion:
        deployment.run_to_completion()
    else:
        deployment.run()
    return deployment
