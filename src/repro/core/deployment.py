"""Cluster deployment: build a complete, runnable Setchain system.

A :class:`Deployment` mirrors the paper's evaluation platform: ``n`` docker
containers, each holding one client, one collector, and one ledger server,
become ``n`` triples of (injection client, Setchain server, ledger node) wired
over a latency-modelled network, plus a metrics collector standing in for the
log analysis pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.metrics import MetricsCollector
from ..compressor.factory import make_compressor
from ..config import ExperimentConfig
from ..crypto.keys import PublicKeyInfrastructure
from ..crypto.signatures import SignatureScheme, make_scheme
from ..errors import ConfigurationError
from ..ledger.cometbft.engine import CometBFTNetwork
from ..ledger.ideal import IdealLedger
from ..net.latency import lan_profile
from ..net.network import Network
from ..sim.scheduler import Simulator
from ..workload.clients import ClientPool
from ..workload.elements import Element
from .base import BaseSetchainServer
from .batch_store import BatchStore
from .compresschain import CompresschainServer
from .hashchain import HashchainServer
from .properties import check_all
from .types import SetchainView
from .vanilla import VanillaServer


@dataclass
class Deployment:
    """Everything built for one experiment run."""

    config: ExperimentConfig
    sim: Simulator
    network: Network
    scheme: SignatureScheme
    servers: list[BaseSetchainServer]
    clients: ClientPool
    metrics: MetricsCollector
    ledger_backend: object
    injected_elements: list[Element] = field(default_factory=list)

    # -- running ------------------------------------------------------------------

    def start(self) -> None:
        """Start ledger block production, servers, and client injection."""
        backend = self.ledger_backend
        backend.start()  # type: ignore[attr-defined]
        for server in self.servers:
            server.start()
        self.clients.start()

    def run(self, until: float | None = None) -> None:
        """Run the simulation for the configured experiment duration.

        A no-op when simulated time is already past the horizon, so
        :meth:`run_to_completion` works from any point in a run.
        """
        horizon = until if until is not None else self.config.total_duration
        self.sim.run_until(max(horizon, self.sim.now))

    def run_to_completion(self, extra_time: float = 200.0,
                          poll: float = 1.0) -> None:
        """Run past the configured horizon until every injected element commits
        (or ``extra_time`` more simulated seconds elapse)."""
        self.run()
        deadline = self.sim.now + extra_time

        def all_committed() -> bool:
            return (self.clients.all_finished
                    and self.metrics.committed_count >= len(self.injected_elements) > 0)

        self.sim.run_until_condition(all_committed, check_interval=poll,
                                     max_time=deadline)

    # -- views and checks ------------------------------------------------------------

    def views(self) -> dict[str, SetchainView]:
        """get() snapshots of every (assumed-correct) server."""
        return {server.name: server.get() for server in self.servers}

    def check_properties(self, include_liveness: bool = True):  # type: ignore[no-untyped-def]
        """Run the Property 1-8 checkers over the current views."""
        return check_all(self.views(), quorum=self.config.setchain.quorum,
                         all_added=self.injected_elements,
                         include_liveness=include_liveness)

    @property
    def committed_fraction(self) -> float:
        """Fraction of injected elements committed so far (the efficiency metric)."""
        if not self.injected_elements:
            return 0.0
        return self.metrics.committed_count / len(self.injected_elements)


def build_deployment(config: ExperimentConfig, seed: int | None = None) -> Deployment:
    """Construct (but do not start) a full deployment for ``config``."""
    sim = Simulator(seed=seed if seed is not None else config.workload.seed)
    latency = lan_profile(network_delay=config.ledger.network_delay)
    network = Network(sim, latency=latency)
    pki = PublicKeyInfrastructure()
    scheme = make_scheme(config.setchain.signature_scheme, pki)
    metrics = MetricsCollector()

    n = config.setchain.n_servers
    algorithm = config.algorithm
    light = algorithm.endswith("-light")
    base_algorithm = algorithm.replace("-light", "")

    # Ledger backend: either a full CometBFT validator per server or one
    # shared ideal sequencer.
    if config.ledger_backend == "cometbft":
        cometbft = CometBFTNetwork(sim, network, n, config.ledger)
        ledger_handles = cometbft.node_list()
        ledger_backend: object = cometbft
    else:
        ideal = IdealLedger(sim, config.ledger)
        ledger_handles = [ideal.handle_for(f"server-{i}") for i in range(n)]
        ledger_backend = ideal

    shared_store = BatchStore() if (light and base_algorithm == "hashchain") else None

    servers: list[BaseSetchainServer] = []
    for index in range(n):
        name = f"server-{index}"
        keypair = scheme.generate_keypair(name, deployment_seed=config.workload.seed)
        if base_algorithm == "vanilla":
            server: BaseSetchainServer = VanillaServer(
                name, sim, config.setchain, scheme, keypair, metrics=metrics)
        elif base_algorithm == "compresschain":
            compressor = make_compressor(config.setchain.compressor)
            server = CompresschainServer(name, sim, config.setchain, scheme, keypair,
                                         compressor, metrics=metrics, light=light)
        elif base_algorithm == "hashchain":
            server = HashchainServer(name, sim, config.setchain, scheme, keypair,
                                     metrics=metrics, light=light,
                                     shared_store=shared_store)
        else:  # pragma: no cover - guarded by ExperimentConfig validation
            raise ConfigurationError(f"unknown algorithm {algorithm!r}")
        network.register(server)
        server.connect_ledger(ledger_handles[index])
        servers.append(server)

    injected: list[Element] = []

    def on_element(element: Element) -> None:
        injected.append(element)
        metrics.record_injected(element, sim.now)

    clients = ClientPool(sim, targets=list(servers), workload=config.workload,
                         on_element=on_element)

    return Deployment(config=config, sim=sim, network=network, scheme=scheme,
                      servers=servers, clients=clients, metrics=metrics,
                      ledger_backend=ledger_backend, injected_elements=injected)


def run_experiment(config: ExperimentConfig, seed: int | None = None,
                   to_completion: bool = False) -> Deployment:
    """Build, start, and run a deployment; returns it with metrics populated."""
    deployment = build_deployment(config, seed=seed)
    deployment.start()
    if to_completion:
        deployment.run_to_completion()
    else:
        deployment.run()
    return deployment
