"""Validation predicates used by the algorithms.

These correspond to the paper's ``valid_element``, ``valid_proof`` and
``valid_hash`` helper functions.  They are deliberately side-effect free so
both servers and property checkers can call them.
"""

from __future__ import annotations

from typing import Iterable

from ..crypto.hashing import hash_batch, hash_epoch
from ..crypto.signatures import SignatureScheme
from ..workload.elements import Element
from .types import EpochProof, HashBatch, epoch_proof_payload, hash_batch_payload


def valid_element(element: object) -> bool:
    """Syntactic/semantic validity of a client element.

    The simulation encodes a failed client signature or semantic check as
    ``Element.valid == False`` (set by fault-injection helpers); correct
    servers must discard such elements even if a Byzantine server put them in
    the ledger.
    """
    return isinstance(element, Element) and element.valid and element.size_bytes > 0


def valid_proof(proof: object, scheme: SignatureScheme,
                epoch_elements: Iterable[Element] | None) -> bool:
    """Check an epoch-proof against the locally known epoch content.

    A proof is valid when (i) it is well-formed, (ii) the local server already
    has the epoch it refers to and its hash matches the proof's, and (iii) the
    signature verifies under the claimed signer's registered public key.
    """
    if not isinstance(proof, EpochProof):
        return False
    if epoch_elements is None:
        return False
    expected_hash = hash_epoch(proof.epoch_number, epoch_elements)
    if expected_hash != proof.epoch_hash:
        return False
    return scheme.verify(proof.signer, epoch_proof_payload(proof.epoch_number,
                                                           proof.epoch_hash),
                         proof.signature)


def valid_hash_batch(hash_batch_obj: object, scheme: SignatureScheme) -> bool:
    """Check a Hashchain hash-batch: well-formed and signed by its claimed signer."""
    if not isinstance(hash_batch_obj, HashBatch):
        return False
    return scheme.verify(hash_batch_obj.signer,
                         hash_batch_payload(hash_batch_obj.batch_hash),
                         hash_batch_obj.signature)


#: Identity-keyed memo of ``hash_batch`` results: batches travel through the
#: simulation by reference, so every server that resolves the same hash
#: validates the *same tuple object*.  Entries pin the tuple (a strong
#: reference), which is what makes the ``id`` key safe — a pinned object's id
#: cannot be reused.  Cleared wholesale at capacity to stay bounded across
#: sweeps.
_MATCH_MEMO: dict[int, tuple[tuple[object, ...], str]] = {}
_MATCH_MEMO_MAX = 4096


def batch_matches_hash(items: Iterable[object], expected_hash: str) -> bool:
    """True iff ``Hash(items)`` equals the hash a hash-batch advertised."""
    if isinstance(items, tuple):
        entry = _MATCH_MEMO.get(id(items))
        if entry is not None and entry[0] is items:
            return entry[1] == expected_hash
        digest = hash_batch(items)
        if len(_MATCH_MEMO) >= _MATCH_MEMO_MAX:
            _MATCH_MEMO.clear()
        _MATCH_MEMO[id(items)] = (items, digest)
        return digest == expected_hash
    return hash_batch(items) == expected_hash


def split_batch(items: Iterable[object]) -> tuple[list[Element], list[EpochProof]]:
    """Split mixed batch contents into (elements, epoch-proofs), dropping anything else."""
    elements: list[Element] = []
    proofs: list[EpochProof] = []
    for item in items:
        if isinstance(item, Element):
            elements.append(item)
        elif isinstance(item, EpochProof):
            proofs.append(item)
    return elements, proofs


def split_batch_valid(items: Iterable[object]) -> tuple[list[Element], list[EpochProof]]:
    """One-pass :func:`split_batch` + :func:`valid_element` filter.

    Exactly equivalent to splitting and then testing each element — invalid
    elements are silently dropped, order is preserved — but the batch hot
    paths (Hashchain absorb, Compresschain decompress) pay one type dispatch
    per item instead of three predicate calls.
    """
    elements: list[Element] = []
    proofs: list[EpochProof] = []
    element_append = elements.append
    proof_append = proofs.append
    for item in items:
        if isinstance(item, Element):
            if item.valid and item.size_bytes > 0:
                element_append(item)
        elif isinstance(item, EpochProof):
            proof_append(item)
    return elements, proofs
