"""Local hash→batch registry used by Hashchain (``hash_to_batch`` / ``Register_batch``).

Each server keeps the batches it has seen keyed by their hash so it can serve
``Request_batch`` calls from peers.  The store also tracks which hashes were
registered locally (our own collector flushes) versus recovered from peers,
which the analysis layer uses to count hash-reversal traffic.
"""

from __future__ import annotations

from ..errors import BatchUnavailableError


class BatchStore:
    """hash → tuple(items) with provenance accounting."""

    def __init__(self) -> None:
        self._batches: dict[str, tuple[object, ...]] = {}
        self._local_hashes: set[str] = set()
        #: hash → summed payload bytes, filled lazily by :meth:`payload_size`.
        self._sizes: dict[str, int] = {}
        #: Number of Request_batch calls served to peers.
        self.served_requests = 0
        #: Number of batches recovered from peers (hash-reversal successes).
        self.recovered = 0

    def __contains__(self, batch_hash: str) -> bool:
        return batch_hash in self._batches

    def __len__(self) -> int:
        return len(self._batches)

    def register_local(self, batch_hash: str, items: tuple[object, ...]) -> None:
        """``Register_batch`` for a batch this server built itself."""
        self._batches[batch_hash] = items
        self._local_hashes.add(batch_hash)

    def register_remote(self, batch_hash: str, items: tuple[object, ...]) -> None:
        """Store a batch recovered from a peer via ``Request_batch``."""
        if batch_hash not in self._batches:
            self.recovered += 1
        self._batches[batch_hash] = items

    def get(self, batch_hash: str) -> tuple[object, ...] | None:
        """The batch behind ``batch_hash``, or ``None`` if unknown."""
        return self._batches.get(batch_hash)

    def require(self, batch_hash: str) -> tuple[object, ...]:
        """Like :meth:`get` but raises :class:`BatchUnavailableError` when missing."""
        items = self._batches.get(batch_hash)
        if items is None:
            raise BatchUnavailableError(f"no batch stored for hash {batch_hash[:16]}…")
        return items

    def serve(self, batch_hash: str) -> tuple[object, ...] | None:
        """Answer a peer's Request_batch; counts served requests."""
        items = self._batches.get(batch_hash)
        if items is not None:
            self.served_requests += 1
        return items

    def payload_size(self, batch_hash: str) -> int:
        """Summed ``size_bytes`` of a stored batch, computed once per hash.

        A batch is served to every peer that missed the multicast, so the
        per-item size scan would otherwise repeat per requester.  Batches are
        immutable tuples of frozen items, so the first answer stays correct.
        """
        size = self._sizes.get(batch_hash)
        if size is None:
            items = self._batches.get(batch_hash)
            if items is None:
                return 0
            size = sum(getattr(item, "size_bytes", 0) for item in items)
            self._sizes[batch_hash] = size
        return size

    def is_local(self, batch_hash: str) -> bool:
        """True if this server originated the batch (no hash-reversal needed)."""
        return batch_hash in self._local_hashes

    def items(self) -> list[tuple[str, tuple[object, ...]]]:
        """Every stored ``(hash, batch)`` pair, for journaling/checkpointing."""
        return list(self._batches.items())
