"""Shared machinery of the three Setchain server algorithms.

A :class:`BaseSetchainServer` is simultaneously:

* a :class:`~repro.net.node.NetworkNode` (so Hashchain servers can exchange
  ``Request_batch`` traffic directly), and
* an ABCI :class:`~repro.ledger.abci.Application` receiving ``FinalizeBlock``
  callbacks from its co-located ledger node — the paper's ``new_block(B)``.

Block processing runs through a *serial work queue* with modelled service
times (per-transaction overhead plus per-element validation cost for foreign
batches).  This is what turns the paper's observed processing bottlenecks —
Compresschain's decompression/validation and Hashchain's hash-reversal — into
measurable backlog in the simulation instead of instantaneous handlers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..config import SetchainConfig
from ..crypto.keys import KeyPair
from ..crypto.signatures import SignatureScheme
from ..errors import SetchainError
from ..ledger.abci import Application, LedgerInterface
from ..ledger.types import Block, Transaction, new_transaction
from ..net.node import NetworkNode
from ..sim.scheduler import Simulator
from ..workload.elements import Element
from .proofs import create_epoch_proof
from .types import EpochProof, SetchainView, epoch_proof_payload
from .validation import valid_element

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.metrics import MetricsCollector
    from .byzantine import ByzantineBehaviour


class BaseSetchainServer(NetworkNode, Application):
    """State and behaviour common to Vanilla, Compresschain, and Hashchain."""

    #: Human-readable algorithm name, overridden by subclasses.
    algorithm = "base"

    def __init__(self, name: str, sim: Simulator, config: SetchainConfig,
                 scheme: SignatureScheme, keypair: KeyPair,
                 metrics: "MetricsCollector | None" = None) -> None:
        NetworkNode.__init__(self, name, sim)
        if keypair.owner != name:
            raise SetchainError("server keypair must be issued to the server itself")
        self.config = config
        self.scheme = scheme
        self.keypair = keypair
        self.metrics = metrics
        #: Lifecycle tracer shared through the metrics collector; ``None``
        #: when tracing is off, so hot paths pay one identity check only.
        self.tracer = getattr(metrics, "tracer", None)
        # Setchain state (paper §2): the_set, history, epoch, proofs.
        self._the_set: dict[int, Element] = {}
        self._history: dict[int, set[Element]] = {}
        self._epoch = 0
        self._proofs: set[EpochProof] = set()
        self._epoched_ids: set[int] = set()
        #: Cache of this server's own epoch hashes, so incoming proofs can be
        #: checked against the epoch content without re-hashing the epoch for
        #: every proof (the dominant cost at high rates).
        self._epoch_hashes: dict[int, str] = {}
        # Per-epoch distinct proof signers, for the f+1 commit rule.
        self._proof_signers: dict[int, set[str]] = {}
        self._committed_epochs: set[int] = set()
        #: Proofs for epochs this server has not created yet.  Under faults,
        #: content recovery can lag the ledger, so a peer's proof may arrive
        #: before the local epoch exists; buffered proofs are re-absorbed
        #: after each epoch creation.  Never populated in fault-free runs.
        self._future_proofs: set[EpochProof] = set()
        # Ledger hookup.
        self._ledger: LedgerInterface | None = None
        # Serial block-processing pipeline.
        self._work: deque[tuple[str, Block, Transaction | None]] = deque()
        self._busy = False
        # Pipeline generation: scheduled continuations carry the generation
        # they belong to and die if a crash has bumped it since — a crash
        # cannot cancel the already-queued sim.call_in continuation, and a
        # stale one resuming after recovery would run a second concurrent
        # chain through the strictly-serial pipeline.
        self._pipeline_run = 0
        # Crash-recovery: blocks the co-located ledger node finalised while
        # this server was down, replayed in order on recovery (the consensus
        # engine persists the chain; the application replays it — ABCI's
        # replay-from-last-commit, collapsed to the crash window).
        self._missed_blocks: list[Block] = []
        # Observability counters.
        self.rejected_elements = 0
        self.duplicate_adds = 0
        self.invalid_proofs = 0
        self.blocks_processed = 0
        #: Client adds refused because the server was crash-faulted.
        self.crashed_rejects = 0
        #: Active Byzantine behaviour strategy; ``None`` means correct.  The
        #: hot paths only pay an attribute check, so fault-free runs are
        #: untouched (goldens stay byte-identical).
        self._byz: "ByzantineBehaviour | None" = None
        #: Whether this server *ever* ran a Byzantine behaviour.  A reverted
        #: server is still a faulty process in the paper's model (it may hold
        #: silently dropped elements in its the_set forever), so property
        #: checks exclude it for the rest of the run.
        self.ever_byzantine = False
        #: Per-behaviour attribution counters (withheld requests, bogus
        #: hashes, ...), mirrored into the metrics collector for the
        #: resilience report.
        self.byzantine_counters: dict[str, int] = {}
        #: Request_batch messages a withholding behaviour buffered and could
        #: not serve at detach time because the server was crash-faulted;
        #: replayed by :meth:`_on_recover`.
        self._deferred_request_replays: list = []
        # Dynamic membership (None in static deployments — every check below
        # is a flag test, so membership-free runs stay byte-identical).
        self._membership = None  # type: ignore[assignment]
        # Shard tenancy (both None in unsharded deployments: the group suffix
        # and the finalize_block origin filter are single flag tests, so
        # unsharded runs stay byte-identical).  ``shard_peers`` is the name
        # set of this server's own shard (itself included) — same-algorithm
        # tenants over one shared ledger produce indistinguishable payloads,
        # so isolation needs the *origin* of a transaction, not its type.
        self.shard_index: int | None = None
        self.shard_peers: frozenset[str] | None = None
        #: Height of the last block this server finalized; keys the current
        #: quorum when membership changes mid-run.
        self._last_seen_height = 0
        #: True while a joined server replays the chain and catches up; it
        #: does not publish proofs or hash-batches until caught up.
        self.bootstrapping = False
        #: True while a leaving server flushes its pipeline before retiring.
        self.draining = False
        #: True once the server has retired from the cluster for good.
        self.departed = False
        #: Client adds refused because the server was draining or departed.
        self.drained_rejects = 0
        #: Simulated time the server retired (``None`` while a member).
        self.retired_at: float | None = None
        #: Simulated time this server first observed an f+1 epoch commit
        #: (drives the join-to-first-commit metric for joined servers).
        self.first_commit_at: float | None = None

    # -- wiring ----------------------------------------------------------------

    def connect_ledger(self, ledger: LedgerInterface) -> None:
        """Attach the co-located ledger node and subscribe for block callbacks."""
        if self._ledger is not None:
            raise SetchainError(f"server {self.name!r} is already connected to a ledger")
        self._ledger = ledger
        ledger.subscribe(self)

    @property
    def ledger(self) -> LedgerInterface:
        if self._ledger is None:
            raise SetchainError(f"server {self.name!r} has no ledger attached")
        return self._ledger

    def start(self) -> None:
        """Hook for subclasses that need startup work (default: none)."""

    # -- dynamic membership --------------------------------------------------------

    def attach_membership(self, log) -> None:
        """Track quorum changes through a :class:`~repro.core.membership.MembershipLog`."""
        self._membership = log

    @property
    def current_quorum(self) -> int:
        """The f+1 quorum governing the last block this server processed."""
        if self._membership is None:
            return self.config.quorum
        return self._membership.quorum_at_height(self._last_seen_height)

    def _quorum_at(self, height: int) -> int:
        """The quorum in force at ledger ``height``."""
        if self._membership is None:
            return self.config.quorum
        return self._membership.quorum_at_height(height)

    def begin_bootstrap(self) -> None:
        """Enter catch-up mode: process blocks but publish nothing."""
        self.bootstrapping = True

    def end_bootstrap(self) -> None:
        """Caught up: start publishing proofs and counting toward quorums."""
        self.bootstrapping = False

    def begin_drain(self) -> None:
        """Stop accepting elements; keep processing blocks until retired."""
        self.draining = True

    def retire(self) -> None:
        """Leave the cluster cleanly (distinct from a crash: no replay later)."""
        self.departed = True
        self.draining = False
        self.retired_at = self.sim.now
        self._work.clear()
        self._missed_blocks.clear()
        self._busy = False
        self._pipeline_run += 1  # orphan any queued continuation

    # -- Byzantine behaviour strategies -------------------------------------------

    @property
    def is_byzantine(self) -> bool:
        """Whether a Byzantine behaviour strategy is currently attached."""
        return self._byz is not None

    @property
    def byzantine_behaviour(self) -> str | None:
        """Registry name of the active behaviour (``None`` when correct)."""
        return self._byz.name if self._byz is not None else None

    def become_byzantine(self, behaviour: "ByzantineBehaviour | str") -> None:
        """Adopt a Byzantine behaviour strategy, mid-run or at construction.

        ``behaviour`` is an instance or a registered name (a fresh instance is
        created — behaviour state is private to one server).  Switching
        behaviours detaches the previous one first, running its detach
        side effects (e.g. ``withhold`` serving its buffered requests).
        """
        from .byzantine import resolve_behaviour
        resolved = resolve_behaviour(behaviour)
        if self._byz is not None:
            self.become_correct()
        self._byz = resolved
        self.ever_byzantine = True
        resolved.on_attach(self)

    def become_correct(self) -> None:
        """Shed the active Byzantine behaviour (idempotent).

        The behaviour's ``on_detach`` runs first — this is where ``withhold``
        answers its buffered ``Request_batch`` messages so consolidation of
        the withheld hashes resumes.
        """
        behaviour, self._byz = self._byz, None
        if behaviour is not None:
            behaviour.on_detach(self)

    def _count_byzantine(self, counter: str) -> None:
        """Attribute one Byzantine action to this server (and the metrics)."""
        self.byzantine_counters[counter] = (
            self.byzantine_counters.get(counter, 0) + 1)
        if self.metrics is not None:
            self.metrics.record_byzantine(self.name, counter)
        if self.tracer is not None:
            self.tracer.annotate(self.sim.now, self.name,
                                 f"byzantine:{counter}")

    def _byz_outgoing_proof(self, proof: EpochProof) -> EpochProof | None:
        """Filter an epoch-proof this server is about to publish."""
        if self._byz is None:
            return proof
        return self._byz.outgoing_proof(self, proof)

    def algorithm_group(self) -> str:
        """Interoperability group key for heterogeneous deployments.

        Servers in the same group speak the same ledger wire format and are
        expected to agree on epochs (Properties 3 and 6 are checked within a
        group).  By default every algorithm is its own group — even the light
        variants, whose out-of-band stores do not serve the full variants'
        batches.  In a sharded deployment each shard is its own tenant, so
        the shard index joins the key (``hashchain#shard2``) and all the
        group-scoped machinery — property checks, peer selection, state
        transfer — becomes shard-scoped for free.
        """
        if self.shard_index is not None:
            from ..shard.router import shard_group
            return shard_group(self.algorithm, self.shard_index)
        return self.algorithm

    # -- Setchain API (paper §2) -------------------------------------------------

    def add(self, element: Element) -> bool:
        """``S.add_v(e)``: accept a valid, new element into ``the_set``.

        Returns ``True`` if the element was accepted.  Invalid elements are
        rejected (the pseudocode's ``assert valid_element(e)``); duplicates are
        ignored.  A crash-faulted server refuses adds entirely (the client's
        request fails against a downed host).
        """
        if self.crashed:
            self.crashed_rejects += 1
            return False
        if self.draining or self.departed:
            self.drained_rejects += 1
            return False
        if not valid_element(element):
            self.rejected_elements += 1
            return False
        if element.element_id in self._the_set:
            self.duplicate_adds += 1
            return False
        self._the_set[element.element_id] = element
        if self.metrics is not None:
            self.metrics.record_added(element, self.name, self.sim.now)
        if self.tracer is not None:
            self.tracer.phase_one(element.element_id, "collector_queued",
                                  self.sim.now, self.name)
        byz = self._byz
        if byz is None or not byz.on_after_add(self, element):
            self._after_add(element)
        return True

    def add_many(self, elements: list[Element]) -> int:
        """Batched ``S.add_v``: one pass over a same-tick injection burst.

        Returns the number of accepted elements.  Outcome per element — the
        accept/reject verdict, ``the_set`` content, collector flush
        boundaries, ledger appends, metrics — is exactly that of calling
        :meth:`add` element by element; only the per-call dispatch is
        amortised.  Byzantine servers fall back to the scalar path so
        behaviour hooks observe every element individually.
        """
        if self.crashed:
            self.crashed_rejects += len(elements)
            return 0
        if self.draining or self.departed:
            self.drained_rejects += len(elements)
            return 0
        if self._byz is not None:
            add = self.add
            return sum(1 for element in elements if add(element))
        the_set = self._the_set
        accepted: list[Element] = []
        keep = accepted.append
        rejected = 0
        duplicates = 0
        for element in elements:
            if not (isinstance(element, Element) and element.valid
                    and element.size_bytes > 0):
                rejected += 1
                continue
            element_id = element.element_id
            if element_id in the_set:
                duplicates += 1
                continue
            the_set[element_id] = element
            keep(element)
        self.rejected_elements += rejected
        self.duplicate_adds += duplicates
        if accepted:
            if self.metrics is not None:
                self.metrics.record_added_many(accepted, self.name, self.sim.now)
            if self.tracer is not None:
                self.tracer.phase_many([e.element_id for e in accepted],
                                       "collector_queued", self.sim.now,
                                       self.name)
            self._after_add_many(accepted)
        return len(accepted)

    def get(self) -> SetchainView:
        """``S.get_v()``: snapshot of ``(the_set, history, epoch, proofs)``."""
        return SetchainView.snapshot(self._the_set, self._history, self._epoch,
                                     self._proofs)

    # -- state helpers shared by the algorithms -----------------------------------

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def the_set_size(self) -> int:
        return len(self._the_set)

    def epoch_elements(self, epoch_number: int) -> set[Element] | None:
        return self._history.get(epoch_number)

    def committed_epoch_numbers(self) -> set[int]:
        """Epochs this server has seen reach f+1 distinct proofs."""
        return set(self._committed_epochs)

    def _known_in_history(self, element: Element) -> bool:
        return element.element_id in self._epoched_ids

    def _add_to_the_set(self, element: Element) -> None:
        self._the_set.setdefault(element.element_id, element)

    def _record_new_epoch(self, elements: set[Element], block: Block) -> EpochProof:
        """Create epoch ``self._epoch + 1`` from ``elements`` and sign its proof.

        Takes ownership of ``elements``: every caller hands in a freshly built
        set it never touches again, so the history can keep it without the
        defensive copy (an epoch-sized set build per server otherwise).
        """
        self._epoch += 1
        self._history[self._epoch] = elements
        element_ids = [element.element_id for element in elements]
        self._epoched_ids.update(element_ids)
        if self.metrics is not None:
            self.metrics.record_epoch_created(self.name, self._epoch, len(elements),
                                              self.sim.now)
            self.metrics.record_epoch_assigned_many(element_ids, self._epoch,
                                                    self.sim.now)
        if self.tracer is not None:
            self.tracer.phase_many(element_ids, "epoch_assigned",
                                   self.sim.now, self.name)
        proof = create_epoch_proof(self.scheme, self.keypair, self._epoch, elements)
        self._epoch_hashes[self._epoch] = proof.epoch_hash
        if self._future_proofs:
            ready = [p for p in self._future_proofs if p.epoch_number <= self._epoch]
            if ready:
                self._future_proofs.difference_update(ready)
                self._absorb_proofs(ready)
        return proof

    def _proof_matches_local_epoch(self, proof: EpochProof) -> bool:
        """Equivalent of ``valid_proof`` using the cached local epoch hash."""
        expected = self._epoch_hashes.get(proof.epoch_number)
        if expected is None or expected != proof.epoch_hash:
            return False
        return self.scheme.verify(
            proof.signer,
            epoch_proof_payload(proof.epoch_number, proof.epoch_hash),
            proof.signature)

    def _absorb_proofs(self, candidates: list[EpochProof]) -> None:
        """Validate and store epoch-proofs, tracking the f+1 commit rule.

        Proofs for epochs beyond the locally created ones are buffered (the
        epoch may still be filling in — see ``_future_proofs``); proofs that
        mismatch an existing epoch are counted invalid and dropped.

        Signature checks for the whole batch go through
        ``scheme.verify_many`` — one cache pass, one backend batch — and every
        per-proof outcome (invalid counters, buffering, signer sets, commit
        points) is identical to checking the proofs one at a time: nothing a
        proof writes in this method changes how a later proof in the same
        batch routes through pass 1, and the quorum cannot move mid-call.
        """
        history = self._history
        epoch_hashes = self._epoch_hashes
        checkable: list[tuple[EpochProof, set[Element]]] = []
        triples: list[tuple[str, str, bytes]] = []
        # A proof that reaches the signature check has epoch_hash equal to the
        # locally cached hash, so the signed payload is a function of the
        # epoch number alone — build it once per epoch, not once per signer.
        payloads: dict[int, str] = {}
        known = self._proofs
        for proof in candidates:
            if proof in known:
                # Already accepted: its epoch exists, its hash matches the
                # cached one, its signature verifies (deterministically), and
                # pass 3 would dedup it — skipping here changes no counter,
                # no buffer, and no commit.  Every server re-absorbs every
                # ledger batch, so accepted proofs dominate the candidates.
                continue
            number = proof.epoch_number
            elements = history.get(number)
            if elements is None:
                if number > self._epoch:
                    self._future_proofs.add(proof)
                else:
                    self.invalid_proofs += 1
                continue
            expected = epoch_hashes.get(number)
            if expected is None or expected != proof.epoch_hash:
                self.invalid_proofs += 1
                continue
            payload = payloads.get(number)
            if payload is None:
                payloads[number] = payload = epoch_proof_payload(number, expected)
            checkable.append((proof, elements))
            triples.append((proof.signer, payload, proof.signature))
        if not checkable:
            return
        verdicts = self.scheme.verify_many(triples)
        # Apply in input order: commit observation order feeds the metrics.
        quorum = self.current_quorum
        proofs = self._proofs
        signer_sets = self._proof_signers
        committed = self._committed_epochs
        for (proof, elements), ok in zip(checkable, verdicts):
            if not ok:
                self.invalid_proofs += 1
                continue
            if proof in proofs:
                continue
            proofs.add(proof)
            signers = signer_sets.setdefault(proof.epoch_number, set())
            signers.add(proof.signer)
            if (len(signers) >= quorum
                    and proof.epoch_number not in committed):
                committed.add(proof.epoch_number)
                if self.first_commit_at is None:
                    self.first_commit_at = self.sim.now
                if self.metrics is not None:
                    self.metrics.record_epoch_committed(
                        proof.epoch_number, elements, self.sim.now,
                        observer=self.name)

    def _on_quorum_change(self, quorum: int, block: Block) -> None:
        """React to a membership epoch boundary changing the f+1 quorum.

        A *decreased* quorum can make previously sub-threshold epochs commit
        retroactively: re-evaluate the signer counts already on hand.
        Subclasses extend this (Hashchain re-checks its consolidation
        trigger).  Never called in membership-free runs.
        """
        for epoch_number, signers in self._proof_signers.items():
            if (len(signers) >= quorum
                    and epoch_number not in self._committed_epochs
                    and epoch_number in self._history):
                self._committed_epochs.add(epoch_number)
                if self.first_commit_at is None:
                    self.first_commit_at = self.sim.now
                if self.metrics is not None:
                    self.metrics.record_epoch_committed(
                        epoch_number, self._history[epoch_number],
                        self.sim.now, observer=self.name)

    def _append_to_ledger(self, payload: object, size_bytes: int) -> Transaction:
        """``L.append`` with bookkeeping of the originating server."""
        tx = new_transaction(payload, size_bytes, origin=self.name,
                             created_at=self.sim.now)
        self.ledger.append(tx)
        return tx

    # -- ABCI / block-processing pipeline ------------------------------------------

    def check_tx(self, tx: Transaction) -> bool:
        """Mempool admission: accept anything shaped like Setchain traffic."""
        return True

    def finalize_block(self, block: Block) -> None:
        """Enqueue the block's transactions for serial processing.

        While crash-faulted, blocks are buffered instead: the co-located
        ledger node keeps the (durable) chain, and :meth:`recover` replays the
        missed blocks through this same path, driving the algorithms' normal
        re-synchronisation (Hashchain's ``Request_batch`` hash reversal,
        Compresschain's decompression) end to end.
        """
        if self.departed:
            return
        if self.crashed:
            self._missed_blocks.append(block)
            return
        if self._membership is not None:
            previous = self._membership.quorum_at_height(self._last_seen_height)
            self._last_seen_height = max(self._last_seen_height, block.height)
            quorum = self._membership.quorum_at_height(self._last_seen_height)
            if quorum != previous:
                # Queued, not applied here: the retro scans in
                # _on_quorum_change must observe the same processed-
                # transaction prefix on every server, so the boundary rides
                # the serial pipeline ahead of this block's transactions
                # instead of firing while the pipeline may still lag.
                self._work.append(("quorum", block, None))
        self.blocks_processed += 1
        peers = self.shard_peers
        if peers is None:
            for tx in block.transactions:
                self._work.append(("tx", block, tx))
        else:
            # Shard isolation: tenants sharing the ledger run the *same*
            # algorithm, so payload types cannot discriminate — only
            # transactions originated by this server's own shard are ours.
            # Crash recovery replays blocks through this same path, so the
            # filter survives replay unchanged.
            for tx in block.transactions:
                if tx.origin in peers:
                    self._work.append(("tx", block, tx))
        self._work.append(("end", block, None))
        if not self._busy:
            self._busy = True
            self._schedule_pipeline(0.0)

    @property
    def backlog(self) -> int:
        """Pending work items (a stressed server accumulates backlog here)."""
        return len(self._work)

    def _process_next(self) -> None:
        if not self._work:
            self._busy = False
            return
        kind, block, tx = self._work.popleft()
        if kind == "tx":
            assert tx is not None
            self._handle_tx(block, tx)
        elif kind == "quorum":
            self._on_quorum_change(self._quorum_at(block.height), block)
            self._finish_after(0.0)
        else:
            byz = self._byz
            if byz is None or not byz.on_block_end(self, block):
                self._handle_block_end(block)
            self._finish_after(0.0)

    def _finish_after(self, duration: float) -> None:
        """Mark the current work item done after ``duration`` seconds of service time."""
        self._schedule_pipeline(duration)

    def _schedule_pipeline(self, delay: float) -> None:
        run = self._pipeline_run
        if delay <= 0:
            self.sim.call_soon(lambda: self._pipeline_step(run))
        else:
            self.sim.call_in(delay, lambda: self._pipeline_step(run))

    def _pipeline_step(self, run: int) -> None:
        if run != self._pipeline_run:
            return  # continuation of a pipeline that died in a crash
        self._process_next()

    # -- crash faults ---------------------------------------------------------------

    def _on_crash(self) -> None:
        """Volatile state dies with the process: the in-flight block pipeline.

        Blocks with work still queued were delivered but not fully processed;
        a real process replays them from the durable chain after restarting,
        so they join the missed-block replay (per-transaction handler state
        is idempotent, making re-processing of already-handled transactions
        safe).  Subclasses extend this for their own in-memory state
        (collectors, pending hash-reversal requests).  Durable state —
        ``the_set``, history, the batch store (disk in the paper's
        deployment) — survives.
        """
        interrupted: list[Block] = []
        seen: set[int] = set()
        for _kind, block, _tx in self._work:
            if id(block) not in seen:
                seen.add(id(block))
                interrupted.append(block)
        self._missed_blocks.extend(interrupted)
        # Interrupted blocks were counted when first enqueued and will be
        # counted again when the recovery replay re-finalizes them.
        self.blocks_processed -= len(interrupted)
        self._work.clear()
        self._busy = False
        self._pipeline_run += 1  # orphan any queued continuation

    def _on_recover(self) -> None:
        """Replay every block missed while down, in commit order."""
        missed, self._missed_blocks = self._missed_blocks, []
        for block in missed:
            self.finalize_block(block)
        if self._deferred_request_replays:
            # Request_batch replies a withholding behaviour owed at detach
            # time while this server was down: serve them now.  Dispatching
            # through the handler keeps the semantics exact — if a *new*
            # behaviour intercepts Request_batch, it sees these too.
            deferred, self._deferred_request_replays = (
                self._deferred_request_replays, [])
            handler = self._handlers.get("request_batch")
            if handler is not None:
                for message in deferred:
                    handler(message)

    # -- hooks implemented by the concrete algorithms --------------------------------

    def _after_add(self, element: Element) -> None:
        """What to do with a freshly added element (append vs collect)."""
        raise NotImplementedError

    def _after_add_many(self, elements: list[Element]) -> None:
        """Batched :meth:`_after_add`; subclasses override with a columnar path."""
        after_add = self._after_add
        for element in elements:
            after_add(element)

    def _handle_tx(self, block: Block, tx: Transaction) -> None:
        """Process one ledger transaction; must call :meth:`_finish_after` exactly once."""
        raise NotImplementedError

    def _handle_block_end(self, block: Block) -> None:
        """Called after the last transaction of a block (synchronous, zero cost)."""
