"""Membership epochs: the server set as a step function of time.

Static deployments have a single membership epoch fixed at build time.  A
``Join`` or ``Leave`` (scheduled fault events or interactive ``Session``
calls) appends a new epoch whose quorum activates at a *block boundary*
two blocks after the change is committed — mirroring real Tendermint's
validator-set update delay — so every correct server switches quorums at
the same deterministic point in the ledger, not at a wall-clock instant.

The log answers two questions:

* what is the member set / quorum *at ledger height h* (used by the
  epoch-commit rule and the hashchain ``f+1`` consolidation trigger), and
* what changed when (used by ``RunResult.membership`` and the service
  health endpoint).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MembershipEpoch:
    """One interval of constant membership."""

    #: 1-based position in the log.
    index: int
    #: Simulated time the change was initiated.
    at: float
    #: First ledger height at which this epoch's quorum applies.
    effective_height: int
    #: Sorted member names.
    members: tuple[str, ...]
    #: Resolved fault tolerance for this member count.
    f: int
    #: Signers/proofs needed to trust an epoch under this membership.
    quorum: int
    #: "initial", "join" or "leave".
    reason: str
    #: The node that joined/left (None for the initial epoch).
    node: str | None = None

    def to_dict(self) -> dict:
        data = {
            "index": self.index,
            "at": self.at,
            "effective_height": self.effective_height,
            "members": list(self.members),
            "f": self.f,
            "quorum": self.quorum,
            "reason": self.reason,
        }
        if self.node is not None:
            data["node"] = self.node
        return data


@dataclass
class _JoinRecord:
    node: str
    at: float
    effective_height: int
    caught_up_at: float | None = None
    first_commit_at: float | None = None


@dataclass
class _LeaveRecord:
    node: str
    at: float
    effective_height: int
    drained: bool = True
    retired_at: float | None = None


class MembershipLog:
    """Ordered membership epochs keyed by effective ledger height."""

    def __init__(self, members: list[str] | tuple[str, ...],
                 explicit_f: int | None = None, at: float = 0.0) -> None:
        self._explicit_f = explicit_f
        initial = tuple(sorted(members))
        self._epochs: list[MembershipEpoch] = [
            MembershipEpoch(index=1, at=at, effective_height=0,
                            members=initial, f=self._f_for(len(initial)),
                            quorum=self._f_for(len(initial)) + 1,
                            reason="initial")
        ]
        self.joins: list[_JoinRecord] = []
        self.leaves: list[_LeaveRecord] = []

    def _f_for(self, n: int) -> int:
        if self._explicit_f is not None:
            return self._explicit_f
        return max(0, (n - 1) // 2)

    # -- mutation ---------------------------------------------------------------

    def _append(self, members: tuple[str, ...], at: float,
                effective_height: int, reason: str, node: str) -> MembershipEpoch:
        # Epochs activate in log order; a change recorded later can never
        # take effect at an earlier height than its predecessor.
        effective_height = max(effective_height,
                               self._epochs[-1].effective_height)
        f = self._f_for(len(members))
        epoch = MembershipEpoch(index=len(self._epochs) + 1, at=at,
                                effective_height=effective_height,
                                members=members, f=f, quorum=f + 1,
                                reason=reason, node=node)
        self._epochs.append(epoch)
        return epoch

    def join(self, name: str, at: float, effective_height: int) -> MembershipEpoch:
        current = self._epochs[-1].members
        if name in current:
            raise ValueError(f"{name!r} is already a member")
        epoch = self._append(tuple(sorted(current + (name,))), at,
                             effective_height, "join", name)
        self.joins.append(_JoinRecord(node=name, at=at,
                                      effective_height=epoch.effective_height))
        return epoch

    def leave(self, name: str, at: float, effective_height: int,
              drained: bool = True) -> MembershipEpoch:
        current = self._epochs[-1].members
        if name not in current:
            raise ValueError(f"{name!r} is not a member")
        members = tuple(m for m in current if m != name)
        if not members:
            raise ValueError("cannot remove the last member")
        epoch = self._append(members, at, effective_height, "leave", name)
        self.leaves.append(_LeaveRecord(node=name, at=at,
                                        effective_height=epoch.effective_height,
                                        drained=drained))
        return epoch

    # -- queries ----------------------------------------------------------------

    @property
    def epochs(self) -> tuple[MembershipEpoch, ...]:
        return tuple(self._epochs)

    @property
    def current(self) -> MembershipEpoch:
        return self._epochs[-1]

    @property
    def changed(self) -> bool:
        """True once any join/leave has been recorded."""
        return len(self._epochs) > 1

    def epoch_at_height(self, height: int) -> MembershipEpoch:
        """The epoch governing blocks at ledger ``height``."""
        for epoch in reversed(self._epochs):
            if epoch.effective_height <= height:
                return epoch
        return self._epochs[0]

    def quorum_at_height(self, height: int) -> int:
        return self.epoch_at_height(height).quorum

    def members_at_height(self, height: int) -> tuple[str, ...]:
        return self.epoch_at_height(height).members

    def min_quorum(self) -> int:
        """The smallest quorum any epoch used (for retrospective proof checks)."""
        return min(e.quorum for e in self._epochs)
