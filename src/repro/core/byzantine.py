"""Byzantine behaviours as swappable *strategies* on live servers.

The system model allows up to ``f < n/2`` Byzantine Setchain servers.  Until
PR 5 the five misbehaviours lived in fixed-at-construction server
*subclasses*, so a server was either Byzantine for its whole life or never —
chaos timelines could not mix crash and Byzantine nemeses.  They are now
:class:`ByzantineBehaviour` strategy objects that any
:class:`~repro.core.base.BaseSetchainServer` can adopt and shed **mid-run**
(``server.become_byzantine("withhold")`` / ``server.become_correct()``),
which is what the ``become-byzantine`` / ``become-correct`` fault kinds in
:mod:`repro.faults.events` drive from deterministic schedules.

The five built-in behaviours, resolved by name through a
:class:`~repro.topology.plugins.PluginRegistry` (``register_behaviour`` lets
third-party code add more):

=================== ==========================================================
``withhold``        sign and append hash-batches but never answer
                    ``Request_batch`` (the attack the f+1 consolidation rule
                    neutralises); withheld requests are buffered and served
                    when the server becomes correct again
``wrong-hash``      append hash-batches whose hash matches no batch the
                    server is willing to serve
``invalid-element`` append syntactically invalid elements straight to the
                    ledger alongside normal behaviour
``equivocate``      sign epoch-proofs over garbage hashes instead of the real
                    epoch content
``silent``          accept adds but never forward anything to the ledger, and
                    never contribute epoch-proofs
=================== ==========================================================

Behaviours degrade gracefully across algorithms: a hook that a server never
reaches (``Request_batch`` service on a Vanilla server, say) simply never
fires, so one behaviour name works for any algorithm group and schedules do
not need to know which algorithm a random target runs.

The legacy subclasses (:class:`WithholdingHashchainServer`, ...) remain as
thin shims that attach the matching behaviour at construction, so existing
tests and examples keep working against the single strategy implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar

from ..config import EPOCH_PROOF_SIZE, HASH_BATCH_SIZE
from ..crypto.hashing import hash_batch
from ..topology.plugins import PluginRegistry
from ..workload.elements import Element, make_element
from .hashchain import HashchainServer
from .types import EpochProof, HashBatch, epoch_proof_payload, hash_batch_payload
from .vanilla import VanillaServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ledger.types import Block
    from ..net.message import Message
    from .base import BaseSetchainServer


def make_invalid_element(client: str = "byzantine-client", size_bytes: int = 400,
                         created_at: float = 0.0) -> Element:
    """An element that fails ``valid_element`` (models a bad client signature)."""
    return make_element(client=client, size_bytes=size_bytes,
                        created_at=created_at, valid=False)


class ByzantineBehaviour:
    """One misbehaviour strategy, attached to a live server.

    Hooks return ``True`` when the behaviour handled the event (suppressing
    the correct code path) and ``False`` to fall through to it; a behaviour
    instance is private to one server, so hooks may keep per-server state
    (e.g. the withheld-request buffer).  :meth:`outgoing_proof` may replace
    or suppress (``None``) an epoch-proof the server is about to publish.
    """

    #: Registry name, assigned by ``@register_behaviour``.
    name: ClassVar[str] = "?"

    def on_attach(self, server: "BaseSetchainServer") -> None:
        """Called when the server adopts this behaviour."""

    def on_detach(self, server: "BaseSetchainServer") -> None:
        """Called when the server becomes correct (or switches behaviour)."""

    def on_after_add(self, server: "BaseSetchainServer",
                     element: Element) -> bool:
        """Intercept the post-``add`` path (append/collect)."""
        return False

    def on_block_end(self, server: "BaseSetchainServer", block: "Block") -> bool:
        """Intercept the end-of-block handler (epoch creation in Vanilla)."""
        return False

    def on_request_batch(self, server: "BaseSetchainServer",
                         message: "Message") -> bool:
        """Intercept the Hashchain ``Request_batch`` service."""
        return False

    def on_flush_batch(self, server: "BaseSetchainServer",
                       batch: tuple[object, ...]) -> bool:
        """Intercept a collector flush (hash-batch / compressed append)."""
        return False

    def outgoing_proof(self, server: "BaseSetchainServer",
                       proof: EpochProof) -> EpochProof | None:
        """Transform (or suppress, via ``None``) an outgoing epoch-proof."""
        return proof


_BEHAVIOURS: "PluginRegistry[type[ByzantineBehaviour]]" = PluginRegistry(
    "byzantine behaviour")


def register_behaviour(name: str, *, replace: bool = False):
    """Decorator registering a :class:`ByzantineBehaviour` class under ``name``.

    The name becomes valid for ``BecomeByzantine(behaviour=...)`` schedule
    events, ``Scenario....become_byzantine(...)`` builder calls, and
    ``Session.become_byzantine`` — the same extension contract as the fault
    and algorithm registries.
    """
    def decorator(cls: "type[ByzantineBehaviour]") -> "type[ByzantineBehaviour]":
        cls.name = name
        return _BEHAVIOURS.register(name, cls, replace=replace)
    return decorator


def get_behaviour(name: str) -> "type[ByzantineBehaviour]":
    return _BEHAVIOURS.get(name)


def behaviour_names() -> list[str]:
    return _BEHAVIOURS.names()


def has_behaviour(name: str) -> bool:
    return name in _BEHAVIOURS


def unregister_behaviour(name: str) -> None:
    _BEHAVIOURS.unregister(name)


def resolve_behaviour(behaviour: "str | ByzantineBehaviour") -> ByzantineBehaviour:
    """Accept a behaviour instance or a registered name (fresh instance)."""
    if isinstance(behaviour, ByzantineBehaviour):
        return behaviour
    return get_behaviour(behaviour)()


# -- the five built-in behaviours ---------------------------------------------


@register_behaviour("withhold")
class WithholdBehaviour(ByzantineBehaviour):
    """Append hash-batches normally but refuse to serve their contents.

    Withheld ``Request_batch`` messages are buffered; when the server becomes
    correct again they are answered from the (durable) batch store, so
    consolidation of the withheld hashes resumes and converges.
    """

    def __init__(self) -> None:
        self.withheld: list["Message"] = []

    def on_request_batch(self, server: "BaseSetchainServer",
                         message: "Message") -> bool:
        self.withheld.append(message)
        server._count_byzantine("withheld_requests")
        return True

    def on_detach(self, server: "BaseSetchainServer") -> None:
        pending, self.withheld = self.withheld, []
        serve = getattr(server, "_on_request_batch", None)
        if serve is None:  # pragma: no cover - withhold on a non-hashchain server
            return
        if server.crashed:
            # A crashed server cannot send; park the buffer on the server so
            # recovery replays it (the behaviour object is detached by then).
            server._deferred_request_replays.extend(pending)
            return
        for message in pending:
            serve(message)


@register_behaviour("wrong-hash")
class WrongHashBehaviour(ByzantineBehaviour):
    """Append hash-batches whose hash corresponds to no real batch.

    On a server without a hash-batch flush path the batch simply vanishes
    (equivalent to ``silent`` for that flush).
    """

    def on_flush_batch(self, server: "BaseSetchainServer",
                       batch: tuple[object, ...]) -> bool:
        if not isinstance(server, HashchainServer):
            server._count_byzantine("suppressed_flushes")
            return True
        bogus_hash = hash_batch([f"bogus-{server.sim.now}-{len(batch)}"])
        signature = server.scheme.sign(server.keypair,
                                       hash_batch_payload(bogus_hash))
        hb = HashBatch(batch_hash=bogus_hash, signature=signature,
                       signer=server.name)
        server._signed_hashes.add(bogus_hash)
        server._append_to_ledger(hb, HASH_BATCH_SIZE)
        server._count_byzantine("bogus_hash_batches")
        return True

    def on_request_batch(self, server: "BaseSetchainServer",
                         message: "Message") -> bool:
        # It cannot serve a batch it never built; reply with nothing useful.
        server.send(message.sender, "batch_response", (message.payload, None),
                    size_bytes=64)
        server._count_byzantine("useless_batch_replies")
        return True


@register_behaviour("invalid-element")
class InvalidElementBehaviour(ByzantineBehaviour):
    """Flood the ledger with invalid elements alongside normal behaviour."""

    def __init__(self, invalid_per_add: int = 1) -> None:
        self.invalid_per_add = invalid_per_add

    def on_after_add(self, server: "BaseSetchainServer",
                     element: Element) -> bool:
        server._after_add(element)  # normal behaviour first, then the junk
        for _ in range(self.invalid_per_add):
            junk = make_invalid_element(created_at=server.sim.now)
            server._append_to_ledger(junk, junk.size_bytes)
            server._count_byzantine("invalid_elements_appended")
        return True


@register_behaviour("equivocate")
class EquivocateBehaviour(ByzantineBehaviour):
    """Sign epoch-proofs over a hash unrelated to the real epoch content."""

    def outgoing_proof(self, server: "BaseSetchainServer",
                       proof: EpochProof) -> EpochProof | None:
        bogus_hash = "0" * len(proof.epoch_hash)
        server._count_byzantine("equivocating_proofs")
        return EpochProof(
            epoch_number=proof.epoch_number,
            epoch_hash=bogus_hash,
            signature=server.scheme.sign(
                server.keypair,
                epoch_proof_payload(proof.epoch_number, bogus_hash)),
            signer=server.name,
        )


@register_behaviour("silent")
class SilentBehaviour(ByzantineBehaviour):
    """Accept adds but never forward anything to the ledger."""

    def on_after_add(self, server: "BaseSetchainServer",
                     element: Element) -> bool:
        # Drop the element: it stays in this server's the_set but never
        # reaches the ledger through this server.
        server._count_byzantine("suppressed_elements")
        return True

    def on_block_end(self, server: "BaseSetchainServer", block: "Block") -> bool:
        # Never create epochs or contribute epoch-proofs from block ends.
        if hasattr(server, "_block_elements"):
            server._block_elements = {}
        return True

    def outgoing_proof(self, server: "BaseSetchainServer",
                       proof: EpochProof) -> EpochProof | None:
        server._count_byzantine("suppressed_proofs")
        return None


# -- legacy fixed-at-construction shims ---------------------------------------


class WithholdingHashchainServer(HashchainServer):
    """A Hashchain server born with the ``withhold`` behaviour attached."""

    algorithm = "hashchain-byz-withhold"

    def __init__(self, *args, **kwargs) -> None:  # type: ignore[no-untyped-def]
        super().__init__(*args, **kwargs)
        self.become_byzantine(WithholdBehaviour())


class WrongHashHashchainServer(HashchainServer):
    """A Hashchain server born with the ``wrong-hash`` behaviour attached."""

    algorithm = "hashchain-byz-wronghash"

    def __init__(self, *args, **kwargs) -> None:  # type: ignore[no-untyped-def]
        super().__init__(*args, **kwargs)
        self.become_byzantine(WrongHashBehaviour())


class InvalidElementVanillaServer(VanillaServer):
    """A Vanilla server born with the ``invalid-element`` behaviour attached."""

    algorithm = "vanilla-byz-invalid"

    def __init__(self, *args, invalid_per_add: int = 1, **kwargs) -> None:  # type: ignore[no-untyped-def]
        super().__init__(*args, **kwargs)
        self.become_byzantine(InvalidElementBehaviour(invalid_per_add))


class EquivocatingProofServer(VanillaServer):
    """A Vanilla server born with the ``equivocate`` behaviour attached."""

    algorithm = "vanilla-byz-equivocate"

    def __init__(self, *args, **kwargs) -> None:  # type: ignore[no-untyped-def]
        super().__init__(*args, **kwargs)
        self.become_byzantine(EquivocateBehaviour())


class SilentServer(VanillaServer):
    """A Vanilla server born with the ``silent`` behaviour attached."""

    algorithm = "vanilla-byz-silent"

    def __init__(self, *args, **kwargs) -> None:  # type: ignore[no-untyped-def]
        super().__init__(*args, **kwargs)
        self.become_byzantine(SilentBehaviour())


#: Referenced by docs/tests enumerating the built-in strategy set.
BUILTIN_BEHAVIOURS = ("withhold", "wrong-hash", "invalid-element",
                     "equivocate", "silent")
