"""Byzantine server behaviours for fault-injection tests.

The system model allows up to ``f < n/2`` Byzantine Setchain servers.  The
classes here subclass the correct algorithms and misbehave in specific,
targeted ways so tests can check that the correct servers' guarantees
(Properties 1-8) survive each behaviour:

* :class:`WithholdingHashchainServer` — signs and appends hash-batches but
  never answers ``Request_batch`` (the attack the f+1 consolidation rule is
  designed to neutralise).
* :class:`WrongHashHashchainServer` — appends hash-batches whose hash matches
  no batch it is willing to serve.
* :class:`InvalidElementVanillaServer` — appends syntactically invalid
  elements straight to the ledger.
* :class:`EquivocatingProofServer` — signs epoch-proofs over garbage hashes.
* :class:`SilentServer` — accepts adds but never appends anything (drops
  client elements on the floor).
"""

from __future__ import annotations

from ..config import EPOCH_PROOF_SIZE, HASH_BATCH_SIZE
from ..crypto.hashing import hash_batch
from ..ledger.types import Block
from ..net.message import Message
from ..workload.elements import Element, make_element
from .hashchain import HashchainServer
from .types import EpochProof, HashBatch, epoch_proof_payload, hash_batch_payload
from .vanilla import VanillaServer


def make_invalid_element(client: str = "byzantine-client", size_bytes: int = 400,
                         created_at: float = 0.0) -> Element:
    """An element that fails ``valid_element`` (models a bad client signature)."""
    return make_element(client=client, size_bytes=size_bytes,
                        created_at=created_at, valid=False)


class WithholdingHashchainServer(HashchainServer):
    """Appends hash-batches but refuses to serve their contents."""

    algorithm = "hashchain-byz-withhold"

    def _on_request_batch(self, message: Message) -> None:
        # Silently ignore the request; the requester will hit its timeout.
        return


class WrongHashHashchainServer(HashchainServer):
    """Appends hash-batches whose hash corresponds to no real batch."""

    algorithm = "hashchain-byz-wronghash"

    def _flush_batch(self, batch) -> None:  # type: ignore[override]
        bogus_hash = hash_batch([f"bogus-{self.sim.now}-{len(batch)}"])
        signature = self.scheme.sign(self.keypair, hash_batch_payload(bogus_hash))
        hb = HashBatch(batch_hash=bogus_hash, signature=signature, signer=self.name)
        self._signed_hashes.add(bogus_hash)
        self._append_to_ledger(hb, HASH_BATCH_SIZE)

    def _on_request_batch(self, message: Message) -> None:
        # It cannot serve a batch it never built; reply with nothing useful.
        self.send(message.sender, "batch_response", (message.payload, None),
                  size_bytes=64)


class InvalidElementVanillaServer(VanillaServer):
    """Floods the ledger with invalid elements alongside normal behaviour."""

    algorithm = "vanilla-byz-invalid"

    def __init__(self, *args, invalid_per_add: int = 1, **kwargs) -> None:  # type: ignore[no-untyped-def]
        super().__init__(*args, **kwargs)
        self.invalid_per_add = invalid_per_add

    def _after_add(self, element: Element) -> None:
        super()._after_add(element)
        for _ in range(self.invalid_per_add):
            junk = make_invalid_element(created_at=self.sim.now)
            self._append_to_ledger(junk, junk.size_bytes)


class EquivocatingProofServer(VanillaServer):
    """Signs epoch-proofs over a hash unrelated to the real epoch content."""

    algorithm = "vanilla-byz-equivocate"

    def _handle_block_end(self, block: Block) -> None:
        if not self._block_elements:
            return
        new_epoch = set(self._block_elements.values())
        self._block_elements = {}
        for element in new_epoch:
            self._add_to_the_set(element)
        proof = self._record_new_epoch(new_epoch, block)
        bogus_hash = "0" * len(proof.epoch_hash)
        bogus = EpochProof(
            epoch_number=proof.epoch_number,
            epoch_hash=bogus_hash,
            signature=self.scheme.sign(
                self.keypair, epoch_proof_payload(proof.epoch_number, bogus_hash)),
            signer=self.name,
        )
        self._append_to_ledger(bogus, EPOCH_PROOF_SIZE)


class SilentServer(VanillaServer):
    """Accepts adds but never forwards anything to the ledger."""

    algorithm = "vanilla-byz-silent"

    def _after_add(self, element: Element) -> None:
        # Drop the element: it stays in this server's the_set but never
        # reaches the ledger through this server.
        return

    def _handle_block_end(self, block: Block) -> None:
        # Also never contribute epoch-proofs.
        self._block_elements = {}
