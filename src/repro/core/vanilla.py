"""Algorithm Vanilla (paper Appendix B).

Every added element is appended to the ledger as its own transaction.  When a
block is notified, the valid epoch-proofs it carries are absorbed, the valid
not-yet-epoched elements form a new epoch, and the server appends its
epoch-proof for that epoch back to the ledger.  Throughput and latency are
therefore those of the underlying ledger — Vanilla is the correctness
baseline the other two algorithms improve on.
"""

from __future__ import annotations

from ..config import EPOCH_PROOF_SIZE, SetchainConfig
from ..crypto.keys import KeyPair
from ..crypto.signatures import SignatureScheme
from ..ledger.types import Block, Transaction
from ..sim.scheduler import Simulator
from ..workload.elements import Element
from .base import BaseSetchainServer
from .types import EpochProof
from .validation import valid_element


class VanillaServer(BaseSetchainServer):
    """One Vanilla Setchain server."""

    algorithm = "vanilla"

    def __init__(self, name: str, sim: Simulator, config: SetchainConfig,
                 scheme: SignatureScheme, keypair: KeyPair, metrics=None) -> None:
        super().__init__(name, sim, config, scheme, keypair, metrics)
        #: Valid elements of the block currently being processed (the epoch
        #: candidate set G of Appendix B, line 13).
        self._block_elements: dict[int, Element] = {}

    # -- add path -----------------------------------------------------------------

    def _after_add(self, element: Element) -> None:
        # Appendix B line 6: L.append(e) — one ledger transaction per element.
        tx = self._append_to_ledger(element, element.size_bytes)
        if self.metrics is not None:
            self.metrics.record_tx_elements(tx.tx_id, [element.element_id])

    def _after_add_many(self, elements: list[Element]) -> None:
        # Still one ledger transaction per element (Vanilla's defining cost);
        # only the per-call dispatch is hoisted out of the loop.
        metrics = self.metrics
        if metrics is None:
            append = self._append_to_ledger
            for element in elements:
                append(element, element.size_bytes)
            return
        append = self._append_to_ledger
        record = metrics.record_tx_elements
        for element in elements:
            tx = append(element, element.size_bytes)
            record(tx.tx_id, [element.element_id])

    # -- block processing -----------------------------------------------------------

    def _handle_tx(self, block: Block, tx: Transaction) -> None:
        payload = tx.payload
        duration = self.config.tx_processing_overhead
        if isinstance(payload, EpochProof):
            # Appendix B lines 11-12: absorb valid epoch-proofs.
            self._absorb_proofs([payload])
        elif isinstance(payload, Element):
            duration += self.config.element_validation_time
            if not valid_element(payload):
                # A Byzantine server appended an invalid element; refuse it.
                if self.metrics is not None:
                    self.metrics.record_byzantine(self.name,
                                                  "invalid_elements_refused")
            elif (not self._known_in_history(payload)
                    and payload.element_id not in self._block_elements):
                self._block_elements[payload.element_id] = payload
                if self.metrics is not None:
                    self.metrics.record_in_ledger(payload.element_id, self.sim.now)
        # Anything else (a Byzantine server appended garbage) is simply skipped.
        self._finish_after(duration)

    def _handle_block_end(self, block: Block) -> None:
        # Appendix B lines 13-18: the block's valid new elements become an epoch.
        if not self._block_elements:
            return
        new_epoch = set(self._block_elements.values())
        self._block_elements = {}
        for element in new_epoch:
            self._add_to_the_set(element)
        proof = self._byz_outgoing_proof(self._record_new_epoch(new_epoch, block))
        if proof is not None and not self.bootstrapping:
            self._append_to_ledger(proof, EPOCH_PROOF_SIZE)

    # -- crash faults ------------------------------------------------------------

    def _on_crash(self) -> None:
        """The epoch-candidate set of the interrupted block is in-memory
        state; the block itself is replayed in full on recovery."""
        super()._on_crash()
        self._block_elements = {}
