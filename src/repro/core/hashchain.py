"""Algorithm Hashchain (paper §3) — the paper's primary contribution.

A ready collector batch is hashed; only the fixed-size, signed *hash-batch*
``⟨h, s, v⟩`` is appended to the ledger, so ledger bandwidth per epoch shrinks
from hundreds of kilobytes to ``n × 139`` bytes.  The price is hash reversal:
a server that sees a hash it cannot resolve must fetch the batch contents from
the hash-batch's signer (``Request_batch``), and an epoch only *consolidates*
once hash-batches for the same hash from ``f + 1`` distinct signers appear in
the ledger — guaranteeing at least one correct server can serve the contents.

The "light" variant reproduces the paper's Fig. 2 ablation: the hash-reversal
service and hash-batch validation are removed and all servers are assumed
correct, so batch contents are shared out-of-band at zero cost.  This exposes
hash reversal as the ~20k el/s bottleneck of the full algorithm.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..config import HASH_BATCH_SIZE, SetchainConfig
from ..crypto.hashing import hash_batch
from ..crypto.keys import KeyPair
from ..crypto.signatures import SignatureScheme
from ..errors import SetchainError
from ..ledger.types import Block, Transaction
from ..net.message import Message
from ..sim.process import Timer
from ..sim.scheduler import Simulator
from ..workload.elements import Element
from .base import BaseSetchainServer
from .batch_store import BatchStore
from .collector import Collector
from .types import EpochProof, HashBatch, hash_batch_payload
from .validation import batch_matches_hash, valid_hash_batch

#: Wire size of a Request_batch query (a hash plus framing).
_REQUEST_SIZE = 80

#: Cap on background Request_batch retries for hashes that have *not* reached
#: their consolidation trigger (e.g. a Byzantine signer's withheld batch) —
#: nothing depends on them, so the retries eventually stop.  Triggered hashes
#: retry indefinitely instead: the f+1 signer rule guarantees a correct signer
#: exists, and the fill queue blocks on the contents (see _try_fill_epochs).
_MAX_REQUEST_RETRIES = 10

#: Retry backoff caps at ``2 ** _MAX_BACKOFF_EXP × batch_request_timeout``
#: (64× by default), so indefinite retries stay a trickle of events.
_MAX_BACKOFF_EXP = 6


class HashchainServer(BaseSetchainServer):
    """One Hashchain Setchain server."""

    algorithm = "hashchain"

    def __init__(self, name: str, sim: Simulator, config: SetchainConfig,
                 scheme: SignatureScheme, keypair: KeyPair, metrics=None,
                 light: bool = False, shared_store: BatchStore | None = None) -> None:
        super().__init__(name, sim, config, scheme, keypair, metrics)
        #: Light mode: no hash-reversal service, no validation cost, contents
        #: shared through ``shared_store`` (all servers assumed correct).
        self.light = light
        self.shared_store = shared_store
        if light and shared_store is None:
            raise SetchainError("light mode requires a shared batch store")
        self.collector = Collector(sim, config.collector_limit,
                                   config.collector_timeout, self._flush_batch)
        self.store = BatchStore()
        #: hash → set of signers whose (signature-valid) hash-batches this
        #: server has seen in the ledger (``hash_to_signers``).  Purely
        #: ledger-derived, so it is identical at every correct server over the
        #: same ledger prefix — the f+1-th distinct signer *triggers*
        #: consolidation, whether or not the contents are locally available.
        self.hash_to_signers: dict[str, set[str]] = {}
        #: Hashes whose batch this server has signed and appended already.
        self._signed_hashes: set[str] = set()
        #: Hashes whose consolidation has been triggered (queued or filled).
        self._consolidated: set[str] = set()
        #: digest → epoch-proofs of the batch still awaiting acceptance.  A
        #: co-signed hash appears in the ledger once per signer, so every
        #: server re-absorbs every batch ~``f+1`` times; the element pass of
        #: a repeat absorb is a provable no-op (``the_set`` and
        #: ``_epoched_ids`` only grow and ``setdefault`` is idempotent), so
        #: repeats replay only the proofs, whose routing depends on the
        #: current epoch — and accepted proofs are dropped from the replay
        #: list as soon as they land in ``_proofs`` (re-processing an
        #: accepted proof touches no counter, buffer, or commit).  Survives
        #: crashes alongside the batch store.
        self._scanned_batches: dict[str, list[EpochProof]] = {}
        #: digest → valid elements of the first scan, consumed by the epoch
        #: fill to rebuild the G-set without re-walking the raw batch.
        self._scanned_elements: dict[str, list[Element]] = {}
        #: Triggered hashes awaiting their epoch, in ledger trigger order.
        #: Epochs fill strictly head-first: a hash whose contents are still
        #: being recovered blocks later ones, so epoch numbering and contents
        #: converge at every correct server regardless of message faults.
        self._fill_queue: deque[str] = deque()
        #: Trigger block per queued hash (handed to ``_record_new_epoch``).
        self._fill_meta: dict[str, Block] = {}
        # In-flight Request_batch state: only one at a time because block
        # processing is serial (the paper's implementation blocks inside
        # FinalizeBlock the same way).
        self._pending: tuple[Block, Transaction, HashBatch] | None = None
        self._request_timer = Timer(sim, self._on_request_timeout)
        #: Hashes whose Request_batch failed, kept for background retry with
        #: exponential backoff over the hash's known signers — a timeout under
        #: partial synchrony may be a transient partition or a crashed (but
        #: recoverable) peer rather than a Byzantine one, and a triggered hash
        #: carries f+1 signers, at least one of them correct.  The value is a
        #: chain token: scheduled retry callbacks die when it no longer
        #: matches, so a digest can never accumulate parallel retry chains
        #: across resolve → re-fail → re-note (or crash → recover) cycles.
        self._unresolved: dict[str, int] = {}
        self._retry_token = 0
        #: Counters for the hash-reversal analysis.
        self.batch_requests_sent = 0
        self.batch_requests_failed = 0
        self.batch_request_retries = 0
        self.hash_batches_appended = 0
        #: Repeat absorptions answered from the scanned-batch cache (each one
        #: saved a full item re-scan); surfaced by the telemetry report.
        self.scan_cache_hits = 0
        self.on("request_batch", self._on_request_batch)
        self.on("batch_response", self._on_batch_response)

    # -- add path -------------------------------------------------------------------

    def _after_add(self, element: Element) -> None:
        # §3 Hashchain line 5: add_to_batch(e).
        self.collector.add(element)

    def _after_add_many(self, elements: list[Element]) -> None:
        # Same flush boundaries as per-element adds, one slice-extend per flush.
        self.collector.add_many(elements)

    def add_to_batch(self, item: object) -> None:
        """``add_to_batch``: used for both elements and this server's epoch-proofs."""
        self.collector.add(item)

    # -- collector flush (lines 12-21) --------------------------------------------------

    def _flush_batch(self, batch: Sequence[object]) -> None:
        byz = self._byz
        if byz is not None and byz.on_flush_batch(self, tuple(batch)):
            return
        items = tuple(batch)
        digest = hash_batch(items)
        # Lines 15-16: remember and register the batch so peers can request it.
        self.store.register_local(digest, items)
        if self.shared_store is not None:
            self.shared_store.register_remote(digest, items)
        # Lines 17-19: sign the hash and append the hash-batch to the ledger.
        signature = self.scheme.sign(self.keypair, hash_batch_payload(digest))
        hb = HashBatch(batch_hash=digest, signature=signature, signer=self.name)
        self._signed_hashes.add(digest)
        tx = self._append_to_ledger(hb, HASH_BATCH_SIZE)
        self.hash_batches_appended += 1
        if self.metrics is not None:
            element_ids = [item.element_id for item in items if isinstance(item, Element)]
            self.metrics.record_tx_elements(tx.tx_id, element_ids)
            self.metrics.record_batch_hash_elements(digest, element_ids)
            self.metrics.record_batch_flush(self.name, len(items), HASH_BATCH_SIZE,
                                            self.sim.now)
        if self.tracer is not None:
            element_ids = [item.element_id for item in items
                           if isinstance(item, Element)]
            now = self.sim.now
            self.tracer.phase_many(element_ids, "flushed", now, self.name)
            self.tracer.phase_many(element_ids, "signed", now, self.name)

    # -- hash-reversal service (Register_batch / Request_batch) --------------------------

    def _on_request_batch(self, message: Message) -> None:
        """Serve a peer's Request_batch from the local store."""
        byz = self._byz
        if byz is not None and byz.on_request_batch(self, message):
            return
        requested_hash: str = message.payload
        items = self.store.serve(requested_hash)
        size = self.store.payload_size(requested_hash) if items else _REQUEST_SIZE
        self.send(message.sender, "batch_response", (requested_hash, items),
                  size_bytes=size)

    def _on_batch_response(self, message: Message) -> None:
        """Handle a Request_batch reply: in-flight wait or background retry."""
        responded_hash, items = message.payload
        valid = items is not None and batch_matches_hash(items, responded_hash)
        if valid:
            # Opportunistically keep any batch we learn about.
            self.store.register_remote(responded_hash, tuple(items))
        pending = self._pending
        if pending is not None and pending[2].batch_hash == responded_hash:
            # The in-flight wait supersedes any background retry for the hash.
            self._unresolved.pop(responded_hash, None)
            block, _tx, hb = pending
            self._request_timer.cancel()
            self._pending = None
            if not valid:
                # Lines 28-29: unrecoverable (or forged) reply — skip this
                # hash-batch for now; background retries ask other signers.
                self.batch_requests_failed += 1
                if self.metrics is not None:
                    self.metrics.record_hash_reversal(self.name, hb.batch_hash, False,
                                                      self.sim.now)
                self._note_unresolved(hb.batch_hash)
                self._finish_after(self.config.tx_processing_overhead)
                return
            if self.metrics is not None:
                self.metrics.record_hash_reversal(self.name, hb.batch_hash, True,
                                                  self.sim.now)
            # Lines 30-34: register the recovered batch, sign the hash ourselves,
            # and append our own hash-batch to the ledger.
            items = tuple(items)
            self._append_own_hash_batch(hb.batch_hash)
            cost = (self.config.tx_processing_overhead
                    + len(items) * self.config.element_validation_time)
            self._consume_batch(block, hb.batch_hash, items, cost)
            return
        if valid and responded_hash in self._unresolved:
            # A background retry came through (the peer healed/recovered):
            # run the same lines 30-34 recovery, off the block pipeline.
            self._unresolved.pop(responded_hash, None)
            if self.metrics is not None:
                self.metrics.record_hash_reversal(self.name, responded_hash, True,
                                                  self.sim.now)
            self._recover_contents(responded_hash)

    def _on_request_timeout(self) -> None:
        """No answer in time: skip for now, keep retrying in the background.

        The serial block pipeline moves on immediately (the paper's
        implementation blocks inside FinalizeBlock and must not wedge), but
        under partial synchrony a timeout may be a transient partition or a
        crashed-but-recoverable peer rather than a Byzantine one — so the
        hash is remembered and re-requested with exponential backoff, rotating
        over every signer seen in the ledger.  A hash whose signers are all
        genuinely unreachable caps out at :data:`_MAX_REQUEST_RETRIES`.
        """
        pending = self._pending
        if pending is None:
            return
        _block, _tx, hb = pending
        self._pending = None
        self.batch_requests_failed += 1
        if self.metrics is not None:
            self.metrics.record_hash_reversal(self.name, hb.batch_hash, False, self.sim.now)
        self._note_unresolved(hb.batch_hash)
        self._finish_after(self.config.tx_processing_overhead)

    def _note_unresolved(self, digest: str) -> None:
        """Start a background retry chain for ``digest`` (one chain at most)."""
        if digest in self._unresolved:
            return
        self._retry_token += 1
        self._unresolved[digest] = self._retry_token
        self._schedule_retry(digest, 1, self._retry_token)

    def _schedule_retry(self, digest: str, attempt: int, token: int) -> None:
        # Hashes still awaiting their epoch fill (digest in _fill_meta) must
        # never stop retrying — the fill queue head-of-line blocks on them;
        # untriggered hashes cap out (nothing downstream needs their contents).
        if attempt > _MAX_REQUEST_RETRIES and digest not in self._fill_meta:
            if self._unresolved.get(digest) == token:
                del self._unresolved[digest]
            return
        delay = self.config.batch_request_timeout * (2 ** min(attempt, _MAX_BACKOFF_EXP))
        self.sim.call_in(delay, lambda: self._retry_request(digest, attempt, token))

    def _retry_request(self, digest: str, attempt: int, token: int) -> None:
        if self._unresolved.get(digest) != token:
            return  # resolved meanwhile, crash-wiped, or superseded by a new chain
        if self.store.get(digest) is not None:
            # Contents arrived through another path (a co-signer's response
            # registered opportunistically): absorb without re-requesting.
            del self._unresolved[digest]
            self._recover_contents(digest)
            return
        # Rotate over every signer observed in the ledger: a triggered hash
        # has f+1 of them, so at least one is correct and eventually timely.
        signers = [signer
                   for signer in sorted(self.hash_to_signers.get(digest, ()))
                   if signer != self.name]
        if not signers:
            del self._unresolved[digest]
            return
        target = signers[(attempt - 1) % len(signers)]
        self.batch_request_retries += 1
        self.send(target, "request_batch", digest, size_bytes=_REQUEST_SIZE)
        self._schedule_retry(digest, attempt + 1, token)

    def _recover_contents(self, digest: str) -> None:
        """Late content arrival: co-sign, absorb, and fill any unblocked epochs."""
        items = self.store.get(digest)
        if items is None:  # pragma: no cover - callers check first
            return
        self._append_own_hash_batch(digest)
        self._absorb_batch(digest, items)
        self._try_fill_epochs()

    def _append_own_hash_batch(self, digest: str) -> None:
        if digest in self._signed_hashes:
            return
        if self.bootstrapping:
            # A catching-up server replays hashes the cluster consolidated
            # long ago; re-signing them would spam the ledger with stale
            # hash-batches.  Remember them as handled instead (exactly the
            # sqlite restart-resume treatment of already-persisted batches).
            self._signed_hashes.add(digest)
            return
        signature = self.scheme.sign(self.keypair, hash_batch_payload(digest))
        hb = HashBatch(batch_hash=digest, signature=signature, signer=self.name)
        self._signed_hashes.add(digest)
        self._append_to_ledger(hb, HASH_BATCH_SIZE)
        self.hash_batches_appended += 1

    # -- block processing (lines 22-45) ----------------------------------------------------

    def _handle_tx(self, block: Block, tx: Transaction) -> None:
        payload = tx.payload
        overhead = self.config.tx_processing_overhead
        if not isinstance(payload, HashBatch):
            self._finish_after(overhead)
            return
        # Line 24: validate the hash-batch signature (skipped in light mode,
        # mirroring the paper's "without validation of hash-batches" ablation).
        if not self.light and not valid_hash_batch(payload, self.scheme):
            self._finish_after(overhead)
            return
        digest = payload.batch_hash
        # Ledger-order signer tracking and the consolidation *trigger*: the
        # f+1-th distinct (signature-valid) signer of a hash in the ledger
        # queues its epoch — the paper's rule.  The trigger depends only on
        # ledger content, so every correct server queues the same hashes in
        # the same order even when content recovery lags behind (partitions,
        # crashed peers); the epoch itself fills in _try_fill_epochs.
        signers = self.hash_to_signers.setdefault(digest, set())
        signers.add(payload.signer)
        if (len(signers) >= self._quorum_at(block.height)
                and digest not in self._consolidated):
            self._consolidated.add(digest)
            self._fill_queue.append(digest)
            self._fill_meta[digest] = block
        if self.metrics is not None:
            self.metrics.record_in_ledger_by_hash(digest, self.sim.now)
        items = self.store.get(digest)
        if items is None and self.shared_store is not None:
            items = self.shared_store.get(digest)
            if items is not None:
                self.store.register_remote(digest, items)
        if items is not None:
            # We already hold the contents (our own batch, a batch recovered
            # earlier, or — in light mode — a batch shared out-of-band): no
            # hash reversal and no re-validation cost, but we still co-sign the
            # hash so it can gather its f+1 hash-batches in the ledger.
            self._append_own_hash_batch(digest)
            self._consume_batch(block, digest, items, overhead)
            return
        if self.light:
            # Light mode assumes contents are always available; a missing batch
            # can only mean the origin crashed, so skip.
            self._finish_after(overhead)
            return
        # Lines 26-27: h is new — request the batch from the hash-batch's signer.
        if payload.signer == self.name:
            # We signed it but no longer have it (should not happen for correct
            # servers); treat as unrecoverable.
            self._finish_after(overhead)
            return
        self._pending = (block, tx, payload)
        self.batch_requests_sent += 1
        self.send(payload.signer, "request_batch", digest,
                  size_bytes=_REQUEST_SIZE)
        self._request_timer.start(self.config.batch_request_timeout)
        # _finish_after will be called by the response / timeout handler.

    def _consume_batch(self, block: Block, digest: str,
                       items: tuple[object, ...], duration: float) -> None:
        """Absorb a batch from the block pipeline, then release it after ``duration``."""
        self._absorb_batch(digest, items)
        self._try_fill_epochs()
        self._finish_after(duration)

    def _absorb_batch(self, digest: str, items: tuple[object, ...]) -> None:
        """Lines 35-40: absorb the batch's epoch-proofs and feed the_set.

        The first scan of a digest walks the items once — element adds and
        proof absorption touch disjoint state, so the interleaving is free —
        and remembers the split (valid elements for the epoch fill, proofs
        for replay).  Repeat absorptions of the same digest (one per
        co-signer's ledger hash-batch) skip the element pass and replay only
        the proofs not yet accepted, whose routing depends on the current
        epoch; invalid proofs are re-counted on every repeat exactly as a
        full re-scan would.
        """
        cached = self._scanned_batches.get(digest)
        if cached is not None:
            self.scan_cache_hits += 1
            if cached:
                accepted = self._proofs
                pending = [p for p in cached if p not in accepted]
                if len(pending) != len(cached):
                    self._scanned_batches[digest] = pending
                if pending:
                    self._absorb_proofs(pending)
            return
        proofs: list[EpochProof] = []
        keep_proof = proofs.append
        elements: list[Element] = []
        keep_element = elements.append
        epoched = self._epoched_ids
        the_set = self._the_set
        for item in items:
            if isinstance(item, Element):
                if item.valid and item.size_bytes > 0:
                    keep_element(item)
                    if item.element_id not in epoched:
                        the_set.setdefault(item.element_id, item)
            elif isinstance(item, EpochProof):
                keep_proof(item)
        self._scanned_batches[digest] = proofs
        self._scanned_elements[digest] = elements
        if proofs:
            self._absorb_proofs(proofs)

    def _try_fill_epochs(self) -> None:
        """Lines 41-45: turn triggered hashes into epochs, strictly in order.

        The head of the fill queue waits until its contents are in the store
        (the background retry loop is fetching them); later triggered hashes
        must not overtake it — epoch numbering and the G-sets (line 42,
        "valid elements not yet in any epoch") are computed in the same
        trigger order at every correct server, so views converge even when
        different servers recover different batches at different times.  In a
        fault-free run contents are always present at trigger time and this
        collapses to the immediate consolidate-on-consume behaviour.
        """
        while self._fill_queue:
            digest = self._fill_queue[0]
            items = self.store.get(digest)
            if items is None and self.shared_store is not None:
                items = self.shared_store.get(digest)
                if items is not None:
                    self.store.register_remote(digest, items)
            if items is None:
                return
            self._fill_queue.popleft()
            block = self._fill_meta.pop(digest)
            # G (line 42): last occurrence wins for conflicting duplicate ids.
            # A batch this server already scanned left its valid elements in
            # _scanned_elements (they are also in the_set already), so the
            # G-set only needs the epoched filter as of *now*; an unscanned
            # batch (shared-store fill) takes the full walk.
            scanned = self._scanned_elements.pop(digest, None)
            if scanned is not None:
                epoched = self._epoched_ids
                fresh = {element.element_id: element for element in scanned
                         if element.element_id not in epoched}
            else:
                fresh = {}
                epoched = self._epoched_ids
                the_set = self._the_set
                for element in items:
                    if (isinstance(element, Element) and element.valid
                            and element.size_bytes > 0
                            and element.element_id not in epoched):
                        the_set.setdefault(element.element_id, element)
                        fresh[element.element_id] = element
            if fresh:
                proof = self._byz_outgoing_proof(
                    self._record_new_epoch(set(fresh.values()), block))
                if proof is not None and not self.bootstrapping:
                    self.add_to_batch(proof)

    # -- membership lifecycle ------------------------------------------------------

    def begin_drain(self) -> None:
        """Flush the collector so no accepted element is stranded in memory."""
        super().begin_drain()
        self.collector.flush_now()

    def retire(self) -> None:
        """Also tear down the in-flight request and retry machinery."""
        super().retire()
        self._request_timer.cancel()
        self._pending = None
        self._unresolved.clear()

    def _on_quorum_change(self, quorum: int, block: Block) -> None:
        """A shrunk quorum can retro-trigger consolidation of known hashes.

        Hashes that had gathered signers under the old (higher) quorum are
        re-examined in ledger observation order — insertion order of
        ``hash_to_signers`` — so every correct server queues the same hashes
        in the same order at the same epoch boundary.
        """
        super()._on_quorum_change(quorum, block)
        triggered = False
        for digest, signers in self.hash_to_signers.items():
            if len(signers) >= quorum and digest not in self._consolidated:
                self._consolidated.add(digest)
                self._fill_queue.append(digest)
                self._fill_meta[digest] = block
                triggered = True
        if triggered:
            self._try_fill_epochs()

    # -- crash faults ------------------------------------------------------------

    def _on_crash(self) -> None:
        """Volatile hashchain state: the collector, the in-flight request and
        the retry loops die with the process; the batch store (disk in the
        paper's deployment), the ledger-derived consolidation queue, and the
        Setchain state survive for recovery."""
        super()._on_crash()
        self.collector.clear()
        self._request_timer.cancel()
        self._pending = None
        self._unresolved.clear()

    def _on_recover(self) -> None:
        """Replay missed blocks, then re-arm retries for still-missing contents."""
        super()._on_recover()
        for digest in self._fill_queue:
            if self.store.get(digest) is None:
                self._note_unresolved(digest)
        self._try_fill_epochs()
