"""Algorithm Hashchain (paper §3) — the paper's primary contribution.

A ready collector batch is hashed; only the fixed-size, signed *hash-batch*
``⟨h, s, v⟩`` is appended to the ledger, so ledger bandwidth per epoch shrinks
from hundreds of kilobytes to ``n × 139`` bytes.  The price is hash reversal:
a server that sees a hash it cannot resolve must fetch the batch contents from
the hash-batch's signer (``Request_batch``), and an epoch only *consolidates*
once hash-batches for the same hash from ``f + 1`` distinct signers appear in
the ledger — guaranteeing at least one correct server can serve the contents.

The "light" variant reproduces the paper's Fig. 2 ablation: the hash-reversal
service and hash-batch validation are removed and all servers are assumed
correct, so batch contents are shared out-of-band at zero cost.  This exposes
hash reversal as the ~20k el/s bottleneck of the full algorithm.
"""

from __future__ import annotations

from typing import Sequence

from ..config import HASH_BATCH_SIZE, SetchainConfig
from ..crypto.hashing import hash_batch
from ..crypto.keys import KeyPair
from ..crypto.signatures import SignatureScheme
from ..errors import SetchainError
from ..ledger.types import Block, Transaction
from ..net.message import Message
from ..sim.process import Timer
from ..sim.scheduler import Simulator
from ..workload.elements import Element
from .base import BaseSetchainServer
from .batch_store import BatchStore
from .collector import Collector
from .types import HashBatch, hash_batch_payload
from .validation import batch_matches_hash, split_batch, valid_element, valid_hash_batch

#: Wire size of a Request_batch query (a hash plus framing).
_REQUEST_SIZE = 80


class HashchainServer(BaseSetchainServer):
    """One Hashchain Setchain server."""

    algorithm = "hashchain"

    def __init__(self, name: str, sim: Simulator, config: SetchainConfig,
                 scheme: SignatureScheme, keypair: KeyPair, metrics=None,
                 light: bool = False, shared_store: BatchStore | None = None) -> None:
        super().__init__(name, sim, config, scheme, keypair, metrics)
        #: Light mode: no hash-reversal service, no validation cost, contents
        #: shared through ``shared_store`` (all servers assumed correct).
        self.light = light
        self.shared_store = shared_store
        if light and shared_store is None:
            raise SetchainError("light mode requires a shared batch store")
        self.collector = Collector(sim, config.collector_limit,
                                   config.collector_timeout, self._flush_batch)
        self.store = BatchStore()
        #: hash → set of signers observed in the ledger (``hash_to_signers``).
        self.hash_to_signers: dict[str, set[str]] = {}
        #: Hashes whose batch this server has signed and appended already.
        self._signed_hashes: set[str] = set()
        #: Hashes already consolidated into an epoch.
        self._consolidated: set[str] = set()
        # In-flight Request_batch state: only one at a time because block
        # processing is serial (the paper's implementation blocks inside
        # FinalizeBlock the same way).
        self._pending: tuple[Block, Transaction, HashBatch] | None = None
        self._request_timer = Timer(sim, self._on_request_timeout)
        #: Counters for the hash-reversal analysis.
        self.batch_requests_sent = 0
        self.batch_requests_failed = 0
        self.hash_batches_appended = 0
        self.on("request_batch", self._on_request_batch)
        self.on("batch_response", self._on_batch_response)

    # -- add path -------------------------------------------------------------------

    def _after_add(self, element: Element) -> None:
        # §3 Hashchain line 5: add_to_batch(e).
        self.collector.add(element)

    def add_to_batch(self, item: object) -> None:
        """``add_to_batch``: used for both elements and this server's epoch-proofs."""
        self.collector.add(item)

    # -- collector flush (lines 12-21) --------------------------------------------------

    def _flush_batch(self, batch: Sequence[object]) -> None:
        items = tuple(batch)
        digest = hash_batch(items)
        # Lines 15-16: remember and register the batch so peers can request it.
        self.store.register_local(digest, items)
        if self.shared_store is not None:
            self.shared_store.register_remote(digest, items)
        # Lines 17-19: sign the hash and append the hash-batch to the ledger.
        signature = self.scheme.sign(self.keypair, hash_batch_payload(digest))
        hb = HashBatch(batch_hash=digest, signature=signature, signer=self.name)
        self._signed_hashes.add(digest)
        tx = self._append_to_ledger(hb, HASH_BATCH_SIZE)
        self.hash_batches_appended += 1
        if self.metrics is not None:
            element_ids = [item.element_id for item in items if isinstance(item, Element)]
            self.metrics.record_tx_elements(tx.tx_id, element_ids)
            self.metrics.record_batch_hash_elements(digest, element_ids)
            self.metrics.record_batch_flush(self.name, len(items), HASH_BATCH_SIZE,
                                            self.sim.now)

    # -- hash-reversal service (Register_batch / Request_batch) --------------------------

    def _on_request_batch(self, message: Message) -> None:
        """Serve a peer's Request_batch from the local store."""
        requested_hash: str = message.payload
        items = self.store.serve(requested_hash)
        size = sum(getattr(item, "size_bytes", 0) for item in items) if items else _REQUEST_SIZE
        self.send(message.sender, "batch_response", (requested_hash, items),
                  size_bytes=size)

    def _on_batch_response(self, message: Message) -> None:
        """Handle the reply to our in-flight Request_batch (if still relevant)."""
        responded_hash, items = message.payload
        if items is not None:
            # Opportunistically keep any batch we learn about.
            if batch_matches_hash(items, responded_hash):
                self.store.register_remote(responded_hash, tuple(items))
        pending = self._pending
        if pending is None:
            return
        block, tx, hb = pending
        if hb.batch_hash != responded_hash:
            return
        self._request_timer.cancel()
        self._pending = None
        if items is None or not batch_matches_hash(items, responded_hash):
            # Lines 28-29: unrecoverable (or forged) batch — skip this hash-batch.
            self.batch_requests_failed += 1
            if self.metrics is not None:
                self.metrics.record_hash_reversal(self.name, hb.batch_hash, False,
                                                  self.sim.now)
            self._finish_after(self.config.tx_processing_overhead)
            return
        if self.metrics is not None:
            self.metrics.record_hash_reversal(self.name, hb.batch_hash, True, self.sim.now)
        # Lines 30-34: register the recovered batch, sign the hash ourselves,
        # and append our own hash-batch to the ledger.
        items = tuple(items)
        self.store.register_remote(hb.batch_hash, items)
        self._append_own_hash_batch(hb.batch_hash)
        cost = (self.config.tx_processing_overhead
                + len(items) * self.config.element_validation_time)
        self._consume_batch(block, hb, items, cost)

    def _on_request_timeout(self) -> None:
        """The signer never answered (it may be Byzantine): skip the hash-batch."""
        pending = self._pending
        if pending is None:
            return
        _block, _tx, hb = pending
        self._pending = None
        self.batch_requests_failed += 1
        if self.metrics is not None:
            self.metrics.record_hash_reversal(self.name, hb.batch_hash, False, self.sim.now)
        self._finish_after(self.config.tx_processing_overhead)

    def _append_own_hash_batch(self, digest: str) -> None:
        if digest in self._signed_hashes:
            return
        signature = self.scheme.sign(self.keypair, hash_batch_payload(digest))
        hb = HashBatch(batch_hash=digest, signature=signature, signer=self.name)
        self._signed_hashes.add(digest)
        self._append_to_ledger(hb, HASH_BATCH_SIZE)
        self.hash_batches_appended += 1

    # -- block processing (lines 22-45) ----------------------------------------------------

    def _handle_tx(self, block: Block, tx: Transaction) -> None:
        payload = tx.payload
        overhead = self.config.tx_processing_overhead
        if not isinstance(payload, HashBatch):
            self._finish_after(overhead)
            return
        # Line 24: validate the hash-batch signature (skipped in light mode,
        # mirroring the paper's "without validation of hash-batches" ablation).
        if not self.light and not valid_hash_batch(payload, self.scheme):
            self._finish_after(overhead)
            return
        if self.metrics is not None:
            self.metrics.record_in_ledger_by_hash(payload.batch_hash, self.sim.now)
        items = self.store.get(payload.batch_hash)
        if items is None and self.shared_store is not None:
            items = self.shared_store.get(payload.batch_hash)
            if items is not None:
                self.store.register_remote(payload.batch_hash, items)
        if items is not None:
            # We already hold the contents (our own batch, a batch recovered
            # earlier, or — in light mode — a batch shared out-of-band): no
            # hash reversal and no re-validation cost, but we still co-sign the
            # hash so it can gather its f+1 hash-batches in the ledger.
            self._append_own_hash_batch(payload.batch_hash)
            self._consume_batch(block, payload, items, overhead)
            return
        if self.light:
            # Light mode assumes contents are always available; a missing batch
            # can only mean the origin crashed, so skip.
            self._finish_after(overhead)
            return
        # Lines 26-27: h is new — request the batch from the hash-batch's signer.
        if payload.signer == self.name:
            # We signed it but no longer have it (should not happen for correct
            # servers); treat as unrecoverable.
            self._finish_after(overhead)
            return
        self._pending = (block, tx, payload)
        self.batch_requests_sent += 1
        self.send(payload.signer, "request_batch", payload.batch_hash,
                  size_bytes=_REQUEST_SIZE)
        self._request_timer.start(self.config.batch_request_timeout)
        # _finish_after will be called by the response / timeout handler.

    def _consume_batch(self, block: Block, hb: HashBatch, items: tuple[object, ...],
                       duration: float) -> None:
        """Lines 35-45: absorb proofs, update the_set, track signers, maybe consolidate."""
        elements, proofs = split_batch(items)
        self._absorb_proofs(proofs)
        # G (line 42) computed in the same scan that feeds the_set: nothing
        # between here and consolidation changes element validity or history
        # membership, so the paper's recompute-at-consolidation-time yields
        # exactly this set.
        fresh: dict[int, Element] = {}
        for element in elements:
            if valid_element(element) and not self._known_in_history(element):
                self._add_to_the_set(element)
                # Last occurrence wins for conflicting duplicate ids, exactly
                # as the separate recompute loop behaved.
                fresh[element.element_id] = element
        signers = self.hash_to_signers.setdefault(hb.batch_hash, set())
        signers.add(hb.signer)
        if (len(signers) >= self.config.quorum
                and hb.batch_hash not in self._consolidated):
            self._consolidated.add(hb.batch_hash)
            if fresh:
                proof = self._record_new_epoch(set(fresh.values()), block)
                self.add_to_batch(proof)
        self._finish_after(duration)
