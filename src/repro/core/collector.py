"""The collector: batches client elements and epoch-proofs before the ledger.

Compresschain and Hashchain hold added items in a collector until either the
collector size is reached or a timeout expires with a non-empty batch
(``isReady(batch)`` in the pseudocode).  The collector then hands the batch to
a flush callback — compression + append for Compresschain, hash + sign +
append for Hashchain — and resets.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..errors import ConfigurationError
from ..sim.process import Timer
from ..sim.scheduler import Simulator

FlushCallback = Callable[[Sequence[object]], None]


class Collector:
    """Size-or-timeout batching of Setchain items."""

    def __init__(self, sim: Simulator, limit: int, timeout: float,
                 on_flush: FlushCallback) -> None:
        if limit < 1:
            raise ConfigurationError("collector limit must be at least 1")
        if timeout <= 0:
            raise ConfigurationError("collector timeout must be positive")
        self.sim = sim
        self.limit = limit
        self.timeout = timeout
        self.on_flush = on_flush
        self._batch: list[object] = []
        self._timer = Timer(sim, self._on_timeout)
        #: Number of flushes triggered by reaching the size limit / by timeout.
        self.size_flushes = 0
        self.timeout_flushes = 0

    def __len__(self) -> int:
        return len(self._batch)

    @property
    def pending(self) -> tuple[object, ...]:
        """Current batch contents (defensive copy, for external inspection).

        Hot paths must use :meth:`pending_view` instead — this property
        allocates a fresh tuple on every access.  (Audit as of PR 2: no code
        under ``src/`` reads ``pending``; only tests do.)
        """
        return tuple(self._batch)

    def pending_view(self) -> Sequence[object]:
        """Zero-copy read-only view of the current batch contents.

        The returned sequence is the collector's live internal buffer: it
        mutates on the next :meth:`add` and is emptied by a flush, so callers
        must not hold it across simulation steps — snapshot via
        :attr:`pending` for that.
        """
        return self._batch

    def add(self, item: object) -> None:
        """``add_to_batch(e)``: append an element or epoch-proof to the batch."""
        if not self._batch:
            self._timer.start(self.timeout)
        self._batch.append(item)
        if len(self._batch) >= self.limit:
            self.size_flushes += 1
            self._flush()

    def add_many(self, items: Sequence[object]) -> None:
        """Batched :meth:`add`: slice-extend instead of N appends.

        Flush boundaries, flush contents, and timer arming are exactly those
        of adding the items one at a time — the batch is filled to the limit,
        flushed, refilled, and so on; the timer is (re)armed whenever an item
        lands in an empty batch.
        """
        position = 0
        remaining = len(items)
        limit = self.limit
        while remaining > 0:
            batch = self._batch
            if not batch:
                self._timer.start(self.timeout)
            take = limit - len(batch)
            if take > remaining:
                take = remaining
            batch.extend(items[position:position + take])
            position += take
            remaining -= take
            if len(batch) >= limit:
                self.size_flushes += 1
                self._flush()

    def flush_now(self) -> None:
        """Force a flush of a non-empty batch (used at experiment drain time)."""
        if self._batch:
            self.timeout_flushes += 1
            self._flush()

    def clear(self) -> None:
        """Drop the pending batch and disarm the timer (crash-fault volatility).

        The collector is in-memory state: a server that crash-faults loses
        whatever it had batched but not yet flushed.
        """
        self._timer.cancel()
        self._batch = []

    def _on_timeout(self) -> None:
        if self._batch:
            self.timeout_flushes += 1
            self._flush()

    def _flush(self) -> None:
        self._timer.cancel()
        # Hand the callback an immutable snapshot: consumers that need a
        # tuple (the hashchain batch store, CompressedBatch) can reuse it
        # as-is instead of re-copying the batch.
        batch, self._batch = tuple(self._batch), []
        # Contract of the pseudocode's `assert batch != ∅`.
        assert batch, "collector flushed an empty batch"
        self.on_flush(batch)
