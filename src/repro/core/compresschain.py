"""Algorithm Compresschain (paper §3).

Client elements and the server's own epoch-proofs are held in a collector.
When the collector is full (or a timeout fires on a non-empty batch), the
batch is compressed and appended to the ledger as a *single* transaction.
Each compressed batch found in a block becomes one epoch, which multiplies
throughput by roughly ``collector_size × compression_ratio`` relative to
Vanilla at the same ledger capacity.

The "light" variant reproduces the paper's Fig. 2 ablation: decompression and
validation are skipped (all servers assumed correct), isolating the ledger as
the only bottleneck.
"""

from __future__ import annotations

from typing import Sequence

from ..compressor.base import CompressedBatch, Compressor
from ..config import SetchainConfig
from ..crypto.keys import KeyPair
from ..crypto.signatures import SignatureScheme
from ..ledger.types import Block, Transaction
from ..sim.scheduler import Simulator
from ..workload.elements import Element
from .base import BaseSetchainServer
from .collector import Collector
from .types import EpochProof


class CompresschainServer(BaseSetchainServer):
    """One Compresschain Setchain server."""

    algorithm = "compresschain"

    def __init__(self, name: str, sim: Simulator, config: SetchainConfig,
                 scheme: SignatureScheme, keypair: KeyPair,
                 compressor: Compressor, metrics=None, light: bool = False) -> None:
        super().__init__(name, sim, config, scheme, keypair, metrics)
        self.compressor = compressor
        #: Skip decompression/validation cost (the paper's "Compresschain Light").
        self.light = light
        self.collector = Collector(sim, config.collector_limit,
                                   config.collector_timeout, self._flush_batch)
        #: Number of compressed batches this server appended.
        self.batches_appended = 0

    # -- add path -----------------------------------------------------------------

    def _after_add(self, element: Element) -> None:
        # §3 Compresschain line 5: add_to_batch(e).
        self.collector.add(element)

    def _after_add_many(self, elements: list[Element]) -> None:
        # Same flush boundaries as per-element adds, one slice-extend per flush.
        self.collector.add_many(elements)

    def add_to_batch(self, item: object) -> None:
        """``add_to_batch``: also used internally for this server's epoch-proofs."""
        self.collector.add(item)

    # -- collector flush (lines 12-17) -----------------------------------------------

    def _flush_batch(self, batch: Sequence[object]) -> None:
        byz = self._byz
        if byz is not None and byz.on_flush_batch(self, tuple(batch)):
            return
        original_size = sum(getattr(item, "size_bytes", 0) for item in batch)
        compressed = self.compressor.compress(batch, original_size)
        tx = self._append_to_ledger(compressed, compressed.compressed_size)
        self.batches_appended += 1
        if self.metrics is not None:
            element_ids = [item.element_id for item in batch if isinstance(item, Element)]
            self.metrics.record_tx_elements(tx.tx_id, element_ids)
            self.metrics.record_batch_flush(self.name, len(batch),
                                            compressed.compressed_size, self.sim.now)
        if self.tracer is not None:
            self.tracer.phase_many(
                [item.element_id for item in batch if isinstance(item, Element)],
                "flushed", self.sim.now, self.name)

    # -- block processing (lines 18-29) ------------------------------------------------

    def _handle_tx(self, block: Block, tx: Transaction) -> None:
        payload = tx.payload
        duration = self.config.tx_processing_overhead
        if not isinstance(payload, CompressedBatch):
            # Garbage appended by a Byzantine server: skip (line 21 analogue).
            self._finish_after(duration)
            return
        items = self.compressor.decompress(payload)
        if not self.light:
            duration += len(items) * self.config.element_validation_time
        if not items:
            self._finish_after(duration)
            return
        # Lines 22-25 in one pass: collect the batch's epoch-proofs and build
        # G = valid elements not yet in an epoch (first occurrence wins for
        # conflicting duplicate ids).  Proof absorption and element adds touch
        # disjoint state, so batching the proofs to the end changes nothing.
        proofs: list[EpochProof] = []
        keep_proof = proofs.append
        new_epoch: dict[int, Element] = {}
        epoched = self._epoched_ids
        the_set = self._the_set
        for item in items:
            if isinstance(item, Element):
                element_id = item.element_id
                if (item.valid and item.size_bytes > 0
                        and element_id not in epoched
                        and element_id not in new_epoch):
                    new_epoch[element_id] = item
                    the_set.setdefault(element_id, item)
            elif isinstance(item, EpochProof):
                keep_proof(item)
        if proofs:
            self._absorb_proofs(proofs)
        if self.metrics is not None and new_epoch:
            self.metrics.record_in_ledger_many(new_epoch, self.sim.now)
        # Lines 26-29: the batch becomes an epoch and we send our proof for it
        # to the collector.  Proof-only batches do not create (empty) epochs —
        # otherwise the tail of a run would generate epochs, hence proofs,
        # hence batches, forever.
        if new_epoch:
            proof = self._byz_outgoing_proof(
                self._record_new_epoch(set(new_epoch.values()), block))
            if proof is not None and not self.bootstrapping:
                self.add_to_batch(proof)
        self._finish_after(duration)

    # -- membership lifecycle ------------------------------------------------------

    def begin_drain(self) -> None:
        """Flush the collector so no accepted element is stranded in memory."""
        super().begin_drain()
        self.collector.flush_now()

    # -- crash faults ------------------------------------------------------------

    def _on_crash(self) -> None:
        """The collector batch is in-memory state and dies with the process."""
        super()._on_crash()
        self.collector.clear()
