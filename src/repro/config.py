"""Experiment and system configuration.

The dataclasses here mirror Table 1 of the paper (evaluation parameters) plus
the platform constants reported in Section 4 (block rate, block size, element
and proof lengths).  All sizes are in bytes, rates in elements per second,
times in (simulated) seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from .errors import ConfigurationError
from .faults.schedule import (  # noqa: F401  (FaultScheduleConfig re-exported)
    FaultScheduleConfig,
    validate_fault_budget,
)
from .topology.regions import RegionSpec, TopologyConfig  # noqa: F401  (re-export)

# -- Paper constants (Section 4, "Experiment Scenarios") ---------------------

#: Average Arbitrum transaction size used as a Setchain element (bytes).
DEFAULT_ELEMENT_SIZE_MEAN = 438.0
#: Standard deviation of the Arbitrum transaction size (bytes).
DEFAULT_ELEMENT_SIZE_STD = 753.5
#: Length of an epoch-proof on the wire (bytes).
EPOCH_PROOF_SIZE = 139
#: Length of a hash-batch (hash + signature + server id) on the wire (bytes).
HASH_BATCH_SIZE = 139
#: Default CometBFT block size cap used in the evaluation (bytes): 0.5 MB.
#: The paper's analytical numbers (Appendix D.1) are consistent with binary
#: megabytes, i.e. 0.5 MB = 512 KiB = 524,288 bytes.
DEFAULT_BLOCK_SIZE = 524_288
#: Default CometBFT block production rate (blocks per second): one every 1.25s.
DEFAULT_BLOCK_RATE = 0.8
#: Paper's mempool cap after tuning: 10M transactions or 2 GB.
DEFAULT_MEMPOOL_MAX_TXS = 10_000_000
DEFAULT_MEMPOOL_MAX_BYTES = 2 * 1024**3
#: Clients add elements for 50 simulated seconds in every experiment.
DEFAULT_INJECTION_DURATION = 50.0

#: Compression ratios measured by the paper for Brotli at the two collector sizes.
PAPER_COMPRESSION_RATIO = {100: 2.7, 500: 3.5}

#: Table 1 parameter grid.
TABLE1_SENDING_RATES: tuple[int, ...] = (10_000, 5_000, 1_000, 500)
TABLE1_COLLECTOR_LIMITS: tuple[int, ...] = (100, 500)
TABLE1_SERVER_COUNTS: tuple[int, ...] = (4, 7, 10)
TABLE1_NETWORK_DELAYS_MS: tuple[int, ...] = (0, 30, 100)


@dataclass(frozen=True)
class LedgerConfig:
    """Parameters of the underlying block-based ledger (CometBFT stand-in)."""

    block_size_bytes: int = DEFAULT_BLOCK_SIZE
    block_rate: float = DEFAULT_BLOCK_RATE
    mempool_max_txs: int = DEFAULT_MEMPOOL_MAX_TXS
    mempool_max_bytes: int = DEFAULT_MEMPOOL_MAX_BYTES
    #: Base one-way message latency between consensus nodes (seconds).
    base_latency: float = 0.001
    #: Additional artificial latency added to every message (seconds) —
    #: the ``network_delay`` parameter of Table 1.
    network_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.block_size_bytes <= 0:
            raise ConfigurationError("block_size_bytes must be positive")
        if self.block_rate <= 0:
            raise ConfigurationError("block_rate must be positive")
        if self.mempool_max_txs <= 0 or self.mempool_max_bytes <= 0:
            raise ConfigurationError("mempool caps must be positive")
        if self.base_latency < 0 or self.network_delay < 0:
            raise ConfigurationError("latencies cannot be negative")

    @property
    def block_interval(self) -> float:
        """Seconds between consecutive blocks."""
        return 1.0 / self.block_rate


@dataclass(frozen=True)
class WorkloadConfig:
    """Client-side element injection parameters."""

    #: Total element injection rate across all clients (el/s).
    sending_rate: float = 10_000.0
    #: How long clients keep adding elements (simulated seconds).
    injection_duration: float = DEFAULT_INJECTION_DURATION
    element_size_mean: float = DEFAULT_ELEMENT_SIZE_MEAN
    element_size_std: float = DEFAULT_ELEMENT_SIZE_STD
    #: Random seed for the workload generator.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sending_rate <= 0:
            raise ConfigurationError("sending_rate must be positive")
        if self.injection_duration <= 0:
            raise ConfigurationError("injection_duration must be positive")
        if self.element_size_mean <= 0 or self.element_size_std < 0:
            raise ConfigurationError("element size parameters out of range")


@dataclass(frozen=True)
class SetchainConfig:
    """Setchain-layer parameters shared by the three algorithms."""

    #: Number of Setchain servers (``server_count`` in Table 1).
    n_servers: int = 10
    #: Maximum number of Byzantine servers tolerated.  The paper requires
    #: f < n/2 at the Setchain layer; the CometBFT substrate needs f < n/3.
    f: int | None = None
    #: Collector size in elements (``collector_limit`` in Table 1).
    collector_limit: int = 100
    #: Collector flush timeout: a non-empty batch is flushed after this many
    #: seconds even if the collector limit has not been reached.
    collector_timeout: float = 1.0
    #: Timeout waiting for a Request_batch reply in Hashchain (seconds).
    batch_request_timeout: float = 1.0
    #: Name of the signature scheme ("ed25519" or "simulated").
    signature_scheme: str = "simulated"
    #: Name of the compressor ("zlib" or "model").
    compressor: str = "model"
    #: Serial per-element deserialisation/validation cost (seconds) paid by a
    #: server when processing batches it did not build itself (Compresschain
    #: decompression+validation, Hashchain hash-reversal).  Calibrated so the
    #: Hashchain hash-reversal ceiling sits near the paper's ~20,000 el/s.
    element_validation_time: float = 5e-5
    #: Fixed per-ledger-transaction processing overhead (seconds).
    tx_processing_overhead: float = 1e-4

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ConfigurationError("n_servers must be at least 1")
        if self.collector_limit < 1:
            raise ConfigurationError("collector_limit must be at least 1")
        if self.collector_timeout <= 0 or self.batch_request_timeout <= 0:
            raise ConfigurationError("timeouts must be positive")
        if self.element_validation_time < 0 or self.tx_processing_overhead < 0:
            raise ConfigurationError("processing costs cannot be negative")
        f = self.f
        if f is not None:
            if f < 0:
                raise ConfigurationError("f cannot be negative")
            if f >= self.n_servers / 2:
                raise ConfigurationError(
                    f"Setchain requires f < n/2 (got f={f}, n={self.n_servers})"
                )

    @property
    def max_faulty(self) -> int:
        """Resolved ``f``: explicit value, or the largest f with f < n/2."""
        if self.f is not None:
            return self.f
        return max(0, (self.n_servers - 1) // 2)

    @property
    def quorum(self) -> int:
        """Signers/proofs needed to trust an epoch: ``f + 1``."""
        return self.max_faulty + 1


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to run one evaluation scenario end to end."""

    algorithm: str = "hashchain"
    setchain: SetchainConfig = field(default_factory=SetchainConfig)
    ledger: LedgerConfig = field(default_factory=LedgerConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    #: Which ledger implementation backs the run.  Any registered backend name
    #: is accepted; "cometbft" (full consensus simulation) and "ideal"
    #: (centralized sequencer, fast sweeps) are built in.
    ledger_backend: str = "cometbft"
    #: Multi-region/heterogeneous deployment description.  ``None`` (the
    #: default) is the paper's homogeneous single-site cluster.
    topology: TopologyConfig | None = None
    #: Declarative fault timeline executed by :mod:`repro.faults`.  ``None``
    #: (the default) is a fault-free run — no injector is built and artifacts
    #: stay byte-identical to the pre-faults schema.
    faults: FaultScheduleConfig | None = None
    #: Lifecycle-tracing sample rate in (0, 1].  ``None`` (the default)
    #: disables tracing entirely — no :class:`~repro.obs.trace.Tracer` is
    #: built, hot paths pay a single ``is None`` check, and artifacts stay
    #: byte-identical to the pre-tracing schema.
    trace_sample: float | None = None
    #: Number of independent Setchain instances (shards) the element space is
    #: hash-partitioned across.  ``setchain.n_servers`` stays *per shard*, so
    #: a sharded deployment runs ``shards * n_servers`` servers with the
    #: per-shard ``f + 1`` commit quorum.  ``None`` (the default) is the
    #: unsharded single-instance layout — no router is built and artifacts
    #: stay byte-identical to the pre-sharding schema.
    shards: int | None = None
    #: Total simulated time to run after injection stops (seconds).
    drain_duration: float = 100.0
    #: Label used by reports.
    label: str = ""

    def __post_init__(self) -> None:
        # Imported lazily: the registries load the builtin plugin module,
        # which imports the core/ledger layers (and, transitively, this one).
        from .topology import plugins
        if not plugins.has_algorithm(self.algorithm):
            raise ConfigurationError(
                f"unknown algorithm {self.algorithm!r}; registered algorithms "
                f"are {tuple(plugins.algorithm_names())}")
        if not plugins.has_ledger_backend(self.ledger_backend):
            raise ConfigurationError(
                f"unknown ledger backend {self.ledger_backend!r}; registered "
                f"backends are {tuple(plugins.ledger_backend_names())}")
        if self.drain_duration < 0:
            raise ConfigurationError("drain_duration cannot be negative")
        if self.trace_sample is not None and not 0.0 < self.trace_sample <= 1.0:
            raise ConfigurationError(
                f"trace_sample must be within (0, 1] (or None to disable "
                f"tracing), got {self.trace_sample!r}")
        if self.faults is not None:
            if not isinstance(self.faults, FaultScheduleConfig):
                raise ConfigurationError(
                    f"faults must be a FaultScheduleConfig, got "
                    f"{type(self.faults).__name__}")
            last = self.faults.last_time
            if self.faults.events and last > self.total_duration:
                raise ConfigurationError(
                    f"fault schedule extends to t={last:g}s but the run "
                    f"ends at t={self.total_duration:g}s (injection + "
                    "drain): timers past the horizon would never fire, "
                    "leaving nodes crashed or cuts unhealed — extend "
                    "drain_duration or move the events earlier")
        if self.shards is not None:
            if self.shards < 1:
                raise ConfigurationError("shards must be at least 1")
            if self.topology is not None:
                raise ConfigurationError(
                    "shards cannot be combined with a multi-region topology: "
                    "shard placement owns the server layout")
        topology = self.topology
        if topology is not None:
            if topology.n_servers != self.setchain.n_servers:
                raise ConfigurationError(
                    f"topology places {topology.n_servers} server(s) but "
                    f"setchain.n_servers is {self.setchain.n_servers}")
            if not plugins.has_latency_profile(topology.intra_profile):
                raise ConfigurationError(
                    f"unknown latency profile {topology.intra_profile!r}; "
                    f"registered profiles are "
                    f"{tuple(plugins.latency_profile_names())}")
            for region in topology.regions:
                if (region.algorithm is not None
                        and not plugins.has_algorithm(region.algorithm)):
                    raise ConfigurationError(
                        f"region {region.name!r} uses unknown algorithm "
                        f"{region.algorithm!r}; registered algorithms are "
                        f"{tuple(plugins.algorithm_names())}")
        if self.faults is not None and self.faults.events:
            # Schedules that turn servers Byzantine must stay within the
            # declared tolerance at every instant — this is also where a
            # static `.byzantine(f=...)` and scheduled `BecomeByzantine`
            # events are checked against each other (the f the scenario
            # claims to tolerate bounds what the schedule may inject).
            validate_fault_budget(self.faults, self.setchain,
                                  self.server_assignments())

    @property
    def total_duration(self) -> float:
        return self.workload.injection_duration + self.drain_duration

    @property
    def is_heterogeneous(self) -> bool:
        """True when regions run more than one algorithm."""
        return (self.topology is not None
                and self.topology.is_heterogeneous(self.algorithm))

    @property
    def total_servers(self) -> int:
        """Deployment-wide server count (``shards * n_servers`` when sharded)."""
        if self.shards is None:
            return self.setchain.n_servers
        return self.shards * self.setchain.n_servers

    def server_assignments(self) -> list[tuple[str | None, str]]:
        """Per-server ``(region-or-None, algorithm)`` in deployment order."""
        if self.topology is None:
            return [(None, self.algorithm)] * self.total_servers
        return list(self.topology.assignments(self.algorithm))

    def with_overrides(self, **kwargs: object) -> "ExperimentConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def base_scenario(algorithm: str = "hashchain", **kwargs: object) -> ExperimentConfig:
    """The paper's base scenario: 10 servers, 10,000 el/s, no network delay.

    .. deprecated::
        This is a thin shim over :class:`repro.api.Scenario`; prefer the
        builder (``Scenario.hashchain().rate(...).build()``) in new code.

    Keyword overrides are applied to the nested configs by name:
    ``sending_rate``, ``collector_limit``, ``n_servers``, ``network_delay_ms``
    (milliseconds, matching Table 1; the spelling ``network_delay`` is also
    accepted), ``block_size_bytes``, ``injection_duration``, ``seed``,
    ``label``, ``ledger_backend``, ``drain_duration``.
    """
    from .api.builder import ScenarioBuilder

    builder = ScenarioBuilder(algorithm)
    if "network_delay" in kwargs and "network_delay_ms" in kwargs:
        raise ConfigurationError(
            "pass either network_delay or network_delay_ms, not both")
    delay_ms = kwargs.pop("network_delay_ms", kwargs.pop("network_delay", None))
    if delay_ms is not None:
        builder = builder.delay_ms(float(delay_ms))  # type: ignore[arg-type]

    setters = {
        "sending_rate": "rate",
        "collector_limit": "collector",
        "n_servers": "servers",
        "block_size_bytes": "block_size",
        "injection_duration": "inject_for",
        "seed": "seed",
        "label": "label",
        "ledger_backend": "backend",
        "drain_duration": "drain",
    }
    unknown = sorted(set(kwargs) - set(setters))
    if unknown:
        raise ConfigurationError(f"unknown scenario overrides: {unknown}")
    for name, value in kwargs.items():
        builder = getattr(builder, setters[name])(value)
    return builder.build()


def table1_grid() -> Sequence[ExperimentConfig]:
    """Every combination of the Table 1 parameters for every algorithm.

    Returned lazily as a list; callers typically filter before running since a
    full sweep is large.
    """
    grid: list[ExperimentConfig] = []
    for algorithm in ("vanilla", "compresschain", "hashchain"):
        for rate in TABLE1_SENDING_RATES:
            for servers in TABLE1_SERVER_COUNTS:
                for delay in TABLE1_NETWORK_DELAYS_MS:
                    if algorithm == "vanilla":
                        grid.append(base_scenario(algorithm, sending_rate=rate,
                                                  n_servers=servers,
                                                  network_delay_ms=delay))
                        continue
                    for collector in TABLE1_COLLECTOR_LIMITS:
                        grid.append(base_scenario(algorithm, sending_rate=rate,
                                                  n_servers=servers,
                                                  network_delay_ms=delay,
                                                  collector_limit=collector))
    return grid
