"""Compressor interface and the compressed-batch container."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True, slots=True)
class CompressedBatch:
    """A compressed collector batch as appended to the ledger by Compresschain.

    ``items`` retains the original objects so decompression in the simulation
    is exact; ``compressed_size`` is the modelled (or real) wire size of the
    compressed body, and ``original_size`` the pre-compression size, so the
    compression ratio is observable by the analysis layer.
    """

    items: tuple[object, ...]
    compressed_size: int
    original_size: int
    codec: str

    @property
    def ratio(self) -> float:
        """Original/compressed size ratio (paper reports 2.5-3.5 for Brotli)."""
        if self.compressed_size <= 0:
            return float("inf")
        return self.original_size / self.compressed_size

    def __len__(self) -> int:
        return len(self.items)


class Compressor(ABC):
    """Compress/decompress collector batches."""

    name: str = "abstract"

    @abstractmethod
    def compress(self, items: Sequence[object], original_size: int) -> CompressedBatch:
        """Build a :class:`CompressedBatch` from the batch ``items``.

        ``original_size`` is the summed modelled size of the items (elements
        plus epoch-proofs) before compression.
        """

    def decompress(self, batch: CompressedBatch) -> tuple[object, ...]:
        """Recover the original items.  Returns an empty tuple for foreign payloads."""
        if not isinstance(batch, CompressedBatch):
            return ()
        return batch.items
