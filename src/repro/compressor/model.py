"""Ratio-model compressor pinned to the paper's measured Brotli ratios."""

from __future__ import annotations

from typing import Sequence

from ..config import PAPER_COMPRESSION_RATIO
from .base import CompressedBatch, Compressor


def paper_ratio_for_batch(batch_size: int) -> float:
    """Interpolate the paper's compression ratio for a given collector size.

    The paper reports r ≈ 2.7 at collector size 100 and r ≈ 3.5 at 500; we
    interpolate linearly between (and clamp outside) those calibration points.
    """
    low_c, high_c = 100, 500
    low_r, high_r = PAPER_COMPRESSION_RATIO[low_c], PAPER_COMPRESSION_RATIO[high_c]
    if batch_size <= low_c:
        return low_r
    if batch_size >= high_c:
        return high_r
    frac = (batch_size - low_c) / (high_c - low_c)
    return low_r + frac * (high_r - low_r)


class ModelCompressor(Compressor):
    """Produce compressed sizes following a fixed or paper-calibrated ratio.

    With ``ratio=None`` (default) the ratio tracks the batch size via
    :func:`paper_ratio_for_batch`; otherwise the given constant ratio is used.
    """

    name = "model"

    def __init__(self, ratio: float | None = None) -> None:
        if ratio is not None and ratio <= 0:
            raise ValueError("compression ratio must be positive")
        self.ratio = ratio

    def compress(self, items: Sequence[object], original_size: int) -> CompressedBatch:
        ratio = self.ratio if self.ratio is not None else paper_ratio_for_batch(len(items))
        compressed_size = max(1, int(round(original_size / ratio)))
        return CompressedBatch(items=tuple(items), compressed_size=compressed_size,
                               original_size=original_size, codec=self.name)
