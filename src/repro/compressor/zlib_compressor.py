"""Real DEFLATE compression of canonical batch bytes."""

from __future__ import annotations

import zlib
from typing import Sequence

from ..crypto.hashing import canonical_bytes_of
from .base import CompressedBatch, Compressor


class ZlibCompressor(Compressor):
    """Compress the concatenated canonical encodings of the batch items.

    The compressed size is what :func:`zlib.compress` actually produces for
    the canonical byte stream, so the ratio reflects real (if not Brotli-equal)
    codec behaviour.  Decompression still returns the retained item objects;
    the compressed body is only used for size accounting, and a round-trip
    check guards against silent corruption of the canonical stream.
    """

    name = "zlib"

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError("zlib level must be in [0, 9]")
        self.level = level

    def compress(self, items: Sequence[object], original_size: int) -> CompressedBatch:
        blobs = [canonical_bytes_of(item) for item in items]
        stream = b"".join(len(b).to_bytes(4, "big") + b for b in blobs)
        body = zlib.compress(stream, self.level)
        if zlib.decompress(body) != stream:  # pragma: no cover - zlib is reliable
            raise RuntimeError("zlib round-trip failed")
        return CompressedBatch(items=tuple(items), compressed_size=len(body),
                               original_size=max(original_size, len(stream)),
                               codec=self.name)
