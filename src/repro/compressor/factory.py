"""Compressor factory keyed by configuration name."""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import Compressor
from .model import ModelCompressor
from .zlib_compressor import ZlibCompressor


def make_compressor(name: str, **kwargs: object) -> Compressor:
    """Build a compressor by name: ``"model"`` or ``"zlib"``."""
    if name == "model":
        ratio = kwargs.pop("ratio", None)
        if kwargs:
            raise ConfigurationError(f"unknown ModelCompressor options: {sorted(kwargs)}")
        return ModelCompressor(ratio=ratio)  # type: ignore[arg-type]
    if name == "zlib":
        level = int(kwargs.pop("level", 6))  # type: ignore[arg-type]
        if kwargs:
            raise ConfigurationError(f"unknown ZlibCompressor options: {sorted(kwargs)}")
        return ZlibCompressor(level=level)
    raise ConfigurationError(f"unknown compressor {name!r}; expected 'model' or 'zlib'")
