"""Batch compression substrate for Compresschain.

The paper compresses collector batches with Brotli before appending them to
the ledger, observing compression ratios of roughly 2.7 (collector size 100)
to 3.5 (collector size 500).  Brotli is not available offline, so two
interchangeable codecs are provided:

* :class:`ZlibCompressor` — a real DEFLATE codec (stdlib) operating on the
  batch's canonical bytes.
* :class:`ModelCompressor` — a size-model codec that produces a placeholder
  body whose *modelled* size follows the paper's measured ratios exactly.
  This is the default for benchmark runs because only the compressed size,
  never the compressed content, influences the algorithms.
"""

from .base import Compressor, CompressedBatch
from .zlib_compressor import ZlibCompressor
from .model import ModelCompressor
from .factory import make_compressor

__all__ = [
    "Compressor",
    "CompressedBatch",
    "ZlibCompressor",
    "ModelCompressor",
    "make_compressor",
]
