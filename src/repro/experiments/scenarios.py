"""Named scenarios matching the paper's evaluation section.

These grids are expressed through the typed :class:`repro.api.Scenario`
builder; the same scenario sets are also individually registered by name in
:mod:`repro.api.catalog` for CLI use (``python -m repro list-scenarios``).
"""

from __future__ import annotations

from ..api.builder import Scenario
from ..config import (
    ExperimentConfig,
    TABLE1_COLLECTOR_LIMITS,
    TABLE1_NETWORK_DELAYS_MS,
    TABLE1_SENDING_RATES,
    TABLE1_SERVER_COUNTS,
)


def _point(algorithm: str, *, rate: float = 10_000, collector: int = 100,
           servers: int = 10, delay_ms: float = 0, label: str) -> ExperimentConfig:
    """One evaluation grid point around the paper's base scenario."""
    return (Scenario(algorithm).rate(rate).collector(collector)
            .servers(servers).delay_ms(delay_ms).label(label).build())


def figure1_scenarios() -> dict[str, list[ExperimentConfig]]:
    """Fig. 1: throughput over time, 10 servers, no delay.

    * left   — sending rate 5,000 el/s, collector 100, all three algorithms;
    * center — sending rate 10,000 el/s, collector 100, Compresschain & Hashchain;
    * right  — sending rate 10,000 el/s, collector 500, Compresschain & Hashchain.
    """
    def configs(rate: float, collector: int, algorithms: list[str]) -> list[ExperimentConfig]:
        return [_point(a, rate=rate, collector=collector,
                       label=f"fig1 {a} rate={rate:g} c={collector}")
                for a in algorithms]

    return {
        "left": configs(5_000, 100, ["vanilla", "compresschain", "hashchain"]),
        "center": configs(10_000, 100, ["compresschain", "hashchain"]),
        "right": configs(10_000, 500, ["compresschain", "hashchain"]),
    }


def figure2_left_scenarios() -> list[ExperimentConfig]:
    """Fig. 2 left: pushing the limits with collector 500.

    Hashchain with hash-reversal at a sending rate past its ~20k el/s ceiling,
    Hashchain light (no hash-reversal / validation) at 150k el/s, plus the
    Compresschain / Compresschain-light / Vanilla saturation points.
    """
    return [
        Scenario.hashchain().rate(25_000).collector(500)
        .label("fig2 hashchain (hash-reversal)").build(),
        Scenario.hashchain_light().rate(150_000).collector(500)
        .label("fig2 hashchain light").build(),
        Scenario.compresschain().rate(10_000).collector(500)
        .label("fig2 compresschain").build(),
        Scenario.compresschain_light().rate(10_000).collector(500)
        .label("fig2 compresschain light").build(),
        Scenario.vanilla().rate(5_000).label("fig2 vanilla").build(),
    ]


def figure3_base_scenario() -> dict[str, object]:
    """Fig. 3's base point: 10 servers, 10,000 el/s, no network delay."""
    return {"n_servers": 10, "sending_rate": 10_000.0, "network_delay_ms": 0.0}


def figure3a_grid() -> list[ExperimentConfig]:
    """Fig. 3a: efficiency vs sending rate for every algorithm/collector combo."""
    configs: list[ExperimentConfig] = []
    for rate in sorted(TABLE1_SENDING_RATES):
        configs.append(_point("vanilla", rate=rate,
                              label=f"fig3a vanilla rate={rate}"))
        for collector in TABLE1_COLLECTOR_LIMITS:
            for algorithm in ("compresschain", "hashchain"):
                configs.append(_point(algorithm, rate=rate, collector=collector,
                                      label=f"fig3a {algorithm} c={collector} rate={rate}"))
    return configs


def figure3b_grid() -> list[ExperimentConfig]:
    """Fig. 3b: efficiency vs number of servers at 10,000 el/s."""
    configs: list[ExperimentConfig] = []
    for servers in TABLE1_SERVER_COUNTS:
        configs.append(_point("vanilla", servers=servers,
                              label=f"fig3b vanilla n={servers}"))
        for collector in TABLE1_COLLECTOR_LIMITS:
            for algorithm in ("compresschain", "hashchain"):
                configs.append(_point(algorithm, servers=servers, collector=collector,
                                      label=f"fig3b {algorithm} c={collector} n={servers}"))
    return configs


def figure3c_grid() -> list[ExperimentConfig]:
    """Fig. 3c: efficiency vs artificial network delay at 10,000 el/s."""
    configs: list[ExperimentConfig] = []
    for delay in TABLE1_NETWORK_DELAYS_MS:
        configs.append(_point("vanilla", delay_ms=delay,
                              label=f"fig3c vanilla delay={delay}ms"))
        for collector in TABLE1_COLLECTOR_LIMITS:
            for algorithm in ("compresschain", "hashchain"):
                configs.append(_point(algorithm, delay_ms=delay, collector=collector,
                                      label=f"fig3c {algorithm} c={collector} delay={delay}ms"))
    return configs


def figure4_scenarios() -> list[ExperimentConfig]:
    """Fig. 4: latency CDFs, 10 servers, 1,250 el/s, collector 100, no delay."""
    return [_point(algorithm, rate=1_250, collector=100, label=f"fig4 {algorithm}")
            for algorithm in ("vanilla", "compresschain", "hashchain")]


def figure5_grids() -> dict[str, list[ExperimentConfig]]:
    """Fig. 5 uses the same grids as Fig. 3 (commit-time quantiles instead of efficiency)."""
    return {"rate": figure3a_grid(), "servers": figure3b_grid(), "delay": figure3c_grid()}


def table1_parameters() -> dict[str, tuple]:
    """Table 1 verbatim."""
    return {
        "sending_rate (el/s)": TABLE1_SENDING_RATES,
        "collector_limit (el)": TABLE1_COLLECTOR_LIMITS,
        "server_count": TABLE1_SERVER_COUNTS,
        "network_delay (ms)": TABLE1_NETWORK_DELAYS_MS,
    }
