"""Regenerators for every figure of the evaluation.

Each ``figure*`` function runs the corresponding (scaled) scenarios and
returns plain data structures — series, efficiency values, CDFs — that the
benchmarks print and EXPERIMENTS.md summarises.  No plotting dependency is
required; the series are the figures' content.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.analytical import blocksize_sweep
from ..analysis.latency import LatencyCDF
from ..analysis.throughput import ThroughputSeries
from .runner import ExperimentResult, run_scenario
from .scenarios import (
    figure1_scenarios,
    figure2_left_scenarios,
    figure3a_grid,
    figure3b_grid,
    figure3c_grid,
    figure4_scenarios,
    figure5_grids,
)

#: Default scale factor for simulation-backed figures (documented in EXPERIMENTS.md).
DEFAULT_SCALE = 10.0
#: Reduced drain used by the figure runs to bound runtime.
_FIGURE_HORIZON = 150.0


@dataclass
class FigureSeries:
    """One labelled curve of a figure."""

    label: str
    series: ThroughputSeries
    analytical: float
    sending_rate: float


def figure1(scale: float = DEFAULT_SCALE,
            panels: tuple[str, ...] = ("left", "center", "right")) -> dict[str, list[FigureSeries]]:
    """Fig. 1: rolling throughput over time for the three evaluation scenarios."""
    results: dict[str, list[FigureSeries]] = {}
    for panel, configs in figure1_scenarios().items():
        if panel not in panels:
            continue
        curves: list[FigureSeries] = []
        for config in configs:
            outcome = run_scenario(config, scale=scale, horizon=_FIGURE_HORIZON)
            curves.append(FigureSeries(label=config.algorithm,
                                       series=outcome.throughput,
                                       analytical=outcome.analytical_throughput,
                                       sending_rate=outcome.sending_rate))
        results[panel] = curves
    return results


def figure2_left(scale: float = DEFAULT_SCALE * 4) -> list[ExperimentResult]:
    """Fig. 2 left: highest achieved throughput with and without hash reversal.

    The heavier sending rates use a larger default scale so the benchmark
    stays tractable; the comparison of interest (light ≫ full Hashchain ≫
    Compresschain ≫ Vanilla) is scale-invariant.
    """
    return [run_scenario(config, scale=scale, horizon=_FIGURE_HORIZON)
            for config in figure2_left_scenarios()]


def figure2_right(block_sizes_mb: tuple[float, ...] = (0.5, 1, 2, 4, 8, 16, 32, 64, 128),
                  collector_size: int = 500) -> dict[str, list[float]]:
    """Fig. 2 right: analytical throughput vs ledger block size (no simulation)."""
    sizes_bytes = [mb * 1_048_576 for mb in block_sizes_mb]
    return {
        "block_size_mb": list(block_sizes_mb),
        "vanilla": blocksize_sweep("vanilla", sizes_bytes, collector_size),
        "compresschain": blocksize_sweep("compresschain", sizes_bytes, collector_size),
        "hashchain": blocksize_sweep("hashchain", sizes_bytes, collector_size),
    }


def _efficiency_rows(configs, scale: float) -> list[dict[str, object]]:  # type: ignore[no-untyped-def]
    rows = []
    for config in configs:
        outcome = run_scenario(config, scale=scale, horizon=_FIGURE_HORIZON)
        rows.append({
            "label": config.label,
            "algorithm": config.algorithm,
            "collector": config.setchain.collector_limit,
            "sending_rate": config.workload.sending_rate,
            "n_servers": config.setchain.n_servers,
            "network_delay_ms": config.ledger.network_delay * 1000,
            "efficiency_50s": outcome.efficiency.at_50,
            "efficiency_75s": outcome.efficiency.at_75,
            "efficiency_100s": outcome.efficiency.at_100,
            "commit_times": outcome.commit_times,
        })
    return rows


def figure3a(scale: float = DEFAULT_SCALE, rates: tuple[float, ...] | None = None) -> list[dict[str, object]]:
    """Fig. 3a: efficiency vs sending rate (optionally restricted to some rates)."""
    configs = figure3a_grid()
    if rates is not None:
        configs = [c for c in configs if c.workload.sending_rate in rates]
    return _efficiency_rows(configs, scale)


def figure3b(scale: float = DEFAULT_SCALE, server_counts: tuple[int, ...] | None = None) -> list[dict[str, object]]:
    """Fig. 3b: efficiency vs number of servers."""
    configs = figure3b_grid()
    if server_counts is not None:
        configs = [c for c in configs if c.setchain.n_servers in server_counts]
    return _efficiency_rows(configs, scale)


def figure3c(scale: float = DEFAULT_SCALE, delays_ms: tuple[int, ...] | None = None) -> list[dict[str, object]]:
    """Fig. 3c: efficiency vs artificial network delay."""
    configs = figure3c_grid()
    if delays_ms is not None:
        configs = [c for c in configs
                   if round(c.ledger.network_delay * 1000) in delays_ms]
    return _efficiency_rows(configs, scale)


def figure4(scale: float = 5.0) -> dict[str, dict[str, LatencyCDF]]:
    """Fig. 4: latency CDFs to the five stages for each algorithm.

    Runs at the paper's 1,250 el/s scenario (lightly scaled) on the CometBFT
    backend so the mempool stages exist.
    """
    results: dict[str, dict[str, LatencyCDF]] = {}
    for config in figure4_scenarios():
        outcome = run_scenario(config, scale=scale, to_completion=True)
        results[config.algorithm] = outcome.latency_cdfs()
    return results


def figure5(scale: float = DEFAULT_SCALE,
            dimensions: tuple[str, ...] = ("rate", "servers", "delay"),
            subset: int | None = None) -> dict[str, list[dict[str, object]]]:
    """Fig. 5: commit-time quantiles across the Fig. 3 grids."""
    grids = figure5_grids()
    results: dict[str, list[dict[str, object]]] = {}
    for dimension in dimensions:
        configs = grids[dimension]
        if subset is not None:
            configs = configs[:subset]
        results[dimension] = _efficiency_rows(configs, scale)
    return results
