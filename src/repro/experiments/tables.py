"""Regenerators for the paper's tables."""

from __future__ import annotations

from ..analysis.analytical import (
    compresschain_throughput,
    hashchain_throughput,
    paper_analysis_parameters,
    vanilla_throughput,
)
from ..analysis.report import render_table
from .runner import run_scenario
from .scenarios import figure1_scenarios, table1_parameters

#: The values Appendix D.1 reports (el/s), used as reference columns.
PAPER_ANALYTICAL_VALUES = {
    "vanilla": 955.0,
    "compresschain c=100": 2_497.0,
    "compresschain c=500": 3_330.0,
    "hashchain c=100": 27_157.0,
    "hashchain c=500": 147_857.0,
}

#: The averages Table 2 reports for Fig. 1's three panels (el/s up to 50 s).
PAPER_TABLE2_VALUES = {
    ("vanilla", "left"): 171.0,
    ("vanilla", "center"): 100.0,
    ("vanilla", "right"): 100.0,
    ("compresschain", "left"): 996.0,
    ("compresschain", "center"): 571.0,
    ("compresschain", "right"): 743.0,
    ("hashchain", "left"): 4_183.0,
    ("hashchain", "center"): 2_540.0,
    ("hashchain", "right"): 7_369.0,
}


def table1() -> str:
    """Table 1: the evaluation parameter grid."""
    params = table1_parameters()
    rows = [[name, ", ".join(str(v) for v in values)] for name, values in params.items()]
    return render_table(["Name", "Values"], rows, title="Table 1: Setchain evaluation parameters")


def appendix_d1() -> dict[str, float]:
    """Appendix D.1: analytical throughput of every algorithm/collector combination."""
    p100 = paper_analysis_parameters(100)
    p500 = paper_analysis_parameters(500)
    return {
        "vanilla": vanilla_throughput(p500),
        "compresschain c=100": compresschain_throughput(p100),
        "compresschain c=500": compresschain_throughput(p500),
        "hashchain c=100": hashchain_throughput(p100),
        "hashchain c=500": hashchain_throughput(p500),
    }


def table2(scale: float = 10.0) -> list[dict[str, object]]:
    """Table 2: average throughput up to 50 s for the Fig. 1 scenarios.

    Measured values are produced at the given scale; ``scaled_paper_value``
    divides the paper's number by the same scale so shapes can be compared
    directly, and ``ratio_vs_paper`` is measured / scaled-paper.
    """
    rows: list[dict[str, object]] = []
    for panel, configs in figure1_scenarios().items():
        for config in configs:
            outcome = run_scenario(config, scale=scale, horizon=120.0)
            paper_value = PAPER_TABLE2_VALUES.get((config.algorithm, panel))
            scaled_paper = paper_value / scale if paper_value is not None else None
            rows.append({
                "panel": panel,
                "algorithm": config.algorithm,
                "collector": config.setchain.collector_limit,
                "sending_rate": config.workload.sending_rate,
                "avg_throughput_50s": outcome.avg_throughput_50s,
                "paper_value": paper_value,
                "scaled_paper_value": scaled_paper,
                "ratio_vs_paper": (outcome.avg_throughput_50s / scaled_paper
                                   if scaled_paper else None),
            })
    return rows


def render_table2(rows: list[dict[str, object]]) -> str:
    """Text rendering of :func:`table2` output."""
    headers = ["panel", "algorithm", "collector", "measured el/s",
               "paper el/s (scaled)", "ratio"]
    body = [[r["panel"], r["algorithm"], r["collector"],
             round(float(r["avg_throughput_50s"]), 1),
             round(float(r["scaled_paper_value"]), 1) if r["scaled_paper_value"] else "-",
             round(float(r["ratio_vs_paper"]), 2) if r["ratio_vs_paper"] else "-"]
            for r in rows]
    return render_table(headers, body, title="Table 2: average throughput up to 50 s")
