"""Running scenarios, including the documented down-scaling.

The paper's full rates (up to 150,000 el/s for 50 s) are impractical for a
pure-Python discrete-event simulation, so the runner supports a *scale factor*
``s`` that divides the sending rate and the ledger block size by ``s`` while
multiplying the per-element processing costs and the collector timeout by
``s``.  This keeps every dimensionless ratio that determines the results —
offered load over analytical capacity, hash-reversal ceiling over offered
load, collector fill time versus flush timeout — unchanged, so orderings,
saturation behaviour and efficiency shapes match the unscaled system while
absolute el/s values are lower by ``s`` (recorded per run in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analysis.analytical import AnalyticalParameters, throughput_for
from ..analysis.committime import CommitTimeSummary, commit_time_quantiles
from ..analysis.efficiency import EfficiencyResult, efficiency_profile
from ..analysis.latency import LatencyCDF, stage_latencies
from ..analysis.metrics import MetricsCollector
from ..analysis.throughput import ThroughputSeries, average_throughput, rolling_throughput
from ..config import ExperimentConfig, PAPER_COMPRESSION_RATIO
from ..core.deployment import Deployment, run_experiment
from ..errors import ConfigurationError


def scaled_config(config: ExperimentConfig, scale: float) -> ExperimentConfig:
    """Scale a paper scenario down by ``scale`` (see module docstring)."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    if scale == 1:
        return config
    workload = replace(config.workload,
                       sending_rate=config.workload.sending_rate / scale)
    ledger = replace(config.ledger,
                     block_size_bytes=max(2000, int(config.ledger.block_size_bytes / scale)))
    setchain = replace(config.setchain,
                       collector_timeout=config.setchain.collector_timeout * scale,
                       element_validation_time=config.setchain.element_validation_time * scale,
                       tx_processing_overhead=config.setchain.tx_processing_overhead * scale)
    return replace(config, workload=workload, ledger=ledger, setchain=setchain,
                   label=f"{config.label} (scale 1/{scale:g})")


@dataclass
class ExperimentResult:
    """Everything the figures/tables need from one run."""

    config: ExperimentConfig
    scale: float
    deployment: Deployment
    metrics: MetricsCollector
    throughput: ThroughputSeries
    avg_throughput_50s: float
    efficiency: EfficiencyResult
    commit_times: CommitTimeSummary
    analytical_throughput: float
    #: Resilience report from the fault injector; ``None`` for fault-free runs.
    faults: dict | None = None
    #: Membership timeline (epochs, joins, leaves); ``None`` for static runs.
    membership: dict | None = None
    #: Tracing telemetry report; ``None`` when tracing is disabled.
    telemetry: dict | None = None
    #: Cross-shard report (per-shard commit/throughput, router admissions,
    #: skew); ``None`` for unsharded runs.
    shards: dict | None = None

    @property
    def label(self) -> str:
        return self.config.label

    @property
    def sending_rate(self) -> float:
        return self.config.workload.sending_rate

    def latency_cdfs(self) -> dict[str, LatencyCDF]:
        """Stage latency CDFs (mempool stages only for CometBFT-backed runs)."""
        backend = self.deployment.ledger_backend
        mempool_arrivals = None
        nodes = getattr(backend, "nodes", None)
        if nodes:
            mempool_arrivals = [node.mempool.arrival_times for node in nodes.values()]
        return stage_latencies(self.metrics, mempool_arrivals,
                               quorum=self.config.setchain.quorum)

    def summary_row(self) -> list[object]:
        """One row for the report tables (schema shared with ``RunResult``)."""
        from ..api.results import summary_row
        return summary_row(self.config.algorithm, self.sending_rate,
                           self.config.setchain.collector_limit,
                           self.avg_throughput_50s,
                           self.efficiency.at_50, self.efficiency.at_100)


def analytical_reference(config: ExperimentConfig) -> float:
    """The Appendix-D throughput bound for a (possibly scaled) configuration."""
    collector = config.setchain.collector_limit
    ratio = PAPER_COMPRESSION_RATIO.get(collector)
    if ratio is None:
        ratio = PAPER_COMPRESSION_RATIO[100] if collector < 300 else PAPER_COMPRESSION_RATIO[500]
    params = AnalyticalParameters(
        n_servers=config.setchain.n_servers,
        block_size_bytes=config.ledger.block_size_bytes,
        block_rate=config.ledger.block_rate,
        element_size=config.workload.element_size_mean,
        collector_size=max(collector, config.setchain.n_servers + 1),
        compression_ratio=ratio,
    )
    bound = throughput_for(config.algorithm, params)
    if config.shards is not None:
        # Shards are independent instances over the partitioned element
        # space, so the analytical ceiling scales linearly with their count.
        bound *= config.shards
    return bound


def package_result(deployment: Deployment, scale: float = 1.0) -> ExperimentResult:
    """Package the standard analyses for an already-run deployment.

    Used by :func:`run_scenario` after a batch run and by
    :class:`repro.api.Session` to snapshot results mid-run.
    """
    effective = deployment.config
    metrics = deployment.metrics
    commit_times = metrics.commit_times()
    throughput = rolling_throughput(commit_times,
                                    horizon=deployment.sim.now)
    return ExperimentResult(
        config=effective,
        scale=scale,
        deployment=deployment,
        metrics=metrics,
        throughput=throughput,
        avg_throughput_50s=average_throughput(commit_times, up_to=50.0),
        efficiency=efficiency_profile(metrics, label=effective.label,
                                      total_added=len(deployment.injected_elements)),
        commit_times=commit_time_quantiles(metrics,
                                           total_added=len(deployment.injected_elements),
                                           label=effective.label),
        analytical_throughput=analytical_reference(effective),
        faults=(deployment.fault_injector.report()
                if deployment.fault_injector is not None else None),
        membership=deployment.membership_report(),
        telemetry=(deployment.tracer.telemetry_report(deployment)
                   if deployment.tracer is not None else None),
        shards=deployment.shard_report(),
    )


def run_scenario(config: ExperimentConfig, scale: float = 1.0,
                 to_completion: bool = False, horizon: float | None = None,
                 seed: int | None = None) -> ExperimentResult:
    """Run one scenario (optionally scaled) and package the standard analyses."""
    effective = scaled_config(config, scale)
    deployment = run_experiment(effective, seed=seed, to_completion=to_completion)
    if horizon is not None and deployment.sim.now < horizon:
        deployment.run(until=horizon)
    return package_result(deployment, scale=scale)
