"""Experiment harness: named scenarios, the scaled runner, and regenerators
for every figure and table of the paper's evaluation (see DESIGN.md §4)."""

from .runner import ExperimentResult, run_scenario, scaled_config
from .scenarios import (
    figure1_scenarios,
    figure2_left_scenarios,
    figure3_base_scenario,
    figure4_scenarios,
    table1_parameters,
)
from . import figures, tables

__all__ = [
    "ExperimentResult",
    "run_scenario",
    "scaled_config",
    "figure1_scenarios",
    "figure2_left_scenarios",
    "figure3_base_scenario",
    "figure4_scenarios",
    "table1_parameters",
    "figures",
    "tables",
]
