"""The efficiency metric (Fig. 3).

Efficiency = committed elements / added elements, computed after 50, 75 and
100 seconds.  Clients stop adding at 50 s, so an unstressed algorithm shows
efficiency close to 1 at 50 s and exactly 1 by 75 s.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from ..errors import ConfigurationError
from .metrics import MetricsCollector

#: The paper's three evaluation instants (seconds).
PAPER_EFFICIENCY_TIMES = (50.0, 75.0, 100.0)


@dataclass(frozen=True)
class EfficiencyResult:
    """Efficiency of one run at the three standard instants."""

    label: str
    at_50: float
    at_75: float
    at_100: float

    def as_dict(self) -> dict[str, float]:
        return {"50s": self.at_50, "75s": self.at_75, "100s": self.at_100}

    @property
    def fully_efficient(self) -> bool:
        """True when every added element committed within 100 s."""
        return self.at_100 >= 1.0 - 1e-9


def efficiency_at(metrics: MetricsCollector, time: float,
                  total_added: int | None = None) -> float:
    """Committed/added ratio considering only commits at or before ``time``."""
    if time <= 0:
        raise ConfigurationError("time must be positive")
    added = total_added if total_added is not None else metrics.injected_count
    if added == 0:
        return 0.0
    committed = bisect_right(metrics.commit_times(), time)
    return min(1.0, committed / added)


def efficiency_profile(metrics: MetricsCollector, label: str = "",
                       total_added: int | None = None) -> EfficiencyResult:
    """Efficiency at the paper's 50/75/100 s instants."""
    values = [efficiency_at(metrics, t, total_added) for t in PAPER_EFFICIENCY_TIMES]
    return EfficiencyResult(label=label, at_50=values[0], at_75=values[1],
                            at_100=values[2])
