"""Latency CDFs to the five processing stages of Fig. 4.

For every element the paper measures the time from client injection until the
element reaches:

1. the first CometBFT mempool,
2. f+1 CometBFT mempools,
3. all CometBFT mempools,
4. the ledger (inclusion in a finalized block),
5. commit (f+1 epoch-proofs of its epoch in the ledger).

Stages 1-3 are reconstructed post-run from the mempool arrival tables of the
ledger nodes plus the tx→elements mapping recorded at append time; stages 4-5
come directly from the element lifecycle records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .metrics import MetricsCollector

STAGES = ("first_mempool", "quorum_mempools", "all_mempools", "ledger", "committed")


@dataclass(frozen=True)
class LatencyCDF:
    """Empirical CDF of one stage's latencies."""

    stage: str
    latencies: tuple[float, ...]

    @property
    def count(self) -> int:
        return len(self.latencies)

    def fraction_below(self, threshold: float) -> float:
        """F(threshold): fraction of observed latencies at or below ``threshold``."""
        if not self.latencies:
            return 0.0
        return sum(1 for v in self.latencies if v <= threshold) / len(self.latencies)

    def quantile(self, q: float) -> float:
        """The q-quantile latency (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError("quantile must be in [0, 1]")
        if not self.latencies:
            return float("nan")
        return float(np.quantile(np.asarray(self.latencies), q))

    def curve(self, points: int = 100) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """(x, F(x)) samples of the CDF, suitable for plotting or tabulation."""
        if not self.latencies:
            return (), ()
        values = np.sort(np.asarray(self.latencies))
        xs = np.linspace(0.0, float(values[-1]), points)
        fs = np.searchsorted(values, xs, side="right") / len(values)
        return tuple(float(x) for x in xs), tuple(float(f) for f in fs)


def _mempool_stage_times(metrics: MetricsCollector,
                         mempool_arrivals: Sequence[dict[int, float]],
                         quorum: int) -> dict[int, tuple[float | None, float | None, float | None]]:
    """Per-element (first, quorum-th, all) mempool arrival times."""
    element_arrivals: dict[int, list[float]] = {}
    for arrivals in mempool_arrivals:
        for tx_id, time in arrivals.items():
            for element_id in metrics.tx_elements.get(tx_id, ()):
                element_arrivals.setdefault(element_id, []).append(time)
    n_mempools = len(mempool_arrivals)
    stages: dict[int, tuple[float | None, float | None, float | None]] = {}
    for element_id, times in element_arrivals.items():
        times.sort()
        first = times[0]
        quorum_time = times[quorum - 1] if len(times) >= quorum else None
        all_time = times[-1] if len(times) >= n_mempools else None
        stages[element_id] = (first, quorum_time, all_time)
    return stages


def stage_latencies(metrics: MetricsCollector,
                    mempool_arrivals: Sequence[dict[int, float]] | None = None,
                    quorum: int = 1) -> dict[str, LatencyCDF]:
    """Latency CDFs for every stage that can be computed from the inputs.

    ``mempool_arrivals`` is the list of per-ledger-node ``{tx_id: arrival_time}``
    tables (``Mempool.arrival_times``); when omitted, only the ledger and
    commit stages are produced (e.g. for ideal-ledger runs).
    """
    ledger_latencies: list[float] = []
    commit_latencies: list[float] = []
    first_latencies: list[float] = []
    quorum_latencies: list[float] = []
    all_latencies: list[float] = []

    mempool_stages = ( _mempool_stage_times(metrics, mempool_arrivals, quorum)
                       if mempool_arrivals else {})

    for record in metrics.elements.values():
        if record.injected_at is None:
            continue
        start = record.injected_at
        if record.in_ledger_at is not None:
            ledger_latencies.append(record.in_ledger_at - start)
        if record.committed_at is not None:
            commit_latencies.append(record.committed_at - start)
        stage = mempool_stages.get(record.element_id)
        if stage is not None:
            first, quorum_time, all_time = stage
            if first is not None:
                first_latencies.append(first - start)
            if quorum_time is not None:
                quorum_latencies.append(quorum_time - start)
            if all_time is not None:
                all_latencies.append(all_time - start)

    result = {
        "ledger": LatencyCDF("ledger", tuple(sorted(ledger_latencies))),
        "committed": LatencyCDF("committed", tuple(sorted(commit_latencies))),
    }
    if mempool_arrivals:
        result["first_mempool"] = LatencyCDF("first_mempool", tuple(sorted(first_latencies)))
        result["quorum_mempools"] = LatencyCDF("quorum_mempools", tuple(sorted(quorum_latencies)))
        result["all_mempools"] = LatencyCDF("all_mempools", tuple(sorted(all_latencies)))
    return result


def latency_cdf(latencies: Sequence[float], stage: str = "committed") -> LatencyCDF:
    """Build a :class:`LatencyCDF` directly from raw latencies."""
    return LatencyCDF(stage, tuple(sorted(float(v) for v in latencies)))
