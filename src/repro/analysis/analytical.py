"""The paper's analytical throughput model (Appendix D).

With ``n`` servers, block capacity ``C`` (bytes), block rate ``R`` (blocks/s),
element length ``le``, epoch-proof length ``lp``, hash-batch length ``lh``,
collector size ``c`` and compression ratio ``r``:

* Vanilla:        ``Tv = R · (C − n·lp) / le``
* Compresschain:  ``Tc = R · (c − n) · C / ℓ`` with ``ℓ = ((c − n)·le + n·lp) / r``
* Hashchain:      ``Th = R · (c − n) · C / (n · lh)``

Appendix D.1 instantiates these with the evaluation parameters and obtains
Tv ≈ 955, Tc[c=100] ≈ 2497, Tc[c=500] ≈ 3330, Th[c=100] ≈ 27157 and
Th[c=500] ≈ 147857 el/s; the corresponding benchmark regenerates those values.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import (
    DEFAULT_BLOCK_RATE,
    DEFAULT_BLOCK_SIZE,
    DEFAULT_ELEMENT_SIZE_MEAN,
    EPOCH_PROOF_SIZE,
    HASH_BATCH_SIZE,
    PAPER_COMPRESSION_RATIO,
)
from ..errors import ConfigurationError


@dataclass(frozen=True)
class AnalyticalParameters:
    """Inputs to the Appendix D formulas."""

    n_servers: int = 10
    block_size_bytes: float = DEFAULT_BLOCK_SIZE
    block_rate: float = DEFAULT_BLOCK_RATE
    element_size: float = DEFAULT_ELEMENT_SIZE_MEAN
    proof_size: float = EPOCH_PROOF_SIZE
    hash_batch_size: float = HASH_BATCH_SIZE
    collector_size: int = 500
    compression_ratio: float = PAPER_COMPRESSION_RATIO[500]

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ConfigurationError("n_servers must be at least 1")
        if min(self.block_size_bytes, self.block_rate, self.element_size,
               self.proof_size, self.hash_batch_size, self.compression_ratio) <= 0:
            raise ConfigurationError("analytical parameters must be positive")
        if self.collector_size <= self.n_servers:
            raise ConfigurationError(
                "collector size must exceed the server count (c > n) for the "
                "Compresschain/Hashchain formulas to be meaningful")

    def with_(self, **kwargs: object) -> "AnalyticalParameters":
        """Copy with fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


def paper_analysis_parameters(collector_size: int = 500) -> AnalyticalParameters:
    """The exact parameter set of Appendix D.1 for a given collector size."""
    ratio = PAPER_COMPRESSION_RATIO.get(collector_size)
    if ratio is None:
        # Outside the two calibration points, reuse the nearest one.
        ratio = PAPER_COMPRESSION_RATIO[100] if collector_size < 300 else PAPER_COMPRESSION_RATIO[500]
    return AnalyticalParameters(collector_size=collector_size, compression_ratio=ratio)


def vanilla_throughput(params: AnalyticalParameters) -> float:
    """``Tv = R (C − n·lp) / le`` — elements per second."""
    usable = params.block_size_bytes - params.n_servers * params.proof_size
    if usable <= 0:
        return 0.0
    return params.block_rate * usable / params.element_size


def compresschain_throughput(params: AnalyticalParameters) -> float:
    """``Tc = R (c − n) C / ℓ`` with ``ℓ = ((c − n) le + n lp) / r``."""
    c_minus_n = params.collector_size - params.n_servers
    if c_minus_n <= 0:
        return 0.0
    epoch_bytes = (c_minus_n * params.element_size
                   + params.n_servers * params.proof_size) / params.compression_ratio
    return params.block_rate * c_minus_n * params.block_size_bytes / epoch_bytes


def hashchain_throughput(params: AnalyticalParameters) -> float:
    """``Th = R (c − n) C / (n lh)``."""
    c_minus_n = params.collector_size - params.n_servers
    if c_minus_n <= 0:
        return 0.0
    return (params.block_rate * c_minus_n * params.block_size_bytes
            / (params.n_servers * params.hash_batch_size))


def throughput_for(algorithm: str, params: AnalyticalParameters) -> float:
    """Dispatch on algorithm name (light variants share the base formula)."""
    base = algorithm.replace("-light", "")
    if base == "vanilla":
        return vanilla_throughput(params)
    if base == "compresschain":
        return compresschain_throughput(params)
    if base == "hashchain":
        return hashchain_throughput(params)
    raise ConfigurationError(f"unknown algorithm {algorithm!r}")


def blocksize_sweep(algorithm: str, block_sizes_bytes: list[float],
                    collector_size: int = 500, n_servers: int = 10) -> list[float]:
    """Analytical throughput across block sizes (Fig. 2 right)."""
    params = paper_analysis_parameters(collector_size).with_(n_servers=n_servers)
    return [throughput_for(algorithm, params.with_(block_size_bytes=size))
            for size in block_sizes_bytes]
