"""Analysis layer: metrics collection, the paper's analytical model, and the
throughput / efficiency / latency / commit-time computations behind every
figure and table of the evaluation.
"""

from .metrics import ElementRecord, MetricsCollector
from .analytical import (
    AnalyticalParameters,
    vanilla_throughput,
    compresschain_throughput,
    hashchain_throughput,
    paper_analysis_parameters,
)
from .throughput import rolling_throughput, average_throughput, ThroughputSeries
from .efficiency import efficiency_at, EfficiencyResult
from .latency import latency_cdf, stage_latencies, LatencyCDF
from .committime import commit_time_quantiles, CommitTimeSummary
from .report import render_table, render_series

__all__ = [
    "ElementRecord",
    "MetricsCollector",
    "AnalyticalParameters",
    "vanilla_throughput",
    "compresschain_throughput",
    "hashchain_throughput",
    "paper_analysis_parameters",
    "rolling_throughput",
    "average_throughput",
    "ThroughputSeries",
    "efficiency_at",
    "EfficiencyResult",
    "latency_cdf",
    "stage_latencies",
    "LatencyCDF",
    "commit_time_quantiles",
    "CommitTimeSummary",
    "render_table",
    "render_series",
]
