"""Plain-text rendering of tables and figure series.

The benchmark harness prints the same rows/series the paper reports; these
helpers keep the formatting in one place so EXPERIMENTS.md and the benchmark
output stay consistent.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .throughput import ThroughputSeries


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width text table."""
    columns = [list(map(_fmt, column)) for column in zip(*([headers] + [list(r) for r in rows]))] \
        if rows else [[_fmt(h)] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(w) for h, w in zip(map(_fmt, headers), widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(_fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Mapping[str, ThroughputSeries], sample_every: float = 10.0,
                  title: str | None = None) -> str:
    """Tabulate several throughput series side by side at common sample times."""
    all_times: set[float] = set()
    for s in series.values():
        all_times.update(t for t in s.times if abs(t / sample_every - round(t / sample_every)) < 1e-9)
    times = sorted(all_times)
    headers = ["time (s)"] + list(series)
    rows = [[f"{t:.0f}"] + [f"{series[name].at(t):.1f}" for name in series] for t in times]
    return render_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)
