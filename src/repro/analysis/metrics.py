"""Metrics collection: per-element lifecycle timestamps and system counters.

The paper instruments its deployment by collecting and post-processing logs;
here the :class:`MetricsCollector` is handed to every server and client hook
and records the first time each lifecycle stage is reached *anywhere* in the
deployment (global first-observation semantics, matching log analysis over all
containers):

``injected → added → in_ledger → epoch_assigned → committed``

plus the mempool stages of Fig. 4 which are reconstructed post-run from the
ledger nodes' mempool arrival tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..obs.trace import TRACK_LEDGER
from ..workload.elements import Element


@dataclass(slots=True)
class ElementRecord:
    """Lifecycle timestamps (simulated seconds) for one element.

    ``slots=True`` matters at million-element scale: one record exists per
    element, and the per-instance ``__dict__`` would otherwise dominate the
    collector's memory footprint.
    """

    element_id: int
    size_bytes: int = 0
    injected_at: float | None = None
    added_at: float | None = None
    in_ledger_at: float | None = None
    epoch_number: int | None = None
    epoch_assigned_at: float | None = None
    committed_at: float | None = None

    @property
    def committed(self) -> bool:
        return self.committed_at is not None

    def commit_latency(self) -> float | None:
        """Injection-to-commit latency, if both endpoints were observed."""
        if self.injected_at is None or self.committed_at is None:
            return None
        return self.committed_at - self.injected_at


@dataclass
class EpochEvent:
    """One epoch creation observed at a server."""

    server: str
    epoch_number: int
    n_elements: int
    time: float


@dataclass
class BatchFlushEvent:
    """One collector flush (batch appended to the ledger in some form)."""

    server: str
    n_items: int
    appended_bytes: int
    time: float


class MetricsCollector:
    """Accumulates raw observations during a run."""

    def __init__(self) -> None:
        self.elements: dict[int, ElementRecord] = {}
        #: ledger tx_id -> element ids carried by that transaction.
        self.tx_elements: dict[int, list[int]] = {}
        #: Hashchain batch hash -> element ids in the batch behind it.
        self.hash_elements: dict[str, list[int]] = {}
        self.epoch_events: list[EpochEvent] = []
        self.batch_flushes: list[BatchFlushEvent] = []
        #: (server, success) counts of hash-reversal attempts.
        self.hash_reversal_success = 0
        self.hash_reversal_failure = 0
        #: epoch_number -> first commit observation time.
        self.epoch_commit_times: dict[int, float] = {}
        #: Server name -> region name; empty for homogeneous deployments.
        self.region_of: dict[str, str] = {}
        #: region -> elements first added at a server in that region.
        self.region_added: dict[str, int] = {}
        #: region -> elements whose commit was first observed in that region.
        self.region_committed: dict[str, int] = {}
        #: region -> earliest commit observation time in that region.
        self.region_first_commit: dict[str, float] = {}
        #: Server name -> shard index; empty for unsharded deployments.  The
        #: per-shard tallies mirror the region machinery: an element's shard
        #: is wherever it was first added/committed, which — thanks to the
        #: finalize_block origin filter — is always its owning shard.
        self.shard_of: dict[str, int] = {}
        #: shard -> elements first added at a server of that shard.
        self.shard_added: dict[int, int] = {}
        #: shard -> elements whose commit was first observed in that shard.
        self.shard_committed: dict[int, int] = {}
        #: shard -> commit observation times (drives per-shard throughput).
        self.shard_commit_times: dict[int, list[float]] = {}
        #: Byzantine-attribution counters (withheld requests, bogus hashes,
        #: invalid elements appended/refused, ...), aggregated over the run.
        self.byzantine_counters: dict[str, int] = {}
        #: The same counters broken down by server name.
        self.byzantine_by_server: dict[str, dict[str, int]] = {}
        # Incremental tallies behind injected_count/committed_count: each
        # lifecycle stage is recorded at most once per element, so counting at
        # record time replaces an O(elements) scan per poll — and completion
        # polling happens every block at million-element scale.
        self._injected_total = 0
        self._committed_total = 0
        #: Batch hashes whose elements already have ``in_ledger_at`` stamped.
        #: Every server re-reports every ledger batch; after the first report
        #: the remaining ``servers - 1`` are guaranteed no-ops, so they can
        #: skip the per-element pass entirely.
        self._ledger_hash_done: set[str] = set()
        #: (committed_total, sorted times) behind :meth:`commit_times`.
        self._commit_times_cache: tuple[int, list[float]] | None = None
        #: (committed_total, sorted latencies) behind :meth:`commit_latencies`.
        self._commit_latencies_cache: tuple[int, list[float]] | None = None
        #: Lifecycle tracer, set by ``build_deployment`` when ``trace_sample``
        #: is configured; ``None`` keeps every hot path to one identity check.
        self.tracer = None

    # -- regions ---------------------------------------------------------------

    def set_region_map(self, region_of: Mapping[str, str]) -> None:
        """Enable per-region breakdowns (server name -> region name)."""
        self.region_of = dict(region_of)
        for region in self.region_of.values():
            self.region_added.setdefault(region, 0)
            self.region_committed.setdefault(region, 0)

    def region_summary(self) -> dict[str, dict[str, Any]] | None:
        """Per-region breakdown, or ``None`` when no region map is set."""
        if not self.region_of:
            return None
        servers: dict[str, int] = {}
        for region in self.region_of.values():
            servers[region] = servers.get(region, 0) + 1
        return {
            region: {
                "servers": servers[region],
                "added": self.region_added.get(region, 0),
                "committed": self.region_committed.get(region, 0),
                "first_commit": self.region_first_commit.get(region),
            }
            for region in sorted(servers)
        }

    # -- shards ----------------------------------------------------------------

    def set_shard_map(self, shard_of: Mapping[str, int]) -> None:
        """Enable per-shard breakdowns (server name -> shard index)."""
        self.shard_of = dict(shard_of)
        for shard in self.shard_of.values():
            self.shard_added.setdefault(shard, 0)
            self.shard_committed.setdefault(shard, 0)
            self.shard_commit_times.setdefault(shard, [])

    def assign_shard(self, server: str, shard: int) -> None:
        """Enroll one server (a runtime joiner) into a shard."""
        self.shard_of[server] = shard
        self.shard_added.setdefault(shard, 0)
        self.shard_committed.setdefault(shard, 0)
        self.shard_commit_times.setdefault(shard, [])

    # -- element lifecycle ------------------------------------------------------

    def _record(self, element_id: int) -> ElementRecord:
        record = self.elements.get(element_id)
        if record is None:
            record = ElementRecord(element_id=element_id)
            self.elements[element_id] = record
        return record

    def record_injected(self, element: Element, time: float) -> None:
        record = self._record(element.element_id)
        record.size_bytes = element.size_bytes
        if record.injected_at is None:
            record.injected_at = time
            self._injected_total += 1
        if self.tracer is not None:
            self.tracer.injected(element.element_id, time)

    def record_injected_many(self, elements: Iterable[Element],
                             time: float) -> None:
        """Batch :meth:`record_injected` for one injection tick."""
        if self.tracer is not None:
            elements = list(elements)
        records = self.elements
        make = ElementRecord
        fresh = 0
        for element in elements:
            element_id = element.element_id
            record = records.get(element_id)
            if record is None:
                records[element_id] = record = make(element_id=element_id)
            record.size_bytes = element.size_bytes
            if record.injected_at is None:
                record.injected_at = time
                fresh += 1
        self._injected_total += fresh
        if self.tracer is not None:
            self.tracer.injected_many(
                [element.element_id for element in elements], time)

    def record_added(self, element: Element, server: str, time: float) -> None:
        record = self._record(element.element_id)
        record.size_bytes = element.size_bytes
        if record.added_at is None:
            record.added_at = time
            region = self.region_of.get(server)
            if region is not None:
                self.region_added[region] = self.region_added.get(region, 0) + 1
            shard = self.shard_of.get(server)
            if shard is not None:
                self.shard_added[shard] = self.shard_added.get(shard, 0) + 1

    def record_added_many(self, elements: Iterable[Element], server: str,
                          time: float) -> None:
        """Batch :meth:`record_added`: one pass, one region-counter update."""
        records = self.elements
        make = ElementRecord
        region = self.region_of.get(server)
        shard = self.shard_of.get(server)
        fresh = 0
        for element in elements:
            element_id = element.element_id
            record = records.get(element_id)
            if record is None:
                records[element_id] = record = make(element_id=element_id)
            record.size_bytes = element.size_bytes
            if record.added_at is None:
                record.added_at = time
                fresh += 1
        if region is not None and fresh:
            self.region_added[region] = self.region_added.get(region, 0) + fresh
        if shard is not None and fresh:
            self.shard_added[shard] = self.shard_added.get(shard, 0) + fresh

    def record_tx_elements(self, tx_id: int, element_ids: Iterable[int]) -> None:
        self.tx_elements[tx_id] = list(element_ids)

    def record_batch_hash_elements(self, batch_hash: str,
                                   element_ids: Iterable[int]) -> None:
        self.hash_elements.setdefault(batch_hash, list(element_ids))

    def record_in_ledger(self, element_id: int, time: float) -> None:
        record = self._record(element_id)
        if record.in_ledger_at is None:
            record.in_ledger_at = time
        if self.tracer is not None:
            self.tracer.phase_one(element_id, "in_ledger", time, TRACK_LEDGER)

    def record_in_ledger_many(self, element_ids: Iterable[int],
                              time: float) -> None:
        """Batch :meth:`record_in_ledger` — every server re-observes every
        ledger batch, so this runs ``servers × elements`` times per run."""
        if self.tracer is not None:
            element_ids = list(element_ids)
        records = self.elements
        make = ElementRecord
        for element_id in element_ids:
            record = records.get(element_id)
            if record is None:
                records[element_id] = record = make(element_id=element_id)
            if record.in_ledger_at is None:
                record.in_ledger_at = time
        if self.tracer is not None:
            self.tracer.phase_many(element_ids, "in_ledger", time, TRACK_LEDGER)

    def record_in_ledger_by_hash(self, batch_hash: str, time: float) -> None:
        if batch_hash in self._ledger_hash_done:
            return
        ids = self.hash_elements.get(batch_hash)
        if ids:
            self._ledger_hash_done.add(batch_hash)
            self.record_in_ledger_many(ids, time)

    def record_epoch_assigned(self, element_id: int, epoch_number: int,
                              time: float) -> None:
        record = self._record(element_id)
        if record.epoch_assigned_at is None:
            record.epoch_assigned_at = time
            record.epoch_number = epoch_number

    def record_epoch_assigned_many(self, element_ids: Iterable[int],
                                   epoch_number: int, time: float) -> None:
        """Batch :meth:`record_epoch_assigned` for one epoch creation."""
        records = self.elements
        make = ElementRecord
        for element_id in element_ids:
            record = records.get(element_id)
            if record is None:
                records[element_id] = record = make(element_id=element_id)
            if record.epoch_assigned_at is None:
                record.epoch_assigned_at = time
                record.epoch_number = epoch_number

    def record_epoch_created(self, server: str, epoch_number: int, n_elements: int,
                             time: float) -> None:
        self.epoch_events.append(EpochEvent(server=server, epoch_number=epoch_number,
                                            n_elements=n_elements, time=time))

    def record_epoch_committed(self, epoch_number: int, elements: Iterable[Element],
                               time: float, observer: str = "?") -> None:
        if epoch_number not in self.epoch_commit_times:
            self.epoch_commit_times[epoch_number] = time
        if self.tracer is not None:
            elements = list(elements)
            self.tracer.phase_many([e.element_id for e in elements],
                                   "committed", time, observer)
        region = self.region_of.get(observer)
        shard = self.shard_of.get(observer)
        records = self.elements
        make = ElementRecord
        for element in elements:
            element_id = element.element_id
            record = records.get(element_id)
            if record is None:
                records[element_id] = record = make(element_id=element_id)
            if record.committed_at is None:
                record.committed_at = time
                self._committed_total += 1
                if region is not None:
                    self.region_committed[region] = (
                        self.region_committed.get(region, 0) + 1)
                    if region not in self.region_first_commit:
                        self.region_first_commit[region] = time
                if shard is not None:
                    self.shard_committed[shard] = (
                        self.shard_committed.get(shard, 0) + 1)
                    self.shard_commit_times.setdefault(shard, []).append(time)

    def record_batch_flush(self, server: str, n_items: int, appended_bytes: int,
                           time: float) -> None:
        self.batch_flushes.append(BatchFlushEvent(server=server, n_items=n_items,
                                                  appended_bytes=appended_bytes,
                                                  time=time))

    def record_byzantine(self, server: str, counter: str) -> None:
        """Attribute one Byzantine-related action (misbehaviour at a Byzantine
        server, or a refusal of Byzantine garbage at a correct one)."""
        self.byzantine_counters[counter] = (
            self.byzantine_counters.get(counter, 0) + 1)
        per_server = self.byzantine_by_server.setdefault(server, {})
        per_server[counter] = per_server.get(counter, 0) + 1

    def record_hash_reversal(self, server: str, batch_hash: str, success: bool,
                             time: float) -> None:
        if success:
            self.hash_reversal_success += 1
        else:
            self.hash_reversal_failure += 1

    # -- derived summaries ---------------------------------------------------------

    @property
    def injected_count(self) -> int:
        return self._injected_total

    @property
    def committed_count(self) -> int:
        return self._committed_total

    def commit_times(self) -> list[float]:
        """Sorted commit times of every committed element.

        The result is cached until another element commits (each element
        commits at most once, so ``_committed_total`` is a change counter) —
        post-run analyses poll this several times per run, and re-sorting a
        million floats per poll is measurable.  Callers must treat the
        returned list as read-only; every existing consumer does.
        """
        cached = self._commit_times_cache
        total = self._committed_total
        if cached is not None and cached[0] == total:
            return cached[1]
        times = sorted(r.committed_at for r in self.elements.values()
                       if r.committed_at is not None)
        self._commit_times_cache = (total, times)
        return times

    def commit_latencies(self) -> list[float]:
        """Sorted injection-to-commit latencies of committed elements.

        Cached exactly like :meth:`commit_times` — ``_committed_total`` only
        grows, and a latency exists once an element commits, so the counter is
        a change key here too.  The resilience and membership reports both
        call this several times per packaging pass; without the cache each
        call re-scans (and re-sorts) every element record.  Callers must
        treat the returned list as read-only; every existing consumer does.
        """
        cached = self._commit_latencies_cache
        total = self._committed_total
        if cached is not None and cached[0] == total:
            return cached[1]
        values = [r.commit_latency() for r in self.elements.values()]
        latencies = sorted(v for v in values if v is not None)
        self._commit_latencies_cache = (total, latencies)
        return latencies

    def records(self) -> list[ElementRecord]:
        """All element records, ordered by injection time (unknown last)."""
        return sorted(self.elements.values(),
                      key=lambda r: (r.injected_at is None, r.injected_at or 0.0))
