"""Throughput over time (Fig. 1 / Fig. 2 left / Table 2).

The paper plots the rolling average number of elements *committed* per second
over a 9-second window, and Table 2 reports the average throughput over the
first 50 seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

#: The paper's rolling window (seconds).
PAPER_ROLLING_WINDOW = 9.0


@dataclass(frozen=True)
class ThroughputSeries:
    """A (time, elements-per-second) series."""

    times: tuple[float, ...]
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ConfigurationError("times and values must have equal length")

    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def at(self, time: float) -> float:
        """Series value at the sample nearest to ``time`` (0 when empty)."""
        if not self.times:
            return 0.0
        index = int(np.argmin(np.abs(np.asarray(self.times) - time)))
        return self.values[index]


def rolling_throughput(commit_times: list[float], window: float = PAPER_ROLLING_WINDOW,
                       step: float = 1.0, horizon: float | None = None) -> ThroughputSeries:
    """Rolling-average committed el/s, sampled every ``step`` seconds.

    ``commit_times`` are the simulated times at which elements committed.  The
    value at sample time ``t`` is the number of commits in ``(t - window, t]``
    divided by the window length, matching the paper's 9-second rolling plots.
    """
    if window <= 0 or step <= 0:
        raise ConfigurationError("window and step must be positive")
    if not commit_times:
        return ThroughputSeries(times=(), values=())
    times = np.sort(np.asarray(commit_times, dtype=float))
    end = horizon if horizon is not None else float(times[-1]) + step
    samples = np.arange(step, end + step / 2, step)
    # Count commits in (t - window, t] via two searchsorted passes.
    upper = np.searchsorted(times, samples, side="right")
    lower = np.searchsorted(times, samples - window, side="right")
    counts = upper - lower
    values = counts / window
    return ThroughputSeries(times=tuple(float(t) for t in samples),
                            values=tuple(float(v) for v in values))


def recent_throughput(commit_times: list[float], now: float,
                      window: float = PAPER_ROLLING_WINDOW) -> float:
    """Committed el/s over ``(now - window, now]`` — the live-metrics gauge.

    A single sample of the paper's rolling window ending at the current
    simulated time, cheap enough for a ``/metrics`` endpoint to compute on
    every scrape.
    """
    if window <= 0:
        raise ConfigurationError("window must be positive")
    count = sum(1 for t in commit_times if now - window < t <= now)
    return count / window


def average_throughput(commit_times: list[float], up_to: float = 50.0) -> float:
    """Average committed el/s over ``[0, up_to]`` (Table 2's metric)."""
    if up_to <= 0:
        raise ConfigurationError("up_to must be positive")
    committed = sum(1 for t in commit_times if t <= up_to)
    return committed / up_to


def instantaneous_throughput(commit_times: list[float], bin_width: float = 1.0,
                             horizon: float | None = None) -> ThroughputSeries:
    """Per-bin committed el/s (no rolling window), for finer-grained inspection."""
    if bin_width <= 0:
        raise ConfigurationError("bin_width must be positive")
    if not commit_times:
        return ThroughputSeries(times=(), values=())
    times = np.asarray(sorted(commit_times), dtype=float)
    end = horizon if horizon is not None else float(times[-1]) + bin_width
    edges = np.arange(0.0, end + bin_width, bin_width)
    counts, _ = np.histogram(times, bins=edges)
    centers = (edges[:-1] + edges[1:]) / 2
    return ThroughputSeries(times=tuple(float(t) for t in centers),
                            values=tuple(float(c) / bin_width for c in counts))
