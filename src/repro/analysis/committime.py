"""Commit-time quantiles (Appendix F, Fig. 5).

For each run the paper reports when the first element commits and when 10 %,
20 %, 30 %, 40 % and 50 % of the *added* elements have committed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .metrics import MetricsCollector

#: The fractions plotted in Fig. 5 (plus the "first element" point).
PAPER_COMMIT_FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class CommitTimeSummary:
    """Commit times of the first element and of the Fig. 5 fractions."""

    label: str
    first_element: float | None
    #: fraction -> simulated time at which that share of added elements committed
    #: (``None`` when the run never reached the fraction).
    fraction_times: dict[float, float | None]

    def time_for(self, fraction: float) -> float | None:
        return self.fraction_times.get(fraction)

    @property
    def reached_half(self) -> bool:
        return self.fraction_times.get(0.5) is not None


def commit_time_quantiles(metrics: MetricsCollector, total_added: int | None = None,
                          fractions: tuple[float, ...] = PAPER_COMMIT_FRACTIONS,
                          label: str = "") -> CommitTimeSummary:
    """Compute Fig. 5's commit-time points from a run's metrics."""
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fractions must lie in (0, 1]")
    added = total_added if total_added is not None else metrics.injected_count
    commit_times = metrics.commit_times()
    first = commit_times[0] if commit_times else None
    fraction_times: dict[float, float | None] = {}
    for fraction in fractions:
        needed = int(round(fraction * added))
        if needed == 0:
            fraction_times[fraction] = first
            continue
        if needed <= len(commit_times):
            fraction_times[fraction] = commit_times[needed - 1]
        else:
            fraction_times[fraction] = None
    return CommitTimeSummary(label=label, first_element=first,
                             fraction_times=fraction_times)
