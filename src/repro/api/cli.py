"""The ``python -m repro`` command line.

Subcommands:

* ``list-scenarios`` — enumerate the registry grouped by family (filter by
  ``--tag`` / ``--contains`` / ``--family``, machine-readable with
  ``--json``);
* ``run`` — run one registered scenario, print its summary, and optionally
  persist the :class:`RunResult` as a JSON artifact;
* ``sweep`` — run every scenario matching a filter and write one JSON
  artifact per run into an output directory;
* ``report`` — re-render saved :class:`RunResult` JSON artifacts as the
  standard summary table (plus a per-region breakdown for multi-region runs
  and a resilience breakdown for fault-injected runs), without re-running
  anything; ``--phases`` adds the per-phase latency percentiles of traced
  artifacts;
* ``trace`` — run one scenario with lifecycle tracing enabled and write the
  trace as a Chrome ``trace_event`` file (Perfetto-loadable) or JSONL.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from ..analysis.report import render_table
from ..errors import ReproError
from .parallel import RunSpec, iter_spec_results, jobs_arg
from .registry import iter_scenarios, scenario_tags
from .results import SUMMARY_HEADERS, RunResult


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run and inspect Setchain reproduction scenarios.")
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser("list-scenarios",
                            help="enumerate registered scenarios")
    list_p.add_argument("--tag", help="only scenarios carrying this tag")
    list_p.add_argument("--contains", help="only names containing this substring")
    list_p.add_argument("--family", help="only scenarios in this family "
                                         "(the name's first path segment)")
    list_p.add_argument("--json", action="store_true",
                        help="emit one JSON object per line")

    run_p = sub.add_parser("run", help="run one registered scenario")
    run_p.add_argument("name", help="registered scenario name (see list-scenarios)")
    _add_run_options(run_p)
    run_p.add_argument("--json", metavar="PATH",
                       help="write the RunResult JSON artifact here")

    sweep_p = sub.add_parser("sweep",
                             help="run every scenario matching a filter")
    sweep_p.add_argument("--tag", help="scenarios carrying this tag")
    sweep_p.add_argument("--contains", help="names containing this substring")
    sweep_p.add_argument("--family", help="only scenarios in this family "
                                          "(the name's first path segment)")
    _add_run_options(sweep_p)
    sweep_p.add_argument("--out", metavar="DIR", default="results",
                         help="directory for RunResult JSON artifacts "
                              "(default: results/)")
    sweep_p.add_argument("--limit", type=_non_negative_int, default=None,
                         help="run at most this many scenarios")
    sweep_p.add_argument("--jobs", type=jobs_arg, default=1, metavar="N|auto",
                         help="worker processes for the sweep "
                              "(default 1; 'auto' = all cores)")
    sweep_p.add_argument("--trace-sample", type=float, default=None,
                         metavar="F",
                         help="enable lifecycle tracing at this sample rate "
                              "(0 < F <= 1; off by default)")
    sweep_p.add_argument("--trace-dir", metavar="DIR", default=None,
                         help="write one trace file per scenario here "
                              "(requires --trace-sample)")
    sweep_p.add_argument("--trace-format", choices=("chrome", "jsonl"),
                         default="chrome",
                         help="trace file format (default chrome)")

    report_p = sub.add_parser("report",
                              help="summarise saved RunResult JSON files")
    report_p.add_argument("files", nargs="+", metavar="JSON",
                          help="RunResult artifacts produced by run/sweep")
    report_p.add_argument("--phases", action="store_true",
                          help="add per-phase latency percentiles "
                               "(traced artifacts only)")

    trace_p = sub.add_parser("trace",
                             help="run one scenario with lifecycle tracing "
                                  "and write a trace file")
    trace_p.add_argument("name",
                         help="registered scenario name (see list-scenarios)")
    _add_run_options(trace_p)
    trace_p.add_argument("--out", metavar="PATH", required=True,
                         help="trace file to write")
    trace_p.add_argument("--format", choices=("chrome", "jsonl"),
                         default="chrome",
                         help="trace file format (default chrome; load "
                              "chrome traces in Perfetto / about:tracing)")
    trace_p.add_argument("--sample", type=float, default=1.0,
                         help="element sampling rate in (0, 1] (default 1.0)")
    trace_p.add_argument("--json", metavar="PATH",
                         help="also write the RunResult JSON artifact here")

    # Service mode (repro.service): the arguments are declared by the service
    # package; the handlers are imported lazily at dispatch time.
    from ..service.cli import add_serve_arguments, add_service_arguments
    serve_p = sub.add_parser("serve",
                             help="run a scenario as a long-lived service "
                                  "(streamed ingest, live /metrics)")
    add_serve_arguments(serve_p)
    service_p = sub.add_parser("service",
                               help="operate on persisted service ledgers")
    add_service_arguments(service_p)

    return parser


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="down-scale factor (divides rate/block size, "
                             "preserves ratios; default 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the simulator/workload seed")
    parser.add_argument("--to-completion", action="store_true",
                        help="run past the horizon until all elements commit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-run summary")


def _run_one(name: str, args: argparse.Namespace) -> RunResult:
    from . import run
    return run(name, scale=args.scale, seed=args.seed,
               to_completion=args.to_completion)


def _print_summary(result: RunResult) -> None:
    print(f"scenario : {result.label}")
    print(f"  injected / committed : {result.injected} / {result.committed}"
          f" ({result.committed_fraction:.1%})")
    print(f"  avg throughput (50s) : {result.avg_throughput_50s:.1f} el/s")
    print(f"  analytical bound     : {result.analytical_throughput:.0f} el/s")
    print(f"  efficiency 50/75/100 : {result.efficiency['50s']:.3f} / "
          f"{result.efficiency['75s']:.3f} / {result.efficiency['100s']:.3f}")
    if result.first_commit is not None:
        print(f"  first commit         : {result.first_commit:.2f} s")


def _family_of(name: str) -> str:
    """A scenario's family: the first ``/``-separated segment of its name."""
    return name.split("/", 1)[0]


def _cmd_list(args: argparse.Namespace) -> int:
    entries = iter_scenarios(tag=args.tag, contains=args.contains)
    if args.family:
        entries = [e for e in entries if _family_of(e.name) == args.family]
    if args.json:
        for entry in entries:
            print(json.dumps({"name": entry.name,
                              "family": _family_of(entry.name),
                              "description": entry.description,
                              "tags": sorted(entry.tags)}))
        return 0
    if not entries:
        print("no scenarios match", file=sys.stderr)
        return 1
    families: dict[str, list] = {}
    for entry in entries:
        families.setdefault(_family_of(entry.name), []).append(entry)
    blocks = []
    for family in sorted(families):
        members = families[family]
        rows = [[entry.name, ",".join(sorted(entry.tags)), entry.description]
                for entry in members]
        blocks.append(render_table(["name", "tags", "description"], rows,
                                   title=f"[{family}] ({len(members)})"))
    print("\n\n".join(blocks))
    print(f"\n{len(entries)} scenarios in {len(families)} families; "
          f"tags: {', '.join(scenario_tags())}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = _run_one(args.name, args)
    if not args.quiet:
        _print_summary(result)
    if args.json:
        path = result.save(args.json)
        if not args.quiet:
            print(f"  wrote {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    entries = iter_scenarios(tag=args.tag, contains=args.contains)
    if args.family:
        entries = [e for e in entries if _family_of(e.name) == args.family]
        if not entries:
            from .registry import iter_scenarios as _all
            families = sorted({_family_of(e.name) for e in _all()})
            print(f"no scenarios in family {args.family!r}; families: "
                  f"{', '.join(families)}", file=sys.stderr)
            return 1
    if not entries:
        print("no scenarios match the sweep filter", file=sys.stderr)
        return 1
    if args.limit is not None:
        entries = entries[:args.limit]
    if not entries:
        print("nothing to run (--limit 0)", file=sys.stderr)
        return 0
    if args.trace_dir is not None and args.trace_sample is None:
        print("--trace-dir requires --trace-sample", file=sys.stderr)
        return 1
    out_dir = Path(args.out)
    suffix = ".trace.json" if args.trace_format == "chrome" else ".trace.jsonl"
    specs = [RunSpec(name=entry.name, scale=args.scale, seed=args.seed,
                     to_completion=args.to_completion,
                     trace_sample=args.trace_sample,
                     trace_out=(None if args.trace_dir is None else str(
                         Path(args.trace_dir)
                         / (entry.name.replace("/", "__") + suffix))),
                     trace_format=args.trace_format) for entry in entries]
    if not args.quiet and args.jobs > 1:
        print(f"running {len(specs)} scenarios on {args.jobs} workers")
    # Results stream back in input order and are persisted one by one, so an
    # interrupted sweep keeps every artifact completed so far.
    results = iter_spec_results(specs, jobs=args.jobs)
    for index, (entry, result) in enumerate(zip(entries, results), start=1):
        path = result.save(out_dir / (entry.name.replace("/", "__") + ".json"))
        if not args.quiet:
            print(f"[{index}/{len(entries)}] {entry.name}")
            _print_summary(result)
            print(f"  wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    results = [RunResult.load(path) for path in args.files]
    rows = [[r.label] + r.summary_row()[1:] for r in results]
    headers = ("scenario",) + SUMMARY_HEADERS[1:]
    print(render_table(list(headers), rows))
    regional = [r for r in results if r.regions]
    if regional:
        region_rows = [
            [result.label, region, stats.get("servers", 0),
             stats.get("added", 0), stats.get("committed", 0),
             "-" if stats.get("first_commit") is None
             else f"{stats['first_commit']:.2f}"]
            for result in regional
            for region, stats in sorted(result.regions.items())]
        print()
        print(render_table(
            ["scenario", "region", "servers", "added", "committed",
             "first commit (s)"],
            region_rows, title="per-region breakdown"))
    faulted = [r for r in results if r.faults]
    if faulted:
        fault_rows = []
        for result in faulted:
            report = result.faults
            assert report is not None
            windows = report.get("availability", {}).get("windows", [])
            fractions = [w["availability"] for w in windows
                         if w.get("availability") is not None]
            recoveries = [entry["recovery_s"]
                          for entry in report.get("recovery", [])
                          if entry.get("recovery_s") is not None]
            fault_rows.append([
                result.label,
                len(report.get("events", [])),
                report.get("messages_dropped", 0),
                report.get("messages_duplicated", 0),
                report.get("rejected_while_crashed", 0),
                "-" if not fractions else f"{min(fractions):.3f}",
                "-" if not recoveries else f"{max(recoveries):.2f}",
            ])
        print()
        print(render_table(
            ["scenario", "faults", "dropped", "duplicated", "lost adds",
             "min avail", "recovery (s)"],
            fault_rows, title="resilience (fault-injected runs)"))
    adversarial = [r for r in results if r.faults and r.faults.get("byzantine")]
    if adversarial:
        byz_rows = []
        for result in adversarial:
            assert result.faults is not None
            block = result.faults["byzantine"]
            counters = block.get("counters", {})
            byz_rows.append([
                result.label,
                len(block.get("servers", [])),
                counters.get("withheld_requests", 0),
                counters.get("bogus_hash_batches", 0),
                counters.get("invalid_elements_appended", 0),
                counters.get("invalid_elements_refused", 0),
                counters.get("equivocating_proofs", 0),
                counters.get("suppressed_elements", 0),
            ])
        print()
        print(render_table(
            ["scenario", "byz servers", "withheld", "bogus hashes",
             "invalid appended", "invalid refused", "equivocations",
             "suppressed"],
            byz_rows, title="byzantine attribution (adversarial runs)"))
    sharded = [r for r in results if r.shards]
    if sharded:
        shard_rows = []
        for result in sharded:
            block = result.shards
            assert block is not None
            router = block.get("router", {})
            per_shard = block.get("per_shard", {})
            for shard, stats in sorted(per_shard.items(),
                                       key=lambda kv: int(kv[0])):
                shard_rows.append([
                    result.label, shard, len(stats.get("servers", [])),
                    stats.get("routed", 0), stats.get("added", 0),
                    stats.get("committed", 0),
                    f"{stats.get('avg_throughput_50s', 0.0):.1f}",
                ])
            skew = block.get("skew_ratio")
            shard_rows.append([
                result.label, "all", sum(len(s.get("servers", []))
                                         for s in per_shard.values()),
                router.get("routed", 0),
                f"defer={router.get('deferred', 0)}",
                f"reject={router.get('rejected', 0)}",
                "-" if skew is None else f"skew={skew:.2f}",
            ])
        print()
        print(render_table(
            ["scenario", "shard", "servers", "routed", "added", "committed",
             "el/s (50s)"],
            shard_rows, title="per-shard breakdown (sharded runs)"))
    elastic = [r for r in results if r.membership]
    if elastic:
        member_rows = []
        for result in elastic:
            block = result.membership
            assert block is not None
            current = block.get("current", {})
            catch_ups = [entry["catch_up_s"]
                         for entry in block.get("joins", [])
                         if entry.get("catch_up_s") is not None]
            first_commits = [entry["join_to_first_commit_s"]
                             for entry in block.get("joins", [])
                             if entry.get("join_to_first_commit_s") is not None]
            member_rows.append([
                result.label,
                len(block.get("epochs", [])),
                len(block.get("joins", [])),
                len(block.get("leaves", [])),
                f"{current.get('size', 0)} (q={current.get('quorum', 0)})",
                "-" if not catch_ups else f"{max(catch_ups):.2f}",
                "-" if not first_commits else f"{max(first_commits):.2f}",
            ])
        print()
        print(render_table(
            ["scenario", "epochs", "joins", "leaves", "final n",
             "catch-up (s)", "join→commit (s)"],
            member_rows, title="membership (elastic runs)"))
    if args.phases:
        from ..obs.trace import PHASES
        traced = [r for r in results if r.telemetry]
        if not traced:
            print()
            print("no traced artifacts (run with `repro trace` or "
                  "--trace-sample for --phases data)")
            return 0
        phase_rows = []
        for result in traced:
            assert result.telemetry is not None
            phases = result.telemetry.get("phases", {})
            for phase in PHASES[1:]:
                stats = phases.get(phase)
                if stats is None:
                    continue
                phase_rows.append([
                    result.label, phase, stats.get("count", 0),
                    f"{stats['p50']:.4f}", f"{stats['p95']:.4f}",
                    f"{stats['p99']:.4f}", f"{stats['max']:.4f}"])
        print()
        print(render_table(
            ["scenario", "phase", "count", "p50 (s)", "p95 (s)", "p99 (s)",
             "max (s)"],
            phase_rows, title="phase latency since injection (traced runs)"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    # Routed through execute_spec — the exact code path sweep workers run —
    # so `repro trace` and `repro sweep --trace-dir` write byte-identical
    # files for the same (scenario, scale, seed, sample).
    from .parallel import RunSpec, execute_spec
    spec = RunSpec(name=args.name, scale=args.scale, seed=args.seed,
                   to_completion=args.to_completion, trace_sample=args.sample,
                   trace_out=args.out, trace_format=args.format)
    result = execute_spec(spec)
    if not args.quiet:
        _print_summary(result)
        telemetry = result.telemetry or {}
        print(f"  trace                : {args.out} ({args.format}, "
              f"{telemetry.get('trace_events', 0)} events, "
              f"{telemetry.get('sampled_elements', 0)} sampled elements)")
    if args.json:
        path = result.save(args.json)
        if not args.quiet:
            print(f"  wrote {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_serve
    return cmd_serve(args)


def _cmd_service(args: argparse.Namespace) -> int:
    from ..service.cli import cmd_service
    return cmd_service(args)


_COMMANDS = {
    "list-scenarios": _cmd_list,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "service": _cmd_service,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
