"""Typed, fluent scenario construction.

:class:`ScenarioBuilder` (exported as :data:`Scenario`) replaces the old
``base_scenario(**kwargs)`` funnel with a discoverable, validated builder::

    from repro.api import Scenario

    config = (Scenario.hashchain()
              .rate(10_000).servers(10).collector(100)
              .delay_ms(30).byzantine(f=2)
              .build())

Builders are immutable: every setter returns a *new* builder, so a partially
configured scenario can be forked into variants without aliasing surprises
(the same frozen-spec discipline as the ``ExperimentConfig`` dataclasses it
produces).  Unknown per-layer override names fail fast with a did-you-mean
hint instead of silently constructing the wrong experiment.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Mapping

from ..config import (
    ExperimentConfig,
    FaultScheduleConfig,
    LedgerConfig,
    RegionSpec,
    SetchainConfig,
    TopologyConfig,
    WorkloadConfig,
)
from ..errors import ConfigurationError, did_you_mean
from ..faults.events import (
    BecomeByzantine,
    BecomeCorrect,
    Churn,
    Crash,
    DelaySpike,
    Duplicate,
    FaultEvent,
    Join,
    Leave,
    MessageLoss,
    Partition,
    Targets,
)
from ..topology import plugins as _plugins

_LAYER_FIELDS: dict[str, tuple[str, ...]] = {
    "setchain": tuple(f.name for f in fields(SetchainConfig)),
    "ledger": tuple(f.name for f in fields(LedgerConfig)),
    "workload": tuple(f.name for f in fields(WorkloadConfig)),
}

_TOP_FIELDS = ("ledger_backend", "drain_duration", "label", "trace_sample",
               "shards")


_did_you_mean = did_you_mean


def default_label(algorithm: str, sending_rate: float, collector_limit: int,
                  n_servers: int) -> str:
    """The auto-derived label used when a scenario is not labelled explicitly."""
    return f"{algorithm} rate={sending_rate:g} c={collector_limit} n={n_servers}"


def _check_layer_overrides(layer: str, overrides: Mapping[str, Any]) -> None:
    valid = _LAYER_FIELDS[layer]
    for name in overrides:
        if name not in valid:
            raise ConfigurationError(
                f"unknown {layer} override {name!r}"
                + _did_you_mean(name, list(valid)))


class ScenarioBuilder:
    """Fluent, validated construction of :class:`~repro.config.ExperimentConfig`.

    Use the per-algorithm classmethods (:meth:`hashchain`, :meth:`vanilla`, …)
    or pass the algorithm name directly.  Every setter returns a new builder.
    """

    __slots__ = ("_algorithm", "_setchain", "_ledger", "_workload", "_top",
                 "_topology", "_faults", "_fault_window")

    def __init__(self, algorithm: str = "hashchain") -> None:
        if not _plugins.has_algorithm(algorithm):
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}"
                + _did_you_mean(algorithm, _plugins.algorithm_names()))
        self._algorithm = algorithm
        self._setchain: dict[str, Any] = {}
        self._ledger: dict[str, Any] = {}
        self._workload: dict[str, Any] = {}
        self._top: dict[str, Any] = {}
        #: Topology declaration: regions + link-quality knobs (see .region()).
        self._topology: dict[str, Any] = {}
        #: Chaos timeline: FaultEvent instances in schedule order (see .faults()).
        self._faults: list[FaultEvent] = []
        self._fault_window: float | None = None

    # -- construction entry points --------------------------------------------

    @classmethod
    def vanilla(cls) -> "ScenarioBuilder":
        """The paper's Vanilla Setchain (one ledger append per element)."""
        return cls("vanilla")

    @classmethod
    def compresschain(cls) -> "ScenarioBuilder":
        """Compresschain: collector batches compressed before appending."""
        return cls("compresschain")

    @classmethod
    def hashchain(cls) -> "ScenarioBuilder":
        """Hashchain: only batch hashes go to the ledger (with hash-reversal)."""
        return cls("hashchain")

    @classmethod
    def compresschain_light(cls) -> "ScenarioBuilder":
        """Compresschain without decompression/validation costs."""
        return cls("compresschain-light")

    @classmethod
    def hashchain_light(cls) -> "ScenarioBuilder":
        """Hashchain without hash-reversal/validation costs."""
        return cls("hashchain-light")

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "ScenarioBuilder":
        """A builder whose :meth:`build` reproduces ``config`` exactly."""
        builder = cls(config.algorithm)
        defaults = (SetchainConfig(), LedgerConfig(), WorkloadConfig())
        layers = (config.setchain, config.ledger, config.workload)
        targets = (builder._setchain, builder._ledger, builder._workload)
        for default, layer, target in zip(defaults, layers, targets):
            for f in fields(layer):
                value = getattr(layer, f.name)
                if value != getattr(default, f.name):
                    target[f.name] = value
        builder._top = {"ledger_backend": config.ledger_backend,
                        "drain_duration": config.drain_duration,
                        "label": config.label}
        if config.trace_sample is not None:
            builder._top["trace_sample"] = config.trace_sample
        if config.shards is not None:
            builder._top["shards"] = config.shards
        if config.topology is not None:
            topology = config.topology
            builder._topology = {
                "regions": [(r.name, r.servers, r.algorithm)
                            for r in topology.regions],
                "intra_profile": topology.intra_profile,
                "inter_delay": topology.inter_delay,
                "inter_jitter": topology.inter_jitter,
                "links": [tuple(link) for link in topology.links],
            }
        if config.faults is not None:
            builder._faults = list(config.faults.events)
            builder._fault_window = config.faults.availability_window
        return builder

    # -- internals -------------------------------------------------------------

    def _fork(self, layer: str | None = None, **overrides: Any) -> "ScenarioBuilder":
        """Copy of this builder with ``overrides`` merged into one layer."""
        clone = type(self)(self._algorithm)
        clone._setchain = dict(self._setchain)
        clone._ledger = dict(self._ledger)
        clone._workload = dict(self._workload)
        clone._top = dict(self._top)
        clone._topology = {key: list(value) if isinstance(value, list) else value
                           for key, value in self._topology.items()}
        clone._faults = list(self._faults)
        clone._fault_window = self._fault_window
        if layer is not None:
            getattr(clone, f"_{layer}").update(overrides)
        return clone

    def __getattr__(self, name: str) -> Any:
        methods = [m for m in dir(type(self)) if not m.startswith("_")]
        raise AttributeError(
            f"ScenarioBuilder has no method {name!r}"
            + _did_you_mean(name, methods))

    def __repr__(self) -> str:
        parts = [f"algorithm={self._algorithm!r}"]
        for layer in ("setchain", "ledger", "workload", "top", "topology",
                      "faults"):
            overrides = getattr(self, f"_{layer}")
            if overrides:
                parts.append(f"{layer}={overrides!r}")
        return f"Scenario({', '.join(parts)})"

    # -- Table 1 knobs ---------------------------------------------------------

    def rate(self, elements_per_second: float) -> "ScenarioBuilder":
        """Total client sending rate in elements per second (Table 1)."""
        return self._fork("workload", sending_rate=float(elements_per_second))

    def servers(self, n: int) -> "ScenarioBuilder":
        """Number of Setchain servers (Table 1's ``server_count``)."""
        return self._fork("setchain", n_servers=int(n))

    def collector(self, limit: int, timeout: float | None = None) -> "ScenarioBuilder":
        """Collector size in elements (Table 1), optionally with flush timeout."""
        overrides: dict[str, Any] = {"collector_limit": int(limit)}
        if timeout is not None:
            overrides["collector_timeout"] = float(timeout)
        return self._fork("setchain", **overrides)

    def delay_ms(self, milliseconds: float) -> "ScenarioBuilder":
        """Artificial network delay in milliseconds (Table 1's ``network_delay``)."""
        if milliseconds < 0:
            raise ConfigurationError("network delay cannot be negative")
        return self._fork("ledger", network_delay=float(milliseconds) / 1000.0)

    # -- fault tolerance -------------------------------------------------------

    def byzantine(self, f: int) -> "ScenarioBuilder":
        """Tolerate up to ``f`` Byzantine servers (requires ``f < n/2``)."""
        return self._fork("setchain", f=int(f))

    # -- topology: regions, link quality, heterogeneous clusters ----------------

    def region(self, name: str, servers: int,
               algorithm: str | None = None) -> "ScenarioBuilder":
        """Declare a named region holding ``servers`` servers.

        ``algorithm`` overrides the scenario algorithm for this region's
        servers (heterogeneous cluster); any registered algorithm name is
        accepted.  Declaring regions fixes the total server count to the sum
        of the region sizes.
        """
        if algorithm is not None and not _plugins.has_algorithm(algorithm):
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}"
                + _did_you_mean(algorithm, _plugins.algorithm_names()))
        clone = self._fork()
        regions = clone._topology.setdefault("regions", [])
        regions.append((str(name), int(servers), algorithm))
        return clone

    def wan(self, inter_ms: float = 50.0, jitter_ms: float = 10.0,
            intra: str | None = None) -> "ScenarioBuilder":
        """Wide-area link quality between regions.

        ``inter_ms`` is the base one-way cross-region delay, ``jitter_ms``
        the uniform extra-delay width on cross-region messages; ``intra``
        optionally selects a registered latency profile for intra-region
        links ("lan" by default).  Requires :meth:`region` declarations (or
        :meth:`mixed`) by build time.
        """
        if intra is not None and not _plugins.has_latency_profile(intra):
            raise ConfigurationError(
                f"unknown latency profile {intra!r}"
                + _did_you_mean(intra, _plugins.latency_profile_names()))
        clone = self._fork()
        clone._topology["inter_delay"] = float(inter_ms) / 1000.0
        clone._topology["inter_jitter"] = float(jitter_ms) / 1000.0
        if intra is not None:
            clone._topology["intra_profile"] = intra
        return clone

    def link(self, region_a: str, region_b: str, ms: float) -> "ScenarioBuilder":
        """Override the one-way delay of one region pair (geo delay matrix)."""
        clone = self._fork()
        links = clone._topology.setdefault("links", [])
        links.append((str(region_a), str(region_b), float(ms) / 1000.0))
        return clone

    def mixed(self, **servers_by_algorithm: int) -> "ScenarioBuilder":
        """Heterogeneous co-located cluster: one region per algorithm.

        ``Scenario.hashchain().mixed(vanilla=2, hashchain=2)`` builds a
        4-server cluster where two servers run Vanilla and two run Hashchain
        over the same ledger.  Keyword names are registered algorithm names
        with ``-`` spelled ``_``; combine with :meth:`wan` to spread the
        groups across a wide-area network.
        """
        if not servers_by_algorithm:
            raise ConfigurationError(
                "mixed() needs at least one algorithm=count argument")
        clone = self._fork()
        regions = clone._topology.setdefault("regions", [])
        for keyword, count in servers_by_algorithm.items():
            # Prefer the literal keyword (third-party names may genuinely
            # contain underscores); fall back to the '-' spelling for the
            # builtins ("hashchain_light" -> "hashchain-light").
            algorithm = keyword
            if not _plugins.has_algorithm(algorithm):
                algorithm = keyword.replace("_", "-")
            if not _plugins.has_algorithm(algorithm):
                raise ConfigurationError(
                    f"unknown algorithm {algorithm!r}"
                    + _did_you_mean(algorithm, _plugins.algorithm_names()))
            regions.append((algorithm, int(count), algorithm))
        return clone

    # -- fault injection: declarative chaos timelines (repro.faults) -------------

    def faults(self, *events: "FaultEvent | FaultScheduleConfig",
               window: float | None = None) -> "ScenarioBuilder":
        """Append fault events to the scenario's chaos timeline.

        Accepts :class:`~repro.faults.events.FaultEvent` instances (any
        registered kind, including third-party ones) or a whole
        :class:`FaultScheduleConfig` (which *replaces* the timeline built so
        far).  ``window`` sets the availability-window width used by the
        resilience report.  The convenience methods (:meth:`partition`,
        :meth:`crash`, :meth:`churn`, :meth:`loss`, ...) cover the common
        shapes.
        """
        clone = self._fork()
        for event in events:
            if isinstance(event, FaultScheduleConfig):
                clone._faults = list(event.events)
                clone._fault_window = event.availability_window
            elif isinstance(event, FaultEvent):
                clone._faults.append(event)
            else:
                raise ConfigurationError(
                    f"faults() takes FaultEvent or FaultScheduleConfig "
                    f"instances, got {type(event).__name__}")
        if window is not None:
            if window <= 0:
                raise ConfigurationError("availability window must be positive")
            clone._fault_window = float(window)
        return clone

    def _fault_targets(self, nodes: tuple[str, ...], region: str | None,
                       role: str, count: int | None) -> Targets:
        return Targets(nodes=tuple(str(node) for node in nodes),
                       region=region, role=role, count=count)

    def partition(self, at: float, *, until: float | None = None,
                  nodes: tuple[str, ...] = (), region: str | None = None,
                  role: str = "all", count: int | None = None,
                  period: float | None = None) -> "ScenarioBuilder":
        """Partition a node group from the rest of the network at ``at``.

        The group is explicit ``nodes``, everything in ``region``, or a random
        ``count``-subset of ``role``; ``until`` heals the cut, ``period``
        re-rolls it (a flapping partition).  Regions cut consensus traffic
        too: the default role ``"all"`` includes co-located ledger nodes.
        """
        group = self._fault_targets(nodes, region, role, count)
        return self.faults(Partition(at=at, until=until, group=group,
                                     period=period))

    def crash(self, at: float, *nodes: str, until: float | None = None,
              region: str | None = None, role: str = "servers",
              count: int | None = None) -> "ScenarioBuilder":
        """Crash-fault nodes at ``at`` (auto-recover at ``until`` if given).

        ``crash(10.0, "server-3", until=30.0)`` restarts one named server;
        ``crash(10.0, count=2)`` picks two random servers;
        ``role="validators"`` targets the consensus layer instead.
        """
        if not nodes and count is None and region is None:
            count = 1
        targets = self._fault_targets(nodes, region, role, count)
        return self.faults(Crash(at=at, until=until, targets=targets))

    def become_byzantine(self, at: float, *nodes: str,
                         behaviour: str = "silent",
                         until: float | None = None,
                         region: str | None = None,
                         count: int | None = None) -> "ScenarioBuilder":
        """Turn servers Byzantine at ``at`` (revert at ``until`` if given).

        ``become_byzantine(10.0, "server-3", behaviour="withhold", until=30.0)``
        makes one named server withhold ``Request_batch`` replies for 20 s;
        ``become_byzantine(10.0, count=2)`` silences two random servers.  The
        built-in behaviours are withhold / wrong-hash / invalid-element /
        equivocate / silent (plus anything registered through
        :func:`repro.core.byzantine.register_behaviour`).  Build-time
        validation rejects schedules whose Byzantine + crashed servers could
        reach the quorum of any algorithm group.
        """
        if not nodes and count is None and region is None:
            count = 1
        targets = self._fault_targets(nodes, region, "servers", count)
        return self.faults(BecomeByzantine(at=at, until=until, targets=targets,
                                           behaviour=behaviour))

    def become_correct(self, at: float, *nodes: str,
                       region: str | None = None) -> "ScenarioBuilder":
        """Shed the targeted servers' Byzantine behaviours at ``at``.

        Without ``nodes``/``region`` every Byzantine server reverts — the
        Byzantine analogue of :meth:`faults`' global ``Heal``.
        """
        targets = self._fault_targets(nodes, region, "servers", None)
        return self.faults(BecomeCorrect(at=at, targets=targets))

    def churn(self, at: float, until: float, period: float, count: int = 1,
              *, role: str = "servers",
              region: str | None = None) -> "ScenarioBuilder":
        """Rolling restarts: every ``period`` seconds recover the previous
        victims and crash a fresh random ``count`` from the pool."""
        pool = self._fault_targets((), region, role, None)
        return self.faults(Churn(at=at, until=until, period=period,
                                 count=count, targets=pool))

    def join(self, at: float, node: str | None = None, *,
             role: str = "servers", region: str | None = None,
             algorithm: str | None = None) -> "ScenarioBuilder":
        """Admit a new node at ``at`` (dynamic membership).

        ``join(10.0)`` adds one server along the deterministic
        ``server-<i>`` naming sequence; it bootstraps via state transfer and
        counts toward quorums only once caught up.  ``role="validators"``
        grows the consensus layer instead (CometBFT backend);
        ``algorithm``/``region`` place the newcomer explicitly.
        """
        return self.faults(Join(at=at, node=node, role=role, region=region,
                                algorithm=algorithm))

    def leave(self, at: float, *nodes: str, region: str | None = None,
              count: int | None = None,
              drain: bool = True) -> "ScenarioBuilder":
        """Retire servers cleanly at ``at`` — a departure, not a crash.

        ``leave(20.0, "server-1")`` drains one named server (flush, hand off
        obligations, then retire); ``leave(20.0, count=1)`` picks a random
        one; ``drain=False`` retires immediately.  Quorums shrink at the
        next membership epoch.
        """
        if not nodes and count is None and region is None:
            count = 1
        targets = self._fault_targets(nodes, region, "servers", count)
        return self.faults(Leave(at=at, targets=targets, drain=drain))

    def loss(self, rate: float, at: float = 0.0, *,
             until: float | None = None, region: str | None = None,
             nodes: tuple[str, ...] = (),
             role: str = "all") -> "ScenarioBuilder":
        """Drop each message with probability ``rate`` while active;
        ``nodes``/``region``/``role`` restrict the loss to traffic touching
        the selected hosts (the default hits every message)."""
        targets = (self._fault_targets(nodes, region, role, None)
                   if nodes or region is not None or role != "all" else None)
        return self.faults(MessageLoss(at=at, until=until, rate=rate,
                                       targets=targets))

    def duplicates(self, rate: float, at: float = 0.0, *,
                   until: float | None = None) -> "ScenarioBuilder":
        """Deliver each message twice with probability ``rate`` while active."""
        return self.faults(Duplicate(at=at, until=until, rate=rate))

    def delay_spike(self, extra_ms: float, at: float = 0.0, *,
                    until: float | None = None, jitter_ms: float = 0.0,
                    region: str | None = None) -> "ScenarioBuilder":
        """Add ``extra_ms`` (+ uniform jitter) to message latency while active."""
        targets = (self._fault_targets((), region, "all", None)
                   if region is not None else None)
        return self.faults(DelaySpike(at=at, until=until, extra_ms=extra_ms,
                                      jitter_ms=jitter_ms, targets=targets))

    # -- ledger knobs ----------------------------------------------------------

    def block_size(self, size_bytes: int) -> "ScenarioBuilder":
        """Ledger block size cap in bytes."""
        return self._fork("ledger", block_size_bytes=int(size_bytes))

    def block_rate(self, blocks_per_second: float) -> "ScenarioBuilder":
        """Ledger block production rate (blocks per second)."""
        return self._fork("ledger", block_rate=float(blocks_per_second))

    def backend(self, name: str) -> "ScenarioBuilder":
        """Ledger backend: ``"cometbft"`` (full consensus), ``"ideal"``
        (centralized sequencer), or any registered third-party backend."""
        if not _plugins.has_ledger_backend(name):
            raise ConfigurationError(
                f"unknown ledger backend {name!r}"
                + _did_you_mean(name, _plugins.ledger_backend_names()))
        return self._fork_top(ledger_backend=name)

    # -- workload knobs --------------------------------------------------------

    def inject_for(self, seconds: float) -> "ScenarioBuilder":
        """How long clients keep adding elements (simulated seconds)."""
        return self._fork("workload", injection_duration=float(seconds))

    def drain(self, seconds: float) -> "ScenarioBuilder":
        """Extra simulated time after injection stops."""
        return self._fork_top(drain_duration=float(seconds))

    def seed(self, value: int) -> "ScenarioBuilder":
        """Deterministic seed for the workload generator and simulator."""
        return self._fork("workload", seed=int(value))

    def element_size(self, mean: float, std: float | None = None) -> "ScenarioBuilder":
        """Element size distribution in bytes (defaults match the Arbitrum trace)."""
        overrides: dict[str, Any] = {"element_size_mean": float(mean)}
        if std is not None:
            overrides["element_size_std"] = float(std)
        return self._fork("workload", **overrides)

    # -- implementation choices ------------------------------------------------

    def signature(self, scheme: str) -> "ScenarioBuilder":
        """Signature scheme: ``"simulated"`` (fast) or ``"ed25519"`` (real)."""
        return self._fork("setchain", signature_scheme=str(scheme))

    def compressor(self, name: str) -> "ScenarioBuilder":
        """Compresschain codec: ``"model"`` (paper ratios) or ``"zlib"``."""
        return self._fork("setchain", compressor=str(name))

    def label(self, text: str) -> "ScenarioBuilder":
        """Label used by reports (auto-derived when not set)."""
        return self._fork_top(label=str(text))

    # -- observability -----------------------------------------------------------

    def trace(self, sample: float = 1.0) -> "ScenarioBuilder":
        """Enable deterministic lifecycle tracing (see :mod:`repro.obs`).

        ``sample`` is the per-element sampling rate in (0, 1]; the sampling
        stream is derived from the run seed (never ``sim.rng``), so a traced
        run commits exactly what the untraced run commits.  The run's
        :class:`RunResult` gains a ``telemetry`` section, and trace files can
        be exported via ``repro trace`` or
        :func:`repro.obs.export.write_trace`.
        """
        sample = float(sample)
        if not 0.0 < sample <= 1.0:
            raise ConfigurationError(
                f"trace sample must be within (0, 1], got {sample!r}")
        return self._fork_top(trace_sample=sample)

    # -- sharding ----------------------------------------------------------------

    def shards(self, n: int) -> "ScenarioBuilder":
        """Hash-partition element ids across ``n`` independent Setchain
        instances (see :mod:`repro.shard`).

        ``servers(k)`` stays *per shard*: ``.servers(3).shards(4)`` deploys
        12 servers in four isolated groups over one shared ledger, with a
        deterministic router spreading client adds by element id.  The run's
        :class:`RunResult` gains a ``shards`` section (per-shard commit
        tallies, router admission counters, skew), and
        :meth:`Session.logical_view` merges the shard views into one logical
        set for property checking.  Incompatible with :meth:`region` /
        :meth:`mixed` topologies.
        """
        n = int(n)
        if n < 1:
            raise ConfigurationError("shards must be at least 1")
        return self._fork_top(shards=n)

    # -- escape hatches: validated per-layer overrides ---------------------------

    def setchain(self, **overrides: Any) -> "ScenarioBuilder":
        """Override any :class:`SetchainConfig` field by name (validated)."""
        _check_layer_overrides("setchain", overrides)
        return self._fork("setchain", **overrides)

    def ledger(self, **overrides: Any) -> "ScenarioBuilder":
        """Override any :class:`LedgerConfig` field by name (validated).

        ``network_delay`` is rejected here because the same keyword means
        milliseconds in the legacy ``base_scenario`` shim but seconds in
        :class:`LedgerConfig`; use :meth:`delay_ms` instead.
        """
        if "network_delay" in overrides:
            raise ConfigurationError(
                "set the network delay via delay_ms(milliseconds); the raw "
                "network_delay field is ambiguous (legacy callers pass "
                "milliseconds, LedgerConfig stores seconds)")
        _check_layer_overrides("ledger", overrides)
        return self._fork("ledger", **overrides)

    def workload(self, **overrides: Any) -> "ScenarioBuilder":
        """Override any :class:`WorkloadConfig` field by name (validated)."""
        _check_layer_overrides("workload", overrides)
        return self._fork("workload", **overrides)

    def _fork_top(self, **overrides: Any) -> "ScenarioBuilder":
        for name in overrides:
            if name not in _TOP_FIELDS:  # pragma: no cover - internal misuse
                raise ConfigurationError(f"unknown experiment field {name!r}")
        clone = self._fork()
        clone._top.update(overrides)
        return clone

    # -- terminal operations ---------------------------------------------------

    def _build_topology(self) -> TopologyConfig | None:
        spec = self._topology
        if not spec:
            return None
        regions = spec.get("regions")
        if not regions:
            raise ConfigurationError(
                "wan()/link() describe inter-region links; declare regions "
                "first with region(name, servers) or mixed(algo=count)")
        return TopologyConfig(
            regions=tuple(RegionSpec(name, servers, algorithm)
                          for name, servers, algorithm in regions),
            intra_profile=spec.get("intra_profile", "lan"),
            inter_delay=spec.get("inter_delay", 0.0),
            inter_jitter=spec.get("inter_jitter", 0.0),
            links=tuple(spec.get("links", ())),
        )

    def _build_faults(self) -> FaultScheduleConfig | None:
        if not self._faults and self._fault_window is None:
            return None
        if self._fault_window is None:
            return FaultScheduleConfig(events=tuple(self._faults))
        return FaultScheduleConfig(events=tuple(self._faults),
                                   availability_window=self._fault_window)

    def build(self) -> ExperimentConfig:
        """Materialise the validated, frozen :class:`ExperimentConfig`."""
        topology = self._build_topology()
        setchain_overrides = dict(self._setchain)
        if topology is not None:
            declared = setchain_overrides.get("n_servers")
            if declared is not None and declared != topology.n_servers:
                raise ConfigurationError(
                    f"servers({declared}) conflicts with the "
                    f"{topology.n_servers} server(s) declared by the regions; "
                    "drop servers() — regions fix the cluster size")
            setchain_overrides["n_servers"] = topology.n_servers
        setchain = SetchainConfig(**setchain_overrides)
        ledger = LedgerConfig(**self._ledger)
        workload = WorkloadConfig(**self._workload)
        top = dict(self._top)
        label = top.pop("label", "") or default_label(
            self._algorithm, workload.sending_rate,
            setchain.collector_limit, setchain.n_servers)
        return ExperimentConfig(algorithm=self._algorithm, setchain=setchain,
                                ledger=ledger, workload=workload, label=label,
                                topology=topology, faults=self._build_faults(),
                                **top)

    def run(self, scale: float = 1.0, *, seed: int | None = None,
            to_completion: bool = False):
        """Build and run this scenario; returns a serialisable :class:`RunResult`."""
        from . import run
        return run(self.build(), scale=scale, seed=seed,
                   to_completion=to_completion)

    def session(self, scale: float = 1.0, *, seed: int | None = None):
        """Build a :class:`~repro.api.session.Session` for interactive use."""
        from .session import Session
        return Session(self.build(), scale=scale, seed=seed)


#: The public spelling used in docs and examples: ``Scenario.hashchain()...``.
Scenario = ScenarioBuilder
