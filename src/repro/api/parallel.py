"""Parallel scenario execution for sweeps and benchmarks.

Registry sweeps are embarrassingly parallel — every scenario runs its own
simulator, RNG, and deployment — so :func:`run_specs` fans a list of
:class:`RunSpec` out over a :mod:`multiprocessing` pool and returns the
:class:`~repro.api.results.RunResult` objects in input order.

Determinism: two global id counters (element ids in
:mod:`repro.workload.elements`, message ids in :mod:`repro.net.message`)
otherwise leak state between runs sharing a process, which would make a
serial sweep differ from a parallel one.  :func:`reset_run_counters` gives
every run a fresh id namespace, so the same ``(scenario, seed)`` produces a
byte-identical ``RunResult`` JSON artifact regardless of ``--jobs`` or of
which scenarios ran before it in the same process.
"""

from __future__ import annotations

import argparse
import itertools
import multiprocessing
import os
from dataclasses import dataclass
from typing import Iterator, Sequence

from .results import RunResult


def default_jobs() -> int:
    """Worker count for ``--jobs auto``: one per available core."""
    return os.cpu_count() or 1


def jobs_arg(text: str) -> int:
    """argparse ``type=`` parser for ``--jobs N|auto`` (shared by the CLIs)."""
    if text == "auto":
        return default_jobs()
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("jobs must be >= 1 (or 'auto')")
    return value


def reset_run_counters() -> None:
    """Start a fresh id namespace (element/message/tx ids) for the next run."""
    from ..ledger import types as ledger_types
    from ..net import message
    from ..workload import elements
    elements._element_counter = itertools.count()
    message._msg_counter = itertools.count()
    ledger_types._tx_counter = itertools.count()


@dataclass(frozen=True)
class RunSpec:
    """One scenario execution request: registry name plus run options."""

    name: str
    scale: float = 1.0
    seed: int | None = None
    to_completion: bool = False
    #: Lifecycle-tracing sample rate; ``None`` runs untraced (the default),
    #: keeping artifacts byte-identical to the pre-observability schema.
    trace_sample: float | None = None
    #: Where to write the trace file (requires ``trace_sample``); ``None``
    #: keeps the telemetry in the RunResult only.
    trace_out: str | None = None
    trace_format: str = "chrome"


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one spec in a fresh id namespace (the pool worker entry point).

    Traced specs run the same pipeline with ``trace_sample`` overridden on
    the resolved config; the tracer draws from its own derived RNG stream, so
    the simulation schedule — and therefore the trace file — is a pure
    function of ``(name, scale, seed, trace_sample)``, independent of which
    worker process runs the spec.
    """
    from . import run
    reset_run_counters()
    if spec.trace_sample is None:
        return run(spec.name, scale=spec.scale, seed=spec.seed,
                   to_completion=spec.to_completion)
    from ..experiments.runner import run_scenario
    from ..obs.export import write_trace
    from .session import _resolve_config
    config = _resolve_config(spec.name).with_overrides(
        trace_sample=spec.trace_sample)
    outcome = run_scenario(config, scale=spec.scale, seed=spec.seed,
                           to_completion=spec.to_completion)
    if spec.trace_out is not None:
        assert outcome.deployment.tracer is not None
        write_trace(outcome.deployment.tracer, spec.trace_out,
                    fmt=spec.trace_format, label=outcome.config.label)
    return RunResult.from_experiment(outcome)


def iter_spec_results(specs: Sequence[RunSpec],
                      jobs: int = 1) -> Iterator[RunResult]:
    """Yield each spec's result in input order, as soon as it is available.

    ``jobs <= 1`` runs inline (no pool) through the exact same per-run reset,
    so serial and parallel sweeps produce identical artifacts.  Results are
    yielded incrementally (``imap`` under the hood), so a consumer can
    persist each one before the next finishes — a failure mid-sweep does not
    discard the work already completed.
    """
    specs = list(specs)
    if jobs <= 1 or len(specs) <= 1:
        for spec in specs:
            yield execute_spec(spec)
        return
    with multiprocessing.Pool(processes=min(jobs, len(specs))) as pool:
        yield from pool.imap(execute_spec, specs)


def run_specs(specs: Sequence[RunSpec], jobs: int = 1) -> list[RunResult]:
    """Run every spec, ``jobs`` at a time, returning results in input order."""
    return list(iter_spec_results(specs, jobs=jobs))
