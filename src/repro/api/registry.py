"""Named-scenario registry.

Scenarios are registered as factories (a zero-argument callable returning a
:class:`ScenarioBuilder` or a built ``ExperimentConfig``); the built-in
catalog — several hundred Table 1 grid points plus figure/stress sets — is
loaded once, on the first registry access (a few milliseconds)::

    from repro.api import register_scenario, get_scenario, scenario_names

    @register_scenario("my/slow-lan", tags=("custom",),
                       description="base point over a 100 ms WAN")
    def _slow_lan():
        return Scenario.hashchain().delay_ms(100)

    config = get_scenario("my/slow-lan")
    scenario_names(tag="custom")  # -> ["my/slow-lan"]

Lookup failures raise :class:`~repro.errors.ConfigurationError` with a
did-you-mean hint, the same contract as the builder.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..config import ExperimentConfig
from ..errors import ConfigurationError, did_you_mean as _did_you_mean
from .builder import ScenarioBuilder, default_label

#: A factory producing either a builder or a finished config.
ScenarioFactory = Callable[[], "ScenarioBuilder | ExperimentConfig"]


@dataclass(frozen=True)
class ScenarioEntry:
    """One named scenario: a lazy factory plus discovery metadata."""

    name: str
    factory: ScenarioFactory
    description: str = ""
    tags: frozenset[str] = field(default_factory=frozenset)

    def build(self) -> ExperimentConfig:
        """Materialise the scenario's :class:`ExperimentConfig`.

        Scenarios the factory left unlabelled (empty label, or exactly the
        builder's auto-derived default) are relabelled with the registry name;
        explicit labels are kept.
        """
        produced = self.factory()
        if isinstance(produced, ScenarioBuilder):
            produced = produced.build()
        if not isinstance(produced, ExperimentConfig):
            raise ConfigurationError(
                f"scenario {self.name!r} factory returned "
                f"{type(produced).__name__}, expected a Scenario builder or "
                "ExperimentConfig")
        auto_label = default_label(produced.algorithm,
                                   produced.workload.sending_rate,
                                   produced.setchain.collector_limit,
                                   produced.setchain.n_servers)
        if produced.label in ("", auto_label):
            produced = produced.with_overrides(label=self.name)
        return produced

    def matches(self, tag: str | None = None, contains: str | None = None) -> bool:
        if tag is not None and tag not in self.tags:
            return False
        if contains is not None and contains not in self.name:
            return False
        return True


_REGISTRY: dict[str, ScenarioEntry] = {}

_catalog_loaded = False
_catalog_loading = False


def _ensure_catalog() -> None:
    """Populate the built-in catalog on first registry access.

    Deferred (rather than imported by ``repro.api``) because the catalog
    derives its figure entries from ``repro.experiments.scenarios``, which
    itself builds scenarios through this package — importing it eagerly
    would create an import cycle.
    """
    global _catalog_loaded, _catalog_loading
    if _catalog_loaded or _catalog_loading:
        return
    partial = sys.modules.get(__name__.rsplit(".", 1)[0] + ".catalog")
    if partial is not None and getattr(getattr(partial, "__spec__", None),
                                       "_initializing", False):
        # The catalog is being imported directly (``import repro.api.catalog``);
        # its own register_scenario calls re-enter here and must not latch the
        # loaded flag before the module finishes executing.
        return
    registered_before = set(_REGISTRY)
    _catalog_loading = True
    try:
        from . import catalog  # noqa: F401  (imported for its side effect)
    except BaseException:
        # Roll back partial registrations so the retry re-raises the real
        # import error rather than a misleading "already registered".
        for name in set(_REGISTRY) - registered_before:
            del _REGISTRY[name]
        raise
    finally:
        _catalog_loading = False
    _catalog_loaded = True


def register_scenario(name: str, *, description: str = "",
                      tags: Iterable[str] = (), replace: bool = False):
    """Decorator registering a scenario factory under ``name``.

    Also usable imperatively: ``register_scenario("x")(factory)``.
    """
    if not name:
        raise ConfigurationError("scenario name cannot be empty")

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        # Load the built-in catalog first so a clash with a catalog name is
        # reported here, at the user's registration site, instead of wedging
        # every later lookup.  (No-op while the catalog itself registers.)
        _ensure_catalog()
        if name in _REGISTRY and not replace:
            raise ConfigurationError(
                f"scenario {name!r} is already registered "
                "(pass replace=True to overwrite)")
        _REGISTRY[name] = ScenarioEntry(name=name, factory=factory,
                                        description=description,
                                        tags=frozenset(tags))
        return factory

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registered scenario (primarily for tests)."""
    _ensure_catalog()  # so removing a built-in name sticks in a fresh process
    _REGISTRY.pop(name, None)


def get_entry(name: str) -> ScenarioEntry:
    """The :class:`ScenarioEntry` for ``name`` (did-you-mean on miss)."""
    _ensure_catalog()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}"
            + _did_you_mean(name, list(_REGISTRY)))
    return entry


def get_scenario(name: str) -> ExperimentConfig:
    """Build the registered scenario ``name``."""
    return get_entry(name).build()


def iter_scenarios(tag: str | None = None,
                   contains: str | None = None) -> list[ScenarioEntry]:
    """Registered entries, optionally filtered by tag and/or name substring."""
    _ensure_catalog()
    return [entry for name, entry in sorted(_REGISTRY.items())
            if entry.matches(tag=tag, contains=contains)]


def scenario_names(tag: str | None = None,
                   contains: str | None = None) -> list[str]:
    """Sorted names of registered scenarios matching the filters."""
    return [entry.name for entry in iter_scenarios(tag=tag, contains=contains)]


def scenario_tags() -> list[str]:
    """Every tag used by at least one registered scenario, sorted."""
    _ensure_catalog()
    tags: set[str] = set()
    for entry in _REGISTRY.values():
        tags.update(entry.tags)
    return sorted(tags)
