"""The public experiment API: builder, registry, sessions, results, CLI.

This package is the intended entry point for everything user-facing:

* :class:`Scenario` / :class:`ScenarioBuilder` — typed, fluent scenario
  construction with validated per-layer overrides;
* :func:`register_scenario` / :func:`get_scenario` / :func:`scenario_names` —
  the named-scenario registry, pre-populated (via :mod:`repro.api.catalog`)
  with the paper's Table 1 grid, the figure scenario sets, and
  stress/byzantine/burst workloads;
* :class:`Session` — interactive, incremental control over a deployment;
* :class:`RunResult` — serialisable results with exact JSON round-tripping;
* :func:`run` — one-call scenario execution returning a :class:`RunResult`.

The old ``base_scenario(**kwargs)`` / ``run_scenario(...)`` entry points
remain as thin shims over this API.
"""

from __future__ import annotations

from ..config import ExperimentConfig, RegionSpec, TopologyConfig
from ..faults import (
    Churn,
    Crash,
    DelaySpike,
    Duplicate,
    FaultScheduleConfig,
    Heal,
    MessageLoss,
    Partition,
    Recover,
    Targets,
    register_fault,
)
from ..topology import (
    register_algorithm,
    register_latency_profile,
    register_ledger_backend,
)
from .builder import Scenario, ScenarioBuilder
from .registry import (
    ScenarioEntry,
    get_entry,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    scenario_tags,
    unregister_scenario,
)
from .results import RunResult
from .session import Session

# The built-in catalog (repro.api.catalog) is loaded lazily by the registry
# on first access — see registry._ensure_catalog().


def run(scenario: "ScenarioBuilder | ExperimentConfig | str",
        scale: float = 1.0, *, seed: int | None = None,
        to_completion: bool = False) -> RunResult:
    """Run a scenario (builder, config, or registered name) to a :class:`RunResult`."""
    from ..experiments.runner import run_scenario
    from .session import _resolve_config
    outcome = run_scenario(_resolve_config(scenario), scale=scale, seed=seed,
                           to_completion=to_completion)
    return RunResult.from_experiment(outcome)


__all__ = [
    "Scenario",
    "ScenarioBuilder",
    "ScenarioEntry",
    "Session",
    "RunResult",
    "RegionSpec",
    "TopologyConfig",
    "FaultScheduleConfig",
    "Targets",
    "Partition",
    "Heal",
    "Crash",
    "Recover",
    "MessageLoss",
    "Duplicate",
    "DelaySpike",
    "Churn",
    "register_algorithm",
    "register_ledger_backend",
    "register_latency_profile",
    "register_fault",
    "run",
    "register_scenario",
    "unregister_scenario",
    "get_entry",
    "get_scenario",
    "iter_scenarios",
    "scenario_names",
    "scenario_tags",
]
