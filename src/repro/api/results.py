"""Serialisable run results.

The experiment runner's :class:`~repro.experiments.runner.ExperimentResult`
holds live objects (the deployment, the metrics collector) and therefore only
exists in memory.  :class:`RunResult` is the persistable projection: a frozen
record of everything the figures and tables need — config echo, throughput
series, efficiency, commit-time quantiles — that round-trips exactly through
``to_dict()``/``from_dict()`` and JSON, so benchmark trajectories can be
stored, diffed, and re-rendered without re-running the simulation.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..config import (
    ExperimentConfig,
    FaultScheduleConfig,
    LedgerConfig,
    SetchainConfig,
    TopologyConfig,
    WorkloadConfig,
)
from ..errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..experiments.runner import ExperimentResult

#: Bumped whenever the serialised layout changes incompatibly.
SCHEMA_VERSION = 1

#: Header row matching :func:`summary_row` (used by ``python -m repro report``).
SUMMARY_HEADERS = ("algorithm", "rate (el/s)", "collector",
                   "avg thpt 50s", "eff@50s", "eff@100s")


def summary_row(algorithm: str, sending_rate: float, collector_limit: int,
                avg_throughput_50s: float, efficiency_50: float,
                efficiency_100: float) -> list[object]:
    """One summary-table row — the single source of the table schema."""
    return [algorithm, f"{sending_rate:g}", collector_limit,
            round(avg_throughput_50s, 1), round(efficiency_50, 3),
            round(efficiency_100, 3)]


def config_echo(config: ExperimentConfig) -> dict[str, Any]:
    """The nested config dict stored in artifacts.

    The ``topology`` and ``faults`` keys are serialised through their own
    ``to_dict`` methods and *omitted entirely* when unset, so artifacts of
    legacy homogeneous fault-free configs are byte-identical to those written
    before topologies (or fault schedules) existed.
    """
    echo = dataclasses.asdict(config)
    topology = config.topology
    if topology is None:
        del echo["topology"]
    else:
        echo["topology"] = topology.to_dict()
    faults = config.faults
    if faults is None:
        del echo["faults"]
    else:
        echo["faults"] = faults.to_dict()
    if config.trace_sample is None:
        # Tracing-off artifacts stay byte-identical to the pre-obs schema.
        del echo["trace_sample"]
    if config.shards is None:
        # Unsharded artifacts stay byte-identical to the pre-sharding schema.
        del echo["shards"]
    return echo


@dataclass(frozen=True)
class RunResult:
    """The persistable outcome of one scenario run."""

    label: str
    algorithm: str
    scale: float
    #: Full nested echo of the (scaled) ``ExperimentConfig`` that ran.
    config: dict[str, Any]
    injected: int
    committed: int
    avg_throughput_50s: float
    analytical_throughput: float
    #: Efficiency at the paper's three instants: ``{"50s": .., "75s": .., "100s": ..}``.
    efficiency: dict[str, float]
    #: Commit time of the first element (``None`` if nothing committed).
    first_commit: float | None
    #: ``(fraction, time-or-None)`` pairs for the Fig. 5 commit fractions.
    commit_fractions: tuple[tuple[float, float | None], ...]
    #: Rolling-throughput series (el/s, paper's 9 s window).
    throughput_times: tuple[float, ...]
    throughput_values: tuple[float, ...]
    #: Per-region breakdown (servers/added/committed/first_commit), present
    #: only for multi-region topologies; ``None`` — and absent from the JSON
    #: artifact — for legacy homogeneous runs.
    regions: dict[str, dict[str, Any]] | None = None
    #: Resilience report (applied chaos timeline, availability windows,
    #: commit latency during/outside faults, recovery times, drop/duplicate
    #: counters); ``None`` — and absent from the JSON artifact — for
    #: fault-free runs, keeping their artifacts byte-identical.
    faults: dict[str, Any] | None = None
    #: Membership timeline (epochs with per-epoch f/quorum, joins with
    #: catch-up and join-to-first-commit times, leaves with drain outcomes);
    #: ``None`` — and absent from the JSON artifact — for runs whose
    #: membership never changed, keeping their artifacts byte-identical.
    membership: dict[str, Any] | None = None
    #: Tracing telemetry (sampled-span counts, per-phase latency percentiles,
    #: cache counters, flush-size histogram); ``None`` — and absent from the
    #: JSON artifact — when tracing is disabled, keeping untraced artifacts
    #: byte-identical.
    telemetry: dict[str, Any] | None = None
    #: Cross-shard report (per-shard added/committed/throughput, router
    #: defer/reject admissions, skew ratio); ``None`` — and absent from the
    #: JSON artifact — for unsharded runs, keeping their artifacts
    #: byte-identical.
    shards: dict[str, Any] | None = None
    schema_version: int = SCHEMA_VERSION

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_experiment(cls, result: "ExperimentResult") -> "RunResult":
        """Project an in-memory :class:`ExperimentResult` to its persistable form."""
        summary = result.commit_times
        fractions = tuple(sorted(summary.fraction_times.items()))
        return cls(
            label=result.config.label,
            algorithm=result.config.algorithm,
            scale=float(result.scale),
            config=config_echo(result.config),
            injected=len(result.deployment.injected_elements),
            committed=result.metrics.committed_count,
            avg_throughput_50s=float(result.avg_throughput_50s),
            analytical_throughput=float(result.analytical_throughput),
            efficiency=result.efficiency.as_dict(),
            first_commit=summary.first_element,
            commit_fractions=fractions,
            throughput_times=result.throughput.times,
            throughput_values=result.throughput.values,
            regions=result.metrics.region_summary(),
            faults=result.faults,
            membership=result.membership,
            telemetry=result.telemetry,
            shards=result.shards,
        )

    # -- derived views ---------------------------------------------------------

    @property
    def committed_fraction(self) -> float:
        """Committed/injected ratio over the whole run."""
        return self.committed / self.injected if self.injected else 0.0

    @property
    def throughput(self):
        """The rolling-throughput series as a :class:`ThroughputSeries`."""
        from ..analysis.throughput import ThroughputSeries
        return ThroughputSeries(times=self.throughput_times,
                                values=self.throughput_values)

    def experiment_config(self) -> ExperimentConfig:
        """Rebuild the validated :class:`ExperimentConfig` from the echo."""
        echo = dict(self.config)
        topology = echo.get("topology")
        faults = echo.get("faults")
        return ExperimentConfig(
            algorithm=echo["algorithm"],
            setchain=SetchainConfig(**echo["setchain"]),
            ledger=LedgerConfig(**echo["ledger"]),
            workload=WorkloadConfig(**echo["workload"]),
            ledger_backend=echo["ledger_backend"],
            topology=(None if topology is None
                      else TopologyConfig.from_dict(topology)),
            faults=(None if faults is None
                    else FaultScheduleConfig.from_dict(faults)),
            drain_duration=echo["drain_duration"],
            trace_sample=echo.get("trace_sample"),
            shards=echo.get("shards"),
            label=echo["label"],
        )

    def summary_row(self) -> list[object]:
        """One row for the report tables (see :data:`SUMMARY_HEADERS`)."""
        return summary_row(self.algorithm,
                           self.config["workload"]["sending_rate"],
                           self.config["setchain"]["collector_limit"],
                           self.avg_throughput_50s,
                           self.efficiency["50s"],
                           self.efficiency["100s"])

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A pure-JSON-types dict that :meth:`from_dict` inverts exactly."""
        data = dataclasses.asdict(self)
        data["commit_fractions"] = [list(pair) for pair in self.commit_fractions]
        data["throughput_times"] = list(self.throughput_times)
        data["throughput_values"] = list(self.throughput_values)
        if data["regions"] is None:
            # Keep homogeneous artifacts byte-identical to the pre-topology
            # schema (the key only appears for multi-region runs).
            del data["regions"]
        if data["faults"] is None:
            # Same contract for fault-free runs vs the pre-faults schema.
            del data["faults"]
        if data["membership"] is None:
            # And for static-membership runs vs the pre-membership schema.
            del data["membership"]
        if data["telemetry"] is None:
            # And for untraced runs vs the pre-observability schema.
            del data["telemetry"]
        if data["shards"] is None:
            # And for unsharded runs vs the pre-sharding schema.
            del data["shards"]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Invert :meth:`to_dict` (also accepts freshly-parsed JSON)."""
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"RunResult data must be a JSON object, got {type(data).__name__}")
        payload = dict(data)
        version = payload.pop("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int):
            raise ConfigurationError(
                f"RunResult schema_version must be an integer, got {version!r}")
        if version > SCHEMA_VERSION:
            raise ConfigurationError(
                f"RunResult schema version {version} is newer than this "
                f"library understands ({SCHEMA_VERSION})")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigurationError(f"unknown RunResult fields: {unknown}")
        missing = sorted(known - {"schema_version", "regions", "faults",
                                  "membership", "telemetry", "shards"}
                         - set(payload))
        if missing:
            raise ConfigurationError(f"missing RunResult fields: {missing}")
        faults = payload.get("faults")
        if faults is not None:
            if not isinstance(faults, Mapping):
                raise ConfigurationError(
                    "malformed RunResult faults: expected a resilience-report "
                    "object")
            payload["faults"] = dict(faults)
        membership = payload.get("membership")
        if membership is not None:
            if not isinstance(membership, Mapping):
                raise ConfigurationError(
                    "malformed RunResult membership: expected a membership-"
                    "timeline object")
            payload["membership"] = dict(membership)
        telemetry = payload.get("telemetry")
        if telemetry is not None:
            if not isinstance(telemetry, Mapping):
                raise ConfigurationError(
                    "malformed RunResult telemetry: expected a telemetry-"
                    "report object")
            payload["telemetry"] = dict(telemetry)
        shards = payload.get("shards")
        if shards is not None:
            if not isinstance(shards, Mapping):
                raise ConfigurationError(
                    "malformed RunResult shards: expected a cross-shard "
                    "report object")
            payload["shards"] = dict(shards)
        regions = payload.get("regions")
        if regions is not None and (
                not isinstance(regions, Mapping)
                or not all(isinstance(stats, Mapping)
                           for stats in regions.values())):
            raise ConfigurationError(
                "malformed RunResult regions: expected an object of per-region "
                "stat objects")
        if regions is not None:
            payload["regions"] = {str(region): dict(stats)
                                  for region, stats in regions.items()}
        config = payload["config"]
        config_keys = {"algorithm", "setchain", "ledger", "workload",
                       "ledger_backend", "drain_duration", "label"}
        if (not isinstance(config, Mapping)
                or not config_keys <= set(config)
                or not all(isinstance(config[layer], Mapping)
                           for layer in ("setchain", "ledger", "workload"))):
            raise ConfigurationError(
                "malformed RunResult config echo: expected an object with "
                f"keys {sorted(config_keys)} and nested layer objects")
        efficiency = payload["efficiency"]
        if (not isinstance(efficiency, Mapping)
                or not {"50s", "75s", "100s"} <= set(efficiency)):
            raise ConfigurationError(
                "malformed RunResult efficiency: need 50s/75s/100s keys")
        try:
            payload["label"] = str(payload["label"])
            payload["algorithm"] = str(payload["algorithm"])
            payload["scale"] = float(payload["scale"])
            payload["injected"] = int(payload["injected"])
            payload["committed"] = int(payload["committed"])
            payload["avg_throughput_50s"] = float(payload["avg_throughput_50s"])
            payload["analytical_throughput"] = float(payload["analytical_throughput"])
            payload["efficiency"] = {str(instant): float(value)
                                     for instant, value in efficiency.items()}
            payload["commit_fractions"] = tuple(
                (float(fraction), None if time is None else float(time))
                for fraction, time in payload["commit_fractions"])
            payload["throughput_times"] = tuple(
                float(t) for t in payload["throughput_times"])
            payload["throughput_values"] = tuple(
                float(v) for v in payload["throughput_values"])
            payload["first_commit"] = (None if payload["first_commit"] is None
                                       else float(payload["first_commit"]))
        except (TypeError, ValueError) as error:
            raise ConfigurationError(
                f"malformed RunResult field values: {error}") from error
        return cls(schema_version=version, **payload)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid RunResult JSON: {error}") from error
        return cls.from_dict(data)

    def save(self, path: str | Path) -> Path:
        """Write the JSON artifact (creating parent directories) and return its path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def load(cls, path: str | Path) -> "RunResult":
        return cls.from_json(Path(path).read_text())
