"""Interactive sessions over a deployment.

:class:`Session` is the incremental counterpart to the batch runner: it
builds the same :class:`~repro.core.deployment.Deployment` a scenario run
would use, but hands control of simulated time to the caller — start the
cluster, step the simulator, inject individual elements, inspect
``SetchainView`` snapshots and per-server backlog mid-run, and finally
package the standard analyses as a serialisable :class:`RunResult`::

    with Scenario.hashchain().servers(4).rate(200).session() as session:
        session.run_for(10.0)
        print(session.backlog(), session.committed_fraction)
        session.inject(size_bytes=438)
        session.run_to_completion()
        result = session.result()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import ExperimentConfig
from ..core.deployment import Deployment, build_deployment
from ..errors import ConfigurationError, SetchainError, SimulationError
from ..workload.elements import Element, make_element
from .builder import ScenarioBuilder
from .results import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.types import SetchainView


def _resolve_config(scenario: "ScenarioBuilder | ExperimentConfig | str") -> ExperimentConfig:
    """Accept a builder, a finished config, or a registry name."""
    if isinstance(scenario, ScenarioBuilder):
        return scenario.build()
    if isinstance(scenario, ExperimentConfig):
        return scenario
    if isinstance(scenario, str):
        from .registry import get_scenario
        return get_scenario(scenario)
    raise ConfigurationError(
        f"cannot build a session from {type(scenario).__name__}; expected a "
        "Scenario builder, ExperimentConfig, or registered scenario name")


class Session:
    """A started-on-demand deployment with incremental control of sim time."""

    def __init__(self, scenario: "ScenarioBuilder | ExperimentConfig | str",
                 *, scale: float = 1.0, seed: int | None = None,
                 inject: bool = True) -> None:
        from ..experiments.runner import scaled_config
        self.config = scaled_config(_resolve_config(scenario), scale)
        self.scale = scale
        self.deployment: Deployment = build_deployment(self.config, seed=seed)
        self._started = False
        self._inject_clients = inject
        self._injected_by_hand = 0

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "Session":
        """Start ledger block production, servers, and client injection.

        Sessions built with ``inject=False`` start everything except the
        batch injection clients (service mode streams its own workload).
        """
        if self._started:
            raise SimulationError("session already started")
        self.deployment.start(inject=self._inject_clients)
        self._started = True
        return self

    def stop(self) -> None:
        """Stop injection and block production (idempotent); see
        :meth:`Deployment.stop`."""
        self.deployment.stop()

    @property
    def started(self) -> bool:
        return self._started

    def __enter__(self) -> "Session":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def _require_started(self) -> None:
        if not self._started:
            raise SimulationError("session not started; call start() or use "
                                  "the session as a context manager")

    # -- advancing simulated time ----------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self.deployment.sim.now

    def step(self) -> bool:
        """Process exactly one simulation event; False when none are pending."""
        self._require_started()
        return self.deployment.sim.step()

    def run_for(self, duration: float) -> "Session":
        """Advance simulated time by ``duration`` seconds."""
        if duration < 0:
            raise ConfigurationError("duration cannot be negative")
        return self.run_until(self.now + duration)

    def run_until(self, time: float) -> "Session":
        """Advance simulated time up to the absolute instant ``time``."""
        self._require_started()
        self.deployment.sim.run_until(time)
        return self

    def run(self) -> "Session":
        """Run to the scenario's configured horizon (injection + drain)."""
        self._require_started()
        self.deployment.run()
        return self

    def run_to_completion(self, extra_time: float = 200.0) -> "Session":
        """Run past the horizon until every injected element commits."""
        self._require_started()
        self.deployment.run_to_completion(extra_time=extra_time)
        return self

    # -- injecting work --------------------------------------------------------

    def inject(self, size_bytes: int | None = None, *, client: str = "session",
               server: int = 0, element: Element | None = None) -> Element:
        """Add one element to a server, with the same bookkeeping as clients.

        Either pass a ready-made ``element`` or let the session create one of
        ``size_bytes`` (defaults to the scenario's mean element size).
        """
        self._require_started()
        servers = self.deployment.servers
        if not 0 <= server < len(servers):
            raise ConfigurationError(
                f"server index {server} out of range for {len(servers)} servers")
        if element is None:
            size = size_bytes if size_bytes is not None else int(
                self.config.workload.element_size_mean)
            element = make_element(client=client, size_bytes=size,
                                   created_at=self.now)
        if not servers[server].add(element):
            raise SetchainError(
                f"server {servers[server].name} rejected the element "
                "(duplicate or invalid); it was not recorded as injected")
        self.deployment.injected_elements.append(element)
        self.deployment.metrics.record_injected(element, self.now)
        self._injected_by_hand += 1
        return element

    # -- interactive chaos ------------------------------------------------------

    def crash(self, name: str) -> "Session":
        """Crash-fault a server or ledger node by name, mid-run."""
        self._require_started()
        self.deployment.crash_node(name)
        return self

    def recover(self, name: str) -> "Session":
        """Recover a crashed node (servers replay missed blocks; CometBFT
        validators block-sync from a live peer)."""
        self._require_started()
        self.deployment.recover_node(name)
        return self

    def partition(self, group: set[str] | list[str] | tuple[str, ...]) -> "Session":
        """Partition ``group`` from every other node on the network."""
        self._require_started()
        cut = set(group)
        rest = set(self.deployment.network.node_names()) - cut
        if not cut or not rest:
            raise ConfigurationError(
                "partition group must be a non-empty strict subset of the nodes")
        self.deployment.network.partition(cut, rest)
        return self

    def heal(self) -> "Session":
        """Remove every installed partition."""
        self._require_started()
        self.deployment.network.heal()
        return self

    def become_byzantine(self, name: str,
                         behaviour: str = "silent") -> "Session":
        """Attach a Byzantine behaviour strategy to a server, mid-run.

        ``behaviour`` is a registered name (withhold / wrong-hash /
        invalid-element / equivocate / silent, or third-party).  Only
        Setchain servers can turn Byzantine.
        """
        self._require_started()
        self.deployment.become_byzantine(name, behaviour)
        return self

    def become_correct(self, name: str) -> "Session":
        """Shed a server's Byzantine behaviour (a withholding server serves
        its buffered ``Request_batch`` replies on reversion)."""
        self._require_started()
        self.deployment.become_correct(name)
        return self

    # -- dynamic membership ------------------------------------------------------

    def add_server(self, name: str | None = None, *,
                   algorithm: str | None = None,
                   region: str | None = None) -> str:
        """Join a server mid-run: build, state-transfer, admit once caught up.

        Returns the new server's name (auto-assigned along the
        ``server-<i>`` sequence when ``name`` is None).  On the CometBFT
        backend a co-located validator joins the consensus set, activating
        two blocks later.
        """
        self._require_started()
        server = self.deployment.add_server(name=name, algorithm=algorithm,
                                            region=region)
        return server.name

    def remove_server(self, name: str, *, drain: bool = True) -> "Session":
        """Retire a server cleanly: drain, hand off obligations, depart."""
        self._require_started()
        self.deployment.remove_server(name, drain=drain)
        return self

    def add_validator(self, name: str | None = None) -> str:
        """Grow the consensus layer by one (app-less) validator; returns
        its name.  Requires a backend with a validator set (CometBFT)."""
        self._require_started()
        return self.deployment.add_validator(name)

    def remove_validator(self, name: str) -> "Session":
        """Shrink the consensus layer by one validator (two-block delay).

        Refused while the validator still feeds a Setchain server — remove
        the server instead.
        """
        self._require_started()
        self.deployment.remove_validator(name)
        return self

    def membership(self) -> dict | None:
        """The membership timeline so far (None for static deployments)."""
        return self.deployment.membership_report()

    def byzantine_nodes(self) -> list[str]:
        """Names of currently Byzantine servers, sorted."""
        return sorted(server.name for server in self.deployment.servers
                      if server.is_byzantine)

    def crashed_nodes(self) -> list[str]:
        """Names of currently crash-faulted nodes, sorted."""
        network = self.deployment.network
        return [name for name in network.node_names()
                if network.node(name).crashed]

    # -- inspection ------------------------------------------------------------

    def views(self) -> dict[str, "SetchainView"]:
        """``get()`` snapshots of every server, keyed by server name."""
        return self.deployment.views()

    def view(self, server: int | str = 0) -> "SetchainView":
        """One server's ``get()`` snapshot, by index or name."""
        for index, candidate in enumerate(self.deployment.servers):
            if server == index or server == candidate.name:
                return candidate.get()
        raise ConfigurationError(f"no server {server!r} in this deployment")

    def backlog(self) -> dict[str, int]:
        """Pending block-processing work items per server (stress indicator)."""
        return {s.name: s.backlog for s in self.deployment.servers}

    @property
    def injected_count(self) -> int:
        return len(self.deployment.injected_elements)

    @property
    def committed_count(self) -> int:
        return self.deployment.metrics.committed_count

    @property
    def committed_fraction(self) -> float:
        return self.deployment.committed_fraction

    def check_properties(self, include_liveness: bool = True):
        """Run the Setchain Property 1-8 checkers over the current views."""
        return self.deployment.check_properties(include_liveness=include_liveness)

    # -- sharding: the merged logical set ----------------------------------------

    def logical_view(self) -> "SetchainView":
        """One view of the whole deployment as a single logical set.

        For sharded deployments this merges one representative correct,
        caught-up server view per shard: the logical set is the union of the
        per-shard sets (disjoint by construction — the router partitions the
        element-id space), and the per-shard epochs are renumbered into one
        logical epoch sequence ordered by ``(epoch_number, shard_index)``,
        with each epoch's proofs remapped to the logical numbering.  For
        unsharded deployments it is a representative server's ``get()``.
        """
        from types import MappingProxyType

        from ..core.types import EpochProof, SetchainView

        deployment = self.deployment
        router = deployment.shard_router
        shard_lists = (router.shard_servers if router is not None
                       else [deployment.servers])
        faulty = deployment.byzantine_servers()

        def representative(servers):  # type: ignore[no-untyped-def]
            for server in servers:
                if (server.name not in faulty and not server.crashed
                        and not server.departed and not server.bootstrapping):
                    return server
            raise SetchainError(
                "no correct caught-up server to represent shard "
                f"{{{', '.join(s.name for s in servers)}}}")

        shard_views = [representative(servers).get() for servers in shard_lists]
        merged_set: set = set()
        epochs: list[tuple[int, int, frozenset, frozenset]] = []
        for shard_index, view in enumerate(shard_views):
            merged_set.update(view.the_set)
            for number in sorted(view.history):
                epochs.append((number, shard_index, view.history[number],
                               view.proofs_for(number)))
        epochs.sort(key=lambda entry: (entry[0], entry[1]))
        history: dict[int, frozenset] = {}
        proofs: set[EpochProof] = set()
        for logical_number, (_, _, elements, epoch_proofs) in enumerate(epochs, 1):
            history[logical_number] = elements
            for proof in epoch_proofs:
                proofs.add(EpochProof(epoch_number=logical_number,
                                      epoch_hash=proof.epoch_hash,
                                      signature=proof.signature,
                                      signer=proof.signer))
        return SetchainView(the_set=frozenset(merged_set),
                            history=MappingProxyType(history),
                            epoch=len(history),
                            proofs=frozenset(proofs))

    def check_logical_properties(self, include_liveness: bool = True):
        """Run the Property 1-8 checkers over the merged logical view.

        The single merged view exercises the per-view properties (consistent
        sets, unique epochs, add-before-get over *all* injected elements,
        eventual-get, quorum-signed epochs); the cross-shard agreement
        properties are covered per shard by :meth:`check_properties`.
        """
        from ..core.properties import check_all
        view = self.logical_view()
        return check_all({"logical": view},
                         quorum=self.config.setchain.quorum,
                         all_added=self.deployment.injected_elements,
                         include_liveness=include_liveness)

    # -- results ---------------------------------------------------------------

    def result(self) -> RunResult:
        """Package the standard analyses for the run so far."""
        from ..experiments.runner import package_result
        self._require_started()
        return RunResult.from_experiment(
            package_result(self.deployment, scale=self.scale))
