"""The built-in scenario catalog.

Importing this module — done lazily by the registry on its first access, see
``registry._ensure_catalog`` — populates the registry with:

* ``base`` — the paper's base evaluation point;
* ``table1/...`` — the full Table 1 parameter grid for every algorithm;
* ``figure1/...``, ``figure2/...``, ``figure4/...`` — each figure's scenario
  set from the evaluation section;
* ``stress/...`` — saturation scenarios past the analytical ceilings;
* ``byzantine/...`` — runs with an explicit Byzantine tolerance ``f``;
* ``burst/...`` — short high-rate injection spikes with long drains;
* ``wan/...`` — homogeneous clusters split across regions over wide-area links;
* ``geo/...`` — geo-distributed sites with per-pair delay matrices and jitter;
* ``mixed/...`` — heterogeneous clusters (per-region algorithms, one ledger);
* ``chaos/...`` — deterministic fault schedules (:mod:`repro.faults`):
  partitions, crash/recovery, churn, loss, duplication, delay spikes;
* ``byz/...`` — Byzantine nemeses as schedule events: servers turning
  Byzantine (withhold/wrong-hash/invalid-element/equivocate/silent) and back
  mid-run, alone and mixed with crash/partition/loss timelines;
* ``member/...`` — dynamic membership: servers joining under load (state
  transfer + catch-up), draining leaves, replacements, and elastic
  grow/shrink timelines, alone and mixed with crash/partition/Byzantine
  nemeses;
* ``shard/...`` — hash-partitioned scale-out (:mod:`repro.shard`): 1/2/4/8
  isolated Setchain instances behind the deterministic shard router, at
  rates past what one instance sustains, plus elastic add-shard-under-load
  and drain-whole-shard timelines;
* ``bench/...`` — the pinned ``bench-smoke`` set measured by :mod:`repro.bench`;
* ``quickstart`` / ``smoke`` — small scenarios that finish in seconds.

The Table 1 and figure entries capture configs built once here, at catalog
import, because both are derived from the grid enumerations the experiment
harness itself uses (``config.table1_grid``, ``experiments.scenarios``) —
building all ~200 frozen configs costs a few milliseconds, paid once.
"""

from __future__ import annotations

from ..config import table1_grid
from ..experiments.scenarios import (
    figure1_scenarios,
    figure2_left_scenarios,
    figure4_scenarios,
)
from .builder import Scenario
from .registry import register_scenario

# -- base point ---------------------------------------------------------------

register_scenario(
    "base", tags=("paper", "base"),
    description="Paper base point: hashchain, 10 servers, 10k el/s, no delay",
)(lambda: Scenario.hashchain())


# -- Table 1 grid -------------------------------------------------------------
# Derived from config.table1_grid() — the same enumeration the sweep harness
# uses — so the registry names can never drift from the grid definition.

def _register_table1_grid() -> None:
    for config in table1_grid():
        algorithm = config.algorithm
        rate = config.workload.sending_rate
        servers = config.setchain.n_servers
        delay = config.ledger.network_delay * 1000.0
        collector = config.setchain.collector_limit
        name = f"table1/{algorithm}/r{rate:g}-n{servers}-d{delay:g}"
        description = (f"Table 1: {algorithm}, {rate:g} el/s, "
                       f"{servers} servers, {delay:g} ms delay")
        if algorithm != "vanilla":
            name += f"-c{collector}"
            description += f", collector {collector}"
        register_scenario(
            name, tags=("paper", "table1", algorithm),
            description=description,
        )(lambda c=config: c)


_register_table1_grid()


# -- figure scenario sets -----------------------------------------------------
# Derived from the experiment harness's own grids (experiments/scenarios.py)
# so the CLI and the figure regenerators can never drift apart.

def _register_figures() -> None:
    for panel, configs in figure1_scenarios().items():
        for config in configs:
            register_scenario(
                f"figure1/{panel}/{config.algorithm}",
                tags=("paper", "figure1", config.algorithm),
                description=f"Fig. 1 {panel}: {config.label}",
            )(lambda c=config: c)
    for config in figure2_left_scenarios():
        register_scenario(
            f"figure2/{config.algorithm}",
            tags=("paper", "figure2", config.algorithm),
            description=f"Fig. 2 left: {config.label}",
        )(lambda c=config: c)
    for config in figure4_scenarios():
        register_scenario(
            f"figure4/{config.algorithm}",
            tags=("paper", "figure4", config.algorithm),
            description=f"Fig. 4 latency CDF: {config.label}",
        )(lambda c=config: c)


_register_figures()


# -- stress -------------------------------------------------------------------

register_scenario(
    "stress/hashchain-2x-ceiling", tags=("stress", "hashchain"),
    description="Hashchain at 40k el/s, twice the hash-reversal ceiling",
)(lambda: Scenario.hashchain().rate(40_000).collector(500))

register_scenario(
    "stress/vanilla-overload", tags=("stress", "vanilla"),
    description="Vanilla at 20k el/s, far past its block-bandwidth bound",
)(lambda: Scenario.vanilla().rate(20_000))

register_scenario(
    "stress/tiny-blocks", tags=("stress", "hashchain"),
    description="Hashchain with 64 KiB blocks: ledger bandwidth as bottleneck",
)(lambda: Scenario.hashchain().rate(10_000).block_size(64 * 1024))


# -- byzantine tolerance ------------------------------------------------------

register_scenario(
    "byzantine/f1-n4", tags=("byzantine", "hashchain"),
    description="4 hashchain servers tolerating f=1 (quorum 2)",
)(lambda: Scenario.hashchain().servers(4).byzantine(f=1).rate(1_000))

register_scenario(
    "byzantine/f4-n10", tags=("byzantine", "hashchain"),
    description="10 hashchain servers at the maximum f=4 (quorum 5)",
)(lambda: Scenario.hashchain().servers(10).byzantine(f=4))

register_scenario(
    "byzantine/f0-trusted", tags=("byzantine", "compresschain"),
    description="Fully trusted 7-server compresschain cluster (f=0, quorum 1)",
)(lambda: Scenario.compresschain().servers(7).byzantine(f=0))


# -- burst workloads ----------------------------------------------------------

register_scenario(
    "burst/spike-5s", tags=("burst", "hashchain"),
    description="5-second 50k el/s spike into hashchain, then a long drain",
)(lambda: Scenario.hashchain().rate(50_000).collector(500)
  .inject_for(5).drain(145))

register_scenario(
    "burst/spike-10s-compresschain", tags=("burst", "compresschain"),
    description="10-second 20k el/s spike into compresschain, collector 500",
)(lambda: Scenario.compresschain().rate(20_000).collector(500)
  .inject_for(10).drain(140))


# -- pinned benchmark scenarios (repro.bench) ---------------------------------
# The ``bench-smoke`` set exercises every hot layer of the simulator: the
# event loop (heavy hashchain run), the batching/hashing path (compresschain),
# the per-element ledger path (vanilla), and the real-EdDSA code path
# (ed25519).  These definitions are pinned — changing them invalidates the
# perf trajectory recorded in BENCH_*.json.

register_scenario(
    "bench/hashchain-base", tags=("bench", "bench-smoke"),
    description="Bench: 7-server hashchain, 400 el/s for 15 s",
)(lambda: Scenario.hashchain().servers(7).rate(400).collector(50)
  .inject_for(15).drain(60))

register_scenario(
    "bench/hashchain-heavy", tags=("bench", "bench-smoke"),
    description="Bench: 10-server hashchain, 1000 el/s for 20 s (event-loop heavy)",
)(lambda: Scenario.hashchain().servers(10).rate(1000).collector(100)
  .inject_for(20).drain(80))

register_scenario(
    "bench/compresschain", tags=("bench", "bench-smoke"),
    description="Bench: 4-server compresschain, 800 el/s for 20 s",
)(lambda: Scenario.compresschain().servers(4).rate(800).collector(50)
  .inject_for(20).drain(60))

register_scenario(
    "bench/vanilla", tags=("bench", "bench-smoke"),
    description="Bench: 4-server vanilla, 200 el/s for 20 s",
)(lambda: Scenario.vanilla().servers(4).rate(200).inject_for(20).drain(60))

register_scenario(
    "bench/hashchain-ed25519", tags=("bench", "bench-smoke"),
    description="Bench: 4-server hashchain over real ed25519 signatures",
)(lambda: Scenario.hashchain().servers(4).rate(100).collector(20)
  .inject_for(5).drain(40).signature("ed25519"))

# The ``bench-million`` set stresses the columnar hot paths at throughput
# scale: one million injected elements per run (50k el/s for 20 s), large
# collectors so flush batches stay thousands of elements wide, and the
# simulated signature scheme so crypto cost does not mask the data-path cost.
# Vanilla appends one ledger transaction per element by design — the very
# bottleneck the Setchain paper's batched variants remove — so its million-
# element run takes minutes where the batched algorithms take tens of
# seconds; that contrast is the measurement, not an accident.  The
# ``million-smoke`` variants cover the same code paths at 100k elements for
# CI wall budgets.

register_scenario(
    "bench/million-hashchain", tags=("bench", "bench-million"),
    description="Bench: 1M elements through 4-server hashchain (50k el/s for 20 s)",
)(lambda: Scenario.hashchain().servers(4).rate(50_000).collector(5000)
  .inject_for(20).drain(120))

register_scenario(
    "bench/million-compresschain", tags=("bench", "bench-million"),
    description="Bench: 1M elements through 4-server compresschain, 8 MiB blocks",
)(lambda: Scenario.compresschain().servers(4).rate(50_000).collector(5000)
  .block_size(8_388_608).block_rate(4).inject_for(20).drain(120))

register_scenario(
    "bench/million-vanilla", tags=("bench", "bench-million"),
    description="Bench: 1M elements through 4-server vanilla (per-element baseline)",
)(lambda: Scenario.vanilla().servers(4).rate(50_000)
  .block_size(8_388_608).block_rate(4).inject_for(20).drain(240))

register_scenario(
    "bench/million-smoke-hashchain", tags=("bench", "million-smoke"),
    description="CI smoke: 100k elements through 4-server hashchain",
)(lambda: Scenario.hashchain().servers(4).rate(20_000).collector(2000)
  .inject_for(5).drain(40))

register_scenario(
    "bench/million-smoke-compresschain", tags=("bench", "million-smoke"),
    description="CI smoke: 100k elements through 4-server compresschain",
)(lambda: Scenario.compresschain().servers(4).rate(20_000).collector(2000)
  .block_size(8_388_608).block_rate(4).inject_for(5).drain(40))

register_scenario(
    "bench/million-smoke-vanilla", tags=("bench", "million-smoke"),
    description="CI smoke: 100k elements through 4-server vanilla",
)(lambda: Scenario.vanilla().servers(4).rate(20_000)
  .block_size(8_388_608).block_rate(4).inject_for(5).drain(40))


# -- wide-area topologies (repro.topology) ------------------------------------
# Homogeneous clusters spread across regions with tens-of-milliseconds
# inter-region links (the geo-distribution discussion of the paper's §5),
# modelling per-region link quality rather than the single uniform
# network_delay knob of Table 1.

def _register_wan() -> None:
    for algorithm in ("vanilla", "compresschain", "hashchain"):
        for delay_ms in (30, 60, 100):
            register_scenario(
                f"wan/{algorithm}/2region-d{delay_ms}",
                tags=("wan", "topology", algorithm),
                description=(f"{algorithm} split 5+5 across two regions, "
                             f"{delay_ms} ms inter-region delay"),
            )(lambda a=algorithm, d=delay_ms: Scenario(a)
              .region("us-east", 5).region("eu-west", 5)
              .wan(inter_ms=d, jitter_ms=d / 5).rate(5_000))
    for delay_ms in (30, 60, 100):
        register_scenario(
            f"wan/hashchain/3region-d{delay_ms}",
            tags=("wan", "topology", "hashchain"),
            description=(f"hashchain split 4+3+3 across three regions, "
                         f"{delay_ms} ms inter-region delay"),
        )(lambda d=delay_ms: Scenario.hashchain()
          .region("us-east", 4).region("eu-west", 3).region("ap-south", 3)
          .wan(inter_ms=d, jitter_ms=d / 5).rate(5_000))
    register_scenario(
        "wan/hashchain/wan-intra", tags=("wan", "topology", "hashchain"),
        description="hashchain on WAN links even within the single region",
    )(lambda: Scenario.hashchain().region("site", 10)
      .wan(inter_ms=0, jitter_ms=0, intra="wan").rate(5_000))
    register_scenario(
        "wan/hashchain/smoke", tags=("wan", "topology", "hashchain", "ci"),
        description="small 2+2 two-region hashchain over 30 ms links; ~seconds",
    )(lambda: Scenario.hashchain().region("us", 2).region("eu", 2)
      .wan(inter_ms=30, jitter_ms=5).rate(200).collector(20)
      .inject_for(5).drain(40).backend("ideal"))


_register_wan()


# -- geo-distributed delay matrices -------------------------------------------
# Named sites with a per-pair one-way delay matrix (rough transatlantic /
# transpacific figures) instead of one uniform inter-region delay.

def _geo_us_eu_ap(algorithm: str) -> Scenario:
    return (Scenario(algorithm)
            .region("us", 3).region("eu", 3).region("ap", 3)
            .wan(inter_ms=80, jitter_ms=15)
            .link("us", "eu", 40).link("us", "ap", 90).link("eu", "ap", 80)
            .rate(4_500))


def _register_geo() -> None:
    for algorithm in ("vanilla", "compresschain", "hashchain"):
        register_scenario(
            f"geo/{algorithm}/us-eu-ap", tags=("geo", "topology", algorithm),
            description=(f"{algorithm} across us/eu/ap with a measured-style "
                         "delay matrix (40/90/80 ms)"),
        )(lambda a=algorithm: _geo_us_eu_ap(a))
    register_scenario(
        "geo/hashchain/us-eu", tags=("geo", "topology", "hashchain"),
        description="hashchain 5+5 across the Atlantic (40 ms, 10 ms jitter)",
    )(lambda: Scenario.hashchain().region("us", 5).region("eu", 5)
      .wan(inter_ms=40, jitter_ms=10).rate(5_000))
    register_scenario(
        "geo/hashchain/us-eu-ap-c500", tags=("geo", "topology", "hashchain"),
        description="us/eu/ap hashchain with collector 500 (latency amortised)",
    )(lambda: _geo_us_eu_ap("hashchain").collector(500))
    register_scenario(
        "geo/hashchain/global-5", tags=("geo", "topology", "hashchain"),
        description="five 2-server sites, 80 ms default + per-pair overrides",
    )(lambda: Scenario.hashchain()
      .region("us", 2).region("eu", 2).region("ap", 2)
      .region("sa", 2).region("af", 2)
      .wan(inter_ms=80, jitter_ms=20)
      .link("us", "eu", 40).link("us", "sa", 60).link("eu", "af", 50)
      .rate(4_000))
    register_scenario(
        "geo/hashchain/high-jitter", tags=("geo", "topology", "hashchain"),
        description="two regions with 30 ms base but 60 ms jitter (lossy path)",
    )(lambda: Scenario.hashchain().region("us", 5).region("eu", 5)
      .wan(inter_ms=30, jitter_ms=60).rate(5_000))
    register_scenario(
        "geo/hashchain/smoke", tags=("geo", "topology", "hashchain", "ci"),
        description="small us/eu/ap hashchain over the ideal ledger; ~seconds",
    )(lambda: Scenario.hashchain().region("us", 2).region("eu", 1).region("ap", 1)
      .wan(inter_ms=60, jitter_ms=10).link("us", "eu", 40)
      .rate(200).collector(20).inject_for(5).drain(40).backend("ideal"))


_register_geo()


# -- heterogeneous (mixed-algorithm) clusters ---------------------------------
# Per-region algorithm assignment over one shared ledger: each algorithm
# group is its own Setchain instance multi-tenanted on the consensus
# substrate (cross-group epoch agreement is not claimed — see
# Deployment.algorithm_groups).

def _register_mixed() -> None:
    pairs = (("vanilla", "hashchain"), ("vanilla", "compresschain"),
             ("compresschain", "hashchain"))
    for first, second in pairs:
        for n in (4, 6, 10):
            register_scenario(
                f"mixed/{first}-{second}/n{n}",
                tags=("mixed", "topology", first, second),
                description=(f"{n}-server cluster split "
                             f"{n // 2} {first} + {n - n // 2} {second}"),
            )(lambda a=first, b=second, total=n: Scenario(a)
              .region(a, total // 2, a).region(b, total - total // 2, b)
              .rate(2_000).collector(100))
    register_scenario(
        "mixed/tri/n6", tags=("mixed", "topology"),
        description="2 vanilla + 2 compresschain + 2 hashchain on one ledger",
    )(lambda: Scenario.hashchain()
      .mixed(vanilla=2, compresschain=2, hashchain=2).rate(2_000))
    register_scenario(
        "mixed/light/hashchain-vs-light-n4", tags=("mixed", "topology", "hashchain"),
        description="full hashchain beside its light ablation (2+2)",
    )(lambda: Scenario.hashchain().mixed(hashchain=2, hashchain_light=2)
      .rate(2_000))
    register_scenario(
        "mixed/wan/vanilla-hashchain-d60", tags=("mixed", "wan", "topology"),
        description="vanilla region vs hashchain region over 60 ms links",
    )(lambda: Scenario.hashchain()
      .region("legacy", 3, "vanilla").region("modern", 3, "hashchain")
      .wan(inter_ms=60, jitter_ms=10).rate(2_000))
    register_scenario(
        "mixed/wan/compresschain-hashchain-d60", tags=("mixed", "wan", "topology"),
        description="compresschain region vs hashchain region over 60 ms links",
    )(lambda: Scenario.hashchain()
      .region("compress", 3, "compresschain").region("hash", 3, "hashchain")
      .wan(inter_ms=60, jitter_ms=10).rate(2_000))
    register_scenario(
        "mixed/smoke", tags=("mixed", "topology", "ci"),
        description="2 vanilla + 2 hashchain, f=1, ideal ledger; ~seconds",
    )(lambda: Scenario.hashchain().mixed(vanilla=2, hashchain=2)
      .byzantine(f=1).rate(200).collector(20)
      .inject_for(5).drain(60).backend("ideal"))


_register_mixed()


# -- chaos: deterministic fault schedules (repro.faults) ----------------------
# Jepsen-style nemesis timelines over the paper's clusters: every scenario is
# seed-deterministic (the injector draws from a derived RNG stream), so the
# same (scenario, seed) reproduces the same chaos in any process.  Faults are
# placed inside the 50 s injection window with generous drains so recovery
# paths (hashchain Request_batch retries, server block replay, CometBFT
# block-sync) get exercised *and* observed by the resilience metrics.


def _register_chaos() -> None:
    # partitions -------------------------------------------------------------
    for algorithm in ("vanilla", "compresschain", "hashchain"):
        register_scenario(
            f"chaos/partition/minority-{algorithm}",
            tags=("chaos", "faults", "partition", algorithm),
            description=(f"{algorithm}: a random 3-server minority is cut off "
                         "from t=10 s to t=25 s"),
        )(lambda a=algorithm: Scenario(a).rate(2_000)
          .partition(10.0, until=25.0, count=3, role="servers"))
    register_scenario(
        "chaos/partition/majority-hashchain",
        tags=("chaos", "faults", "partition", "hashchain"),
        description="6 of 10 hashchain servers partitioned away for 15 s "
                    "(no server-side quorum across the cut)",
    )(lambda: Scenario.hashchain().rate(2_000)
      .partition(10.0, until=25.0, count=6, role="servers"))
    register_scenario(
        "chaos/partition/flapping",
        tags=("chaos", "faults", "partition", "hashchain"),
        description="a random 3-server minority is re-partitioned every 5 s "
                    "between t=5 s and t=35 s",
    )(lambda: Scenario.hashchain().rate(2_000)
      .partition(5.0, until=35.0, count=3, role="servers", period=5.0))
    register_scenario(
        "chaos/partition/wan-region-split",
        tags=("chaos", "faults", "partition", "wan", "hashchain"),
        description="two-region WAN hashchain; the eu region (servers + "
                    "validators) is cut off from t=10 s to t=30 s",
    )(lambda: Scenario.hashchain().region("us", 5).region("eu", 5)
      .wan(inter_ms=40, jitter_ms=10).rate(2_000)
      .partition(10.0, until=30.0, region="eu"))
    register_scenario(
        "chaos/partition/during-commit",
        tags=("chaos", "faults", "partition", "hashchain"),
        description="short partition dropped exactly across the first "
                    "commit wave (t=12 s to 18 s, collector 500)",
    )(lambda: Scenario.hashchain().rate(2_000).collector(500)
      .partition(12.0, until=18.0, count=4, role="servers"))

    # crashes and recovery ----------------------------------------------------
    for algorithm in ("vanilla", "compresschain", "hashchain"):
        register_scenario(
            f"chaos/crash/one-{algorithm}",
            tags=("chaos", "faults", "crash", algorithm),
            description=(f"{algorithm}: one random server crashes at t=10 s "
                         "and recovers at t=30 s"),
        )(lambda a=algorithm: Scenario(a).rate(2_000)
          .crash(10.0, until=30.0, count=1))
    register_scenario(
        "chaos/crash/f-servers",
        tags=("chaos", "faults", "crash", "hashchain"),
        description="f=4 of 10 hashchain servers crash together for 25 s "
                    "(the Setchain fault budget, exactly)",
    )(lambda: Scenario.hashchain().rate(2_000).crash(10.0, until=35.0, count=4))
    register_scenario(
        "chaos/crash/beyond-f",
        tags=("chaos", "faults", "crash", "hashchain"),
        description="2 of 4 servers crash (beyond f=1): guarantees void "
                    "until recovery, then the cluster catches up",
    )(lambda: Scenario.hashchain().servers(4).rate(1_000)
      .crash(10.0, until=30.0, count=2))
    register_scenario(
        "chaos/crash/rolling-restart",
        tags=("chaos", "faults", "crash", "churn", "hashchain"),
        description="rolling restart: one random server down at a time, "
                    "rotating every 5 s from t=5 s to t=45 s",
    )(lambda: Scenario.hashchain().rate(2_000)
      .churn(5.0, until=45.0, period=5.0, count=1))
    register_scenario(
        "chaos/recovery/hashchain-batch-resync",
        tags=("chaos", "faults", "crash", "recovery", "hashchain"),
        description="one named hashchain server crashes mid-injection and "
                    "replays the missed ledger through Request_batch recovery",
    )(lambda: Scenario.hashchain().servers(4).rate(1_000).collector(50)
      .crash(8.0, "server-3", until=20.0))
    register_scenario(
        "chaos/recovery/compresschain-restart",
        tags=("chaos", "faults", "crash", "recovery", "compresschain"),
        description="one named compresschain server restarts; recovery "
                    "decompresses the missed blocks from the ledger",
    )(lambda: Scenario.compresschain().servers(4).rate(1_000).collector(50)
      .crash(8.0, "server-3", until=20.0))

    # validator churn (consensus-layer faults) --------------------------------
    register_scenario(
        "chaos/churn/validators-at-f",
        tags=("chaos", "faults", "churn", "validators", "hashchain"),
        description="3 of 10 CometBFT validators (the consensus f) rotate "
                    "out every 10 s between t=10 s and t=40 s",
    )(lambda: Scenario.hashchain().rate(2_000)
      .churn(10.0, until=40.0, period=10.0, count=3, role="validators"))
    register_scenario(
        "chaos/churn/validators-beyond-f",
        tags=("chaos", "faults", "churn", "validators", "hashchain"),
        description="4 of 10 validators down at once (beyond the consensus "
                    "f=3): block production stalls until they block-sync back",
    )(lambda: Scenario.hashchain().rate(2_000)
      .churn(10.0, until=30.0, period=10.0, count=4, role="validators"))

    # message-level faults ----------------------------------------------------
    register_scenario(
        "chaos/loss/flaky-1pct",
        tags=("chaos", "faults", "loss", "hashchain"),
        description="1% uniform message loss for the whole run",
    )(lambda: Scenario.hashchain().rate(2_000).loss(0.01))
    register_scenario(
        "chaos/loss/flaky-5pct",
        tags=("chaos", "faults", "loss", "hashchain"),
        description="5% uniform message loss for the whole run",
    )(lambda: Scenario.hashchain().rate(2_000).loss(0.05))
    register_scenario(
        "chaos/loss/wan-10pct",
        tags=("chaos", "faults", "loss", "wan", "hashchain"),
        description="two-region WAN with a 10% loss window from t=5 s to "
                    "t=40 s (degraded connection quality, not the happy path)",
    )(lambda: Scenario.hashchain().region("us", 5).region("eu", 5)
      .wan(inter_ms=40, jitter_ms=10).rate(2_000)
      .loss(0.10, 5.0, until=40.0))
    register_scenario(
        "chaos/dup/gossip-storm",
        tags=("chaos", "faults", "duplicate", "hashchain"),
        description="5% of messages delivered twice (at-least-once "
                    "transport); dedup layers must absorb it",
    )(lambda: Scenario.hashchain().rate(2_000).duplicates(0.05))
    register_scenario(
        "chaos/delay/spike-250ms",
        tags=("chaos", "faults", "delay", "hashchain"),
        description="+250 ms (±50 ms jitter) on every message from t=10 s "
                    "to t=30 s",
    )(lambda: Scenario.hashchain().rate(2_000)
      .delay_spike(250.0, 10.0, until=30.0, jitter_ms=50.0))
    register_scenario(
        "chaos/delay/vanilla-spike",
        tags=("chaos", "faults", "delay", "vanilla"),
        description="vanilla under a +150 ms latency spike from t=10 s to "
                    "t=30 s (per-element appends feel every millisecond)",
    )(lambda: Scenario.vanilla().rate(2_000)
      .delay_spike(150.0, 10.0, until=30.0, jitter_ms=30.0))

    # combined / smoke --------------------------------------------------------
    register_scenario(
        "chaos/combo/partition-then-crash",
        tags=("chaos", "faults", "partition", "crash", "hashchain"),
        description="a minority partition (t=8-16 s) followed by a server "
                    "crash (t=20-30 s) with 2% background loss",
    )(lambda: Scenario.hashchain().rate(2_000)
      .partition(8.0, until=16.0, count=3, role="servers")
      .crash(20.0, until=30.0, count=1).loss(0.02))
    register_scenario(
        "chaos/smoke",
        tags=("chaos", "faults", "ci"),
        description="small 4-server hashchain over the ideal ledger with a "
                    "crash+recover and a brief partition; ~seconds",
    )(lambda: Scenario.hashchain().servers(4).rate(200).collector(20)
      .inject_for(5).drain(60).backend("ideal")
      .crash(1.0, "server-3", until=3.0)
      .partition(2.0, until=4.0, count=1, role="servers"))


_register_chaos()


# -- byz: Byzantine nemeses as schedule events (repro.faults + core.byzantine) --
# Servers turn Byzantine and back mid-run under the deterministic injector,
# alone and mixed with crash/partition/loss nemeses.  Every schedule stays
# within the f-budget (Byzantine + crashed servers < quorum at every instant
# — enforced at build time), so Properties 1-8 keep holding at the
# never-faulty servers.


def _register_byz() -> None:
    # single-behaviour windows, one per behaviour/algorithm pairing ----------
    register_scenario(
        "byz/withhold/one-hashchain",
        tags=("byz", "byzantine", "faults", "hashchain"),
        description="one named hashchain server withholds Request_batch "
                    "replies from t=10 s to t=30 s, then serves its buffer",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(10.0, "server-9", behaviour="withhold", until=30.0))
    register_scenario(
        "byz/withhold/f-max",
        tags=("byz", "byzantine", "faults", "hashchain"),
        description="f=4 of 10 hashchain servers withhold together for 40 s "
                    "(the full Byzantine budget, exactly)",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(5.0, count=4, behaviour="withhold", until=45.0))
    register_scenario(
        "byz/wrong-hash/one-hashchain",
        tags=("byz", "byzantine", "faults", "hashchain"),
        description="one random hashchain server appends unservable bogus "
                    "hash-batches from t=10 s to t=40 s",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(10.0, count=1, behaviour="wrong-hash", until=40.0))
    register_scenario(
        "byz/silent/one-vanilla",
        tags=("byz", "byzantine", "faults", "vanilla"),
        description="one vanilla server silently drops its clients' "
                    "elements from t=10 s to t=30 s",
    )(lambda: Scenario.vanilla().rate(2_000)
      .become_byzantine(10.0, "server-9", behaviour="silent", until=30.0))
    register_scenario(
        "byz/silent/one-compresschain",
        tags=("byz", "byzantine", "faults", "compresschain"),
        description="one random compresschain server goes silent from "
                    "t=10 s to t=30 s",
    )(lambda: Scenario.compresschain().rate(2_000)
      .become_byzantine(10.0, count=1, behaviour="silent", until=30.0))
    register_scenario(
        "byz/equivocate/one-vanilla",
        tags=("byz", "byzantine", "faults", "vanilla"),
        description="one vanilla server signs epoch-proofs over garbage "
                    "hashes from t=10 s to t=35 s",
    )(lambda: Scenario.vanilla().rate(2_000)
      .become_byzantine(10.0, count=1, behaviour="equivocate", until=35.0))
    register_scenario(
        "byz/equivocate/one-hashchain",
        tags=("byz", "byzantine", "faults", "hashchain"),
        description="one hashchain server batches equivocating epoch-proofs "
                    "from t=10 s to t=35 s",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(10.0, count=1, behaviour="equivocate", until=35.0))
    register_scenario(
        "byz/invalid/flooder-vanilla",
        tags=("byz", "byzantine", "faults", "vanilla"),
        description="one vanilla server floods the ledger with invalid "
                    "elements alongside normal traffic (t=10 s to t=30 s)",
    )(lambda: Scenario.vanilla().rate(2_000)
      .become_byzantine(10.0, count=1, behaviour="invalid-element",
                        until=30.0))

    # crash + partition + Byzantine in one timeline --------------------------
    register_scenario(
        "byz/combo/crash-and-withhold",
        tags=("byz", "byzantine", "faults", "crash", "hashchain"),
        description="a crash window (t=10-25 s) overlapping a withholding "
                    "server (t=15-35 s): 2 of 10 faulty, within f=4",
    )(lambda: Scenario.hashchain().rate(2_000)
      .crash(10.0, until=25.0, count=1)
      .become_byzantine(15.0, "server-0", behaviour="withhold", until=35.0))
    register_scenario(
        "byz/combo/partition-and-silent",
        tags=("byz", "byzantine", "faults", "partition", "hashchain"),
        description="a silent server (t=5-40 s) while a random 3-server "
                    "minority is partitioned away (t=10-20 s)",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(5.0, count=1, behaviour="silent", until=40.0)
      .partition(10.0, until=20.0, count=3, role="servers"))
    register_scenario(
        "byz/combo/full-nemesis",
        tags=("byz", "byzantine", "faults", "crash", "partition", "hashchain"),
        description="withholding server (t=10-35 s) + minority partition "
                    "(t=8-16 s) + crash (t=20-30 s) + 2% background loss",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(10.0, "server-9", behaviour="withhold", until=35.0)
      .partition(8.0, until=16.0, count=3, role="servers")
      .crash(20.0, until=30.0, count=1)
      .loss(0.02))

    # turning back: BecomeCorrect and serial behaviours ----------------------
    register_scenario(
        "byz/flip/withhold-recover",
        tags=("byz", "byzantine", "faults", "recovery", "hashchain"),
        description="a 4-server hashchain cluster where server-3 withholds "
                    "from t=8 s and reverts at t=20 s, replaying its "
                    "buffered Request_batch replies",
    )(lambda: Scenario.hashchain().servers(4).rate(1_000).collector(50)
      .become_byzantine(8.0, "server-3", behaviour="withhold", until=20.0))
    register_scenario(
        "byz/flip/serial-behaviours",
        tags=("byz", "byzantine", "faults", "hashchain"),
        description="the same server withholds (t=5-15 s) and later "
                    "equivocates (t=20-30 s) — two behaviours, one run",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(5.0, "server-9", behaviour="withhold", until=15.0)
      .become_byzantine(20.0, "server-9", behaviour="equivocate", until=30.0))
    register_scenario(
        "byz/random/rotation",
        tags=("byz", "byzantine", "faults", "hashchain"),
        description="two random servers go silent (t=10-25 s), then two "
                    "random servers withhold (t=30-45 s)",
    )(lambda: Scenario.hashchain().rate(2_000)
      .become_byzantine(10.0, count=2, behaviour="silent", until=25.0)
      .become_byzantine(30.0, count=2, behaviour="withhold", until=45.0))

    # small, fast (CI / golden) ----------------------------------------------
    register_scenario(
        "byz/smoke",
        tags=("byz", "byzantine", "faults", "ci"),
        description="small 4-server hashchain over the ideal ledger: a "
                    "withhold window then a crash window; ~seconds",
    )(lambda: Scenario.hashchain().servers(4).rate(200).collector(20)
      .inject_for(5).drain(60).backend("ideal")
      .become_byzantine(1.0, "server-3", behaviour="withhold", until=2.5)
      .crash(3.0, "server-2", until=4.0))
    register_scenario(
        "byz/golden/vanilla-silent",
        tags=("byz", "byzantine", "faults", "vanilla", "ci"),
        description="small 4-server vanilla over the ideal ledger with a "
                    "silent window; ~seconds (golden artifact)",
    )(lambda: Scenario.vanilla().servers(4).rate(200)
      .inject_for(5).drain(40).backend("ideal")
      .become_byzantine(1.0, "server-3", behaviour="silent", until=3.0))
    register_scenario(
        "byz/golden/compresschain-equivocate",
        tags=("byz", "byzantine", "faults", "compresschain", "ci"),
        description="small 4-server compresschain over the ideal ledger "
                    "with an equivocation window; ~seconds (golden artifact)",
    )(lambda: Scenario.compresschain().servers(4).rate(200).collector(20)
      .inject_for(5).drain(40).backend("ideal")
      .become_byzantine(1.0, "server-3", behaviour="equivocate", until=3.0))


_register_byz()


# -- member: dynamic membership (runtime join/leave, repro.core.membership) ----
# Servers join under load (ledger replay + batch-store priming before they
# count toward quorums) and leave by draining (flush, hand off, retire) as
# schedule events under the same deterministic injector as the chaos/byz
# families.  Every scenario here is part of the ``membership-smoke`` byte-
# identity check (sweep --jobs 1 vs --jobs 4), so they all finish in seconds.


def _register_member() -> None:
    # joins under load --------------------------------------------------------
    for algorithm in ("hashchain", "compresschain"):
        register_scenario(
            f"member/join/{algorithm}-under-load",
            tags=("member", "membership", "faults", algorithm, "ci"),
            description=(f"{algorithm}: a 5th server joins at t=2 s while "
                         "injection is live, block-syncs the committed "
                         "chain, and enters the quorum once caught up"),
        )(lambda a=algorithm: Scenario(a).servers(4).rate(400).collector(20)
          .inject_for(6).drain(50).backend("ideal")
          .join(2.0))
    register_scenario(
        "member/join/vanilla-pair",
        tags=("member", "membership", "faults", "vanilla", "ci"),
        description="vanilla: two servers join back-to-back (t=2 s, t=3 s) "
                    "under load, growing the cluster from 4 to 6",
    )(lambda: Scenario.vanilla().servers(4).rate(300)
      .inject_for(6).drain(50).backend("ideal")
      .join(2.0).join(3.0))

    # draining leaves ---------------------------------------------------------
    register_scenario(
        "member/leave/drain-one",
        tags=("member", "membership", "faults", "hashchain", "ci"),
        description="hashchain: server-3 drains out at t=3 s — stops "
                    "accepting, flushes its collector, hands off its batch "
                    "store, and retires (distinct from a crash)",
    )(lambda: Scenario.hashchain().servers(5).rate(400).collector(20)
      .inject_for(6).drain(50).backend("ideal")
      .leave(3.0, "server-3"))
    register_scenario(
        "member/leave/immediate",
        tags=("member", "membership", "faults", "hashchain", "ci"),
        description="hashchain: server-3 leaves at t=3 s without draining "
                    "(operator-forced removal; in-flight work is abandoned)",
    )(lambda: Scenario.hashchain().servers(5).rate(400).collector(20)
      .inject_for(6).drain(50).backend("ideal")
      .leave(3.0, "server-3", drain=False))

    # elastic reshaping -------------------------------------------------------
    register_scenario(
        "member/elastic/grow-then-shrink",
        tags=("member", "membership", "faults", "hashchain", "ci"),
        description="hashchain: grow 4 -> 6 (joins at t=1.5 s and t=2.5 s), "
                    "then drain one original server at t=4 s",
    )(lambda: Scenario.hashchain().servers(4).rate(400).collector(20)
      .inject_for(6).drain(50).backend("ideal")
      .join(1.5).join(2.5).leave(4.0, "server-1"))
    register_scenario(
        "member/replace/server",
        tags=("member", "membership", "faults", "compresschain", "ci"),
        description="compresschain: a replacement joins at t=2 s, then the "
                    "server it replaces drains out at t=4 s (rolling swap)",
    )(lambda: Scenario.compresschain().servers(4).rate(300).collector(20)
      .inject_for(6).drain(50).backend("ideal")
      .join(2.0).leave(4.0, "server-0"))
    register_scenario(
        "member/replace/validator",
        tags=("member", "membership", "faults", "validators", "hashchain"),
        description="CometBFT-backed: the joining server brings a co-located "
                    "validator (set change activates two blocks later); the "
                    "drained server retires its validator the same way",
    )(lambda: Scenario.hashchain().servers(4).rate(200).collector(20)
      .inject_for(5).drain(45)
      .join(1.5).leave(3.5, "server-2"))

    # membership mixed with nemeses -------------------------------------------
    register_scenario(
        "member/combo/grow-then-partition",
        tags=("member", "membership", "faults", "partition", "hashchain", "ci"),
        description="hashchain: a server joins at t=1.5 s, then a random "
                    "2-server minority of the grown cluster is partitioned "
                    "away from t=3 s to t=4.5 s",
    )(lambda: Scenario.hashchain().servers(4).rate(400).collector(20)
      .inject_for(6).drain(50).backend("ideal")
      .join(1.5).partition(3.0, until=4.5, count=2, role="servers"))
    register_scenario(
        "member/budget/join-before-crash",
        tags=("member", "membership", "faults", "crash", "byzantine",
              "hashchain", "ci"),
        description="legal only because the join lands first: at n=4 a "
                    "Byzantine window plus a crash would bust f=1, but the "
                    "t=1 s join makes n=5 (f=2) before either starts",
    )(lambda: Scenario.hashchain().servers(4).rate(300).collector(20)
      .inject_for(6).drain(50).backend("ideal")
      .join(1.0)
      .become_byzantine(2.0, "server-1", behaviour="withhold", until=4.0)
      .crash(2.5, "server-2", until=3.5))
    register_scenario(
        "member/byz/join-covers-byzantine",
        tags=("member", "membership", "faults", "byzantine", "hashchain",
              "ci"),
        description="a joined server restores quorum headroom while an "
                    "original server equivocates (t=2.5-4.5 s)",
    )(lambda: Scenario.hashchain().servers(4).rate(300).collector(20)
      .inject_for(6).drain(50).backend("ideal")
      .join(1.0)
      .become_byzantine(2.5, "server-3", behaviour="equivocate", until=4.5))

    # service-shaped and smoke ------------------------------------------------
    register_scenario(
        "member/service/elastic",
        tags=("member", "membership", "service", "faults", "hashchain"),
        description="elastic service drill: start at n=4, join two servers "
                    "under load (t=2 s, t=4 s), drain one original at "
                    "t=8 s; also runs under `repro serve`",
    )(lambda: Scenario.hashchain().servers(4).rate(300).collector(25)
      .inject_for(10).drain(80).backend("ideal")
      .join(2.0).join(4.0).leave(8.0, "server-2"))
    register_scenario(
        "member/smoke",
        tags=("member", "membership", "faults", "ci"),
        description="small 4-server hashchain over the ideal ledger: one "
                    "join then one draining leave; ~seconds",
    )(lambda: Scenario.hashchain().servers(4).rate(200).collector(20)
      .inject_for(5).drain(40).backend("ideal")
      .join(1.0).leave(3.0, "server-1"))


_register_member()


# -- shard: hash-partitioned scale-out (repro.shard) ---------------------------
# N isolated Setchain instances (one algorithm group per shard) over one
# shared ledger, with the deterministic router spreading element ids across
# them.  The scale/ scenarios raise the per-element validation cost so a
# single instance saturates around ~1300 el/s committed, then offer
# 3500 el/s: one shard collapses under the backlog, two commit a few times
# more, four sustain the full offered rate, and eight are offered-bound —
# the trajectory pinned in BENCH_SHARD_PR10.json.


def _register_shard() -> None:
    for count in (1, 2, 4, 8):
        register_scenario(
            f"shard/scale/s{count}",
            tags=("shard", "scale", "hashchain", "bench-shard"),
            description=(f"{count}-shard hashchain (3 servers each, f=1) at "
                         "3500 el/s, past one instance's ~1300 el/s ceiling"),
        )(lambda k=count: Scenario.hashchain().servers(3).byzantine(f=1)
          .shards(k).rate(3_500).collector(50)
          .setchain(element_validation_time=2e-3).block_rate(2.0)
          .inject_for(8).drain(10).backend("ideal"))
    register_scenario(
        "shard/elastic/add-shard-under-load",
        tags=("shard", "elastic", "membership", "faults", "hashchain", "ci"),
        description="2 shards of 3 under load; three joins (t=1.5/2/2.5 s) "
                    "open a third shard, which starts taking traffic once "
                    "a quorum of its joiners has caught up",
    )(lambda: Scenario.hashchain().servers(3).byzantine(f=1).shards(2)
      .rate(600).collector(20).inject_for(6).drain(40).backend("ideal")
      .join(1.5).join(2.0).join(2.5))
    register_scenario(
        "shard/elastic/retire-shard",
        tags=("shard", "elastic", "membership", "faults", "hashchain", "ci"),
        description="3 shards of 3; shard 0 drains out whole at t=3 s "
                    "(simultaneous leaves) — ingress re-hashes over the "
                    "surviving shards while in-flight elements finish",
    )(lambda: Scenario.hashchain().servers(3).byzantine(f=1).shards(3)
      .rate(600).collector(20).inject_for(6).drain(40).backend("ideal")
      .leave(3.0, "server-0", "server-1", "server-2"))
    register_scenario(
        "shard/smoke",
        tags=("shard", "ci"),
        description="small 2-shard hashchain (2 servers each) over the "
                    "ideal ledger; ~seconds",
    )(lambda: Scenario.hashchain().servers(2).shards(2).rate(300)
      .collector(20).inject_for(5).drain(30).backend("ideal"))


_register_shard()


# -- small, fast scenarios ----------------------------------------------------

register_scenario(
    "quickstart", tags=("demo",),
    description="4-server hashchain, 200 el/s for 10 s — the examples/ scenario",
)(lambda: Scenario.hashchain().servers(4).rate(200).collector(25)
  .inject_for(10).drain(60))

register_scenario(
    "smoke", tags=("demo", "ci"),
    description="Minimal 4-server run over the ideal ledger; finishes in ~1 s",
)(lambda: Scenario.hashchain().servers(4).rate(100).collector(10)
  .inject_for(5).drain(30).backend("ideal"))


# -- service/ family ----------------------------------------------------------
# Long-running-service shapes (rolling restarts, sustained overload, soak
# horizons); defined next to the service runtime they are meant to drive.

from ..service.scenarios import register_service_family  # noqa: E402

register_service_family()
