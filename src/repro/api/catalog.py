"""The built-in scenario catalog.

Importing this module — done lazily by the registry on its first access, see
``registry._ensure_catalog`` — populates the registry with:

* ``base`` — the paper's base evaluation point;
* ``table1/...`` — the full Table 1 parameter grid for every algorithm;
* ``figure1/...``, ``figure2/...``, ``figure4/...`` — each figure's scenario
  set from the evaluation section;
* ``stress/...`` — saturation scenarios past the analytical ceilings;
* ``byzantine/...`` — runs with an explicit Byzantine tolerance ``f``;
* ``burst/...`` — short high-rate injection spikes with long drains;
* ``bench/...`` — the pinned ``bench-smoke`` set measured by :mod:`repro.bench`;
* ``quickstart`` / ``smoke`` — small scenarios that finish in seconds.

The Table 1 and figure entries capture configs built once here, at catalog
import, because both are derived from the grid enumerations the experiment
harness itself uses (``config.table1_grid``, ``experiments.scenarios``) —
building all ~200 frozen configs costs a few milliseconds, paid once.
"""

from __future__ import annotations

from ..config import table1_grid
from ..experiments.scenarios import (
    figure1_scenarios,
    figure2_left_scenarios,
    figure4_scenarios,
)
from .builder import Scenario
from .registry import register_scenario

# -- base point ---------------------------------------------------------------

register_scenario(
    "base", tags=("paper", "base"),
    description="Paper base point: hashchain, 10 servers, 10k el/s, no delay",
)(lambda: Scenario.hashchain())


# -- Table 1 grid -------------------------------------------------------------
# Derived from config.table1_grid() — the same enumeration the sweep harness
# uses — so the registry names can never drift from the grid definition.

def _register_table1_grid() -> None:
    for config in table1_grid():
        algorithm = config.algorithm
        rate = config.workload.sending_rate
        servers = config.setchain.n_servers
        delay = config.ledger.network_delay * 1000.0
        collector = config.setchain.collector_limit
        name = f"table1/{algorithm}/r{rate:g}-n{servers}-d{delay:g}"
        description = (f"Table 1: {algorithm}, {rate:g} el/s, "
                       f"{servers} servers, {delay:g} ms delay")
        if algorithm != "vanilla":
            name += f"-c{collector}"
            description += f", collector {collector}"
        register_scenario(
            name, tags=("paper", "table1", algorithm),
            description=description,
        )(lambda c=config: c)


_register_table1_grid()


# -- figure scenario sets -----------------------------------------------------
# Derived from the experiment harness's own grids (experiments/scenarios.py)
# so the CLI and the figure regenerators can never drift apart.

def _register_figures() -> None:
    for panel, configs in figure1_scenarios().items():
        for config in configs:
            register_scenario(
                f"figure1/{panel}/{config.algorithm}",
                tags=("paper", "figure1", config.algorithm),
                description=f"Fig. 1 {panel}: {config.label}",
            )(lambda c=config: c)
    for config in figure2_left_scenarios():
        register_scenario(
            f"figure2/{config.algorithm}",
            tags=("paper", "figure2", config.algorithm),
            description=f"Fig. 2 left: {config.label}",
        )(lambda c=config: c)
    for config in figure4_scenarios():
        register_scenario(
            f"figure4/{config.algorithm}",
            tags=("paper", "figure4", config.algorithm),
            description=f"Fig. 4 latency CDF: {config.label}",
        )(lambda c=config: c)


_register_figures()


# -- stress -------------------------------------------------------------------

register_scenario(
    "stress/hashchain-2x-ceiling", tags=("stress", "hashchain"),
    description="Hashchain at 40k el/s, twice the hash-reversal ceiling",
)(lambda: Scenario.hashchain().rate(40_000).collector(500))

register_scenario(
    "stress/vanilla-overload", tags=("stress", "vanilla"),
    description="Vanilla at 20k el/s, far past its block-bandwidth bound",
)(lambda: Scenario.vanilla().rate(20_000))

register_scenario(
    "stress/tiny-blocks", tags=("stress", "hashchain"),
    description="Hashchain with 64 KiB blocks: ledger bandwidth as bottleneck",
)(lambda: Scenario.hashchain().rate(10_000).block_size(64 * 1024))


# -- byzantine tolerance ------------------------------------------------------

register_scenario(
    "byzantine/f1-n4", tags=("byzantine", "hashchain"),
    description="4 hashchain servers tolerating f=1 (quorum 2)",
)(lambda: Scenario.hashchain().servers(4).byzantine(f=1).rate(1_000))

register_scenario(
    "byzantine/f4-n10", tags=("byzantine", "hashchain"),
    description="10 hashchain servers at the maximum f=4 (quorum 5)",
)(lambda: Scenario.hashchain().servers(10).byzantine(f=4))

register_scenario(
    "byzantine/f0-trusted", tags=("byzantine", "compresschain"),
    description="Fully trusted 7-server compresschain cluster (f=0, quorum 1)",
)(lambda: Scenario.compresschain().servers(7).byzantine(f=0))


# -- burst workloads ----------------------------------------------------------

register_scenario(
    "burst/spike-5s", tags=("burst", "hashchain"),
    description="5-second 50k el/s spike into hashchain, then a long drain",
)(lambda: Scenario.hashchain().rate(50_000).collector(500)
  .inject_for(5).drain(145))

register_scenario(
    "burst/spike-10s-compresschain", tags=("burst", "compresschain"),
    description="10-second 20k el/s spike into compresschain, collector 500",
)(lambda: Scenario.compresschain().rate(20_000).collector(500)
  .inject_for(10).drain(140))


# -- pinned benchmark scenarios (repro.bench) ---------------------------------
# The ``bench-smoke`` set exercises every hot layer of the simulator: the
# event loop (heavy hashchain run), the batching/hashing path (compresschain),
# the per-element ledger path (vanilla), and the real-EdDSA code path
# (ed25519).  These definitions are pinned — changing them invalidates the
# perf trajectory recorded in BENCH_*.json.

register_scenario(
    "bench/hashchain-base", tags=("bench", "bench-smoke"),
    description="Bench: 7-server hashchain, 400 el/s for 15 s",
)(lambda: Scenario.hashchain().servers(7).rate(400).collector(50)
  .inject_for(15).drain(60))

register_scenario(
    "bench/hashchain-heavy", tags=("bench", "bench-smoke"),
    description="Bench: 10-server hashchain, 1000 el/s for 20 s (event-loop heavy)",
)(lambda: Scenario.hashchain().servers(10).rate(1000).collector(100)
  .inject_for(20).drain(80))

register_scenario(
    "bench/compresschain", tags=("bench", "bench-smoke"),
    description="Bench: 4-server compresschain, 800 el/s for 20 s",
)(lambda: Scenario.compresschain().servers(4).rate(800).collector(50)
  .inject_for(20).drain(60))

register_scenario(
    "bench/vanilla", tags=("bench", "bench-smoke"),
    description="Bench: 4-server vanilla, 200 el/s for 20 s",
)(lambda: Scenario.vanilla().servers(4).rate(200).inject_for(20).drain(60))

register_scenario(
    "bench/hashchain-ed25519", tags=("bench", "bench-smoke"),
    description="Bench: 4-server hashchain over real ed25519 signatures",
)(lambda: Scenario.hashchain().servers(4).rate(100).collector(20)
  .inject_for(5).drain(40).signature("ed25519"))


# -- small, fast scenarios ----------------------------------------------------

register_scenario(
    "quickstart", tags=("demo",),
    description="4-server hashchain, 200 el/s for 10 s — the examples/ scenario",
)(lambda: Scenario.hashchain().servers(4).rate(200).collector(25)
  .inject_for(10).drain(60))

register_scenario(
    "smoke", tags=("demo", "ci"),
    description="Minimal 4-server run over the ideal ledger; finishes in ~1 s",
)(lambda: Scenario.hashchain().servers(4).rate(100).collector(10)
  .inject_for(5).drain(30).backend("ideal"))
