"""Ledger transactions and blocks.

Terminology follows the paper: a *transaction* is what the block-based ledger
orders (it may carry one Setchain element, a compressed batch, a hash-batch,
or an epoch-proof); an *element* is a Setchain-level item.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import LedgerError

_tx_counter = itertools.count()


@dataclass(frozen=True, slots=True)
class Transaction:
    """A ledger transaction.

    Attributes
    ----------
    payload:
        The Setchain-level object carried by the transaction.
    size_bytes:
        Modelled wire size used for mempool byte caps and block packing.
    origin:
        Name of the process that appended the transaction.
    tx_id:
        Globally unique identifier (assigned at creation).
    created_at:
        Simulated time at which the transaction was created (for latency
        accounting).  ``None`` when unknown.
    """

    payload: Any
    size_bytes: int
    origin: str
    tx_id: int = field(default_factory=lambda: next(_tx_counter))
    created_at: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise LedgerError("transaction size cannot be negative")


def new_transaction(payload: Any, size_bytes: int, origin: str,
                    created_at: float | None = None) -> Transaction:
    """Convenience constructor mirroring the paper's ``L.append`` argument."""
    return Transaction(payload=payload, size_bytes=size_bytes, origin=origin,
                       created_at=created_at)


@dataclass(frozen=True, slots=True)
class Block:
    """A finalized ledger block: an ordered sequence of transactions.

    ``B[i]`` in the paper is 1-indexed; here :meth:`__getitem__` is 0-indexed
    like normal Python, and iteration yields transactions in order.
    """

    height: int
    transactions: tuple[Transaction, ...]
    proposer: str
    timestamp: float

    def __post_init__(self) -> None:
        if self.height < 1:
            raise LedgerError("block heights start at 1")

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    @property
    def size_bytes(self) -> int:
        """Total modelled size of the block body."""
        return sum(tx.size_bytes for tx in self.transactions)
