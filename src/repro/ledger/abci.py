"""Application interface between the ledger and the Setchain layer.

CometBFT separates the consensus engine from the replicated application via
ABCI; the Setchain algorithms live in the application.  We model the two
pieces the algorithms actually use:

* ``CheckTx`` — the mempool asks the application whether a transaction is
  valid before admitting and gossiping it.
* ``FinalizeBlock`` — the engine hands the application each finalized block,
  which is exactly the paper's ``new_block(B)`` notification.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .types import Block, Transaction


class Application(ABC):
    """The ABCI-facing side of a Setchain server."""

    def check_tx(self, tx: Transaction) -> bool:
        """Mempool admission check.  Default: accept everything.

        The paper's servers validate elements again when processing blocks
        (Byzantine servers may have appended garbage), so mempool-level
        rejection is an optimisation, not a correctness requirement.
        """
        return True

    @abstractmethod
    def finalize_block(self, block: Block) -> None:
        """Process a finalized block — the ``new_block(B)`` notification."""


class LedgerInterface(ABC):
    """What a Setchain server sees of its local ledger node.

    Matches the paper's two endpoints: ``append(tx)`` and block notifications
    (delivered by calling :meth:`Application.finalize_block` on the subscribed
    application).
    """

    @abstractmethod
    def append(self, tx: Transaction) -> None:
        """Submit a transaction for eventual inclusion in a block."""

    @abstractmethod
    def subscribe(self, app: Application) -> None:
        """Register the application that receives ``finalize_block`` callbacks."""
