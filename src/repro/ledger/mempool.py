"""Mempool: unconfirmed transactions held between ``append`` and block inclusion.

Mirrors the CometBFT mempool behaviour that matters to the evaluation: FIFO
order, a transaction-count cap and a byte cap (the paper raises the defaults to
10,000,000 txs / 2 GB so the mempool is not the bottleneck), and reaping up to
a byte budget when the proposer builds a block.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import MempoolFullError
from .types import Transaction


class Mempool:
    """FIFO set of pending transactions with count and byte caps."""

    def __init__(self, max_txs: int, max_bytes: int) -> None:
        self.max_txs = max_txs
        self.max_bytes = max_bytes
        self._txs: "OrderedDict[int, Transaction]" = OrderedDict()
        self._bytes = 0
        #: Transactions ever rejected because a cap was hit.
        self.rejected = 0
        #: Simulated time each tx_id first entered this mempool (latency stage 1-3).
        self.arrival_times: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, tx_id: int) -> bool:
        return tx_id in self._txs

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def add(self, tx: Transaction, now: float) -> bool:
        """Admit ``tx`` if caps allow and it is not already present.

        Returns ``True`` if the transaction was newly admitted.  Raises
        :class:`MempoolFullError` when a cap is exceeded, matching the
        behaviour the paper tuned away by enlarging the caps.
        """
        if tx.tx_id in self._txs:
            return False
        if len(self._txs) + 1 > self.max_txs or self._bytes + tx.size_bytes > self.max_bytes:
            self.rejected += 1
            raise MempoolFullError(
                f"mempool full ({len(self._txs)} txs / {self._bytes} bytes)"
            )
        self._txs[tx.tx_id] = tx
        self._bytes += tx.size_bytes
        self.arrival_times.setdefault(tx.tx_id, now)
        return True

    def reap(self, max_bytes: int) -> list[Transaction]:
        """Return (without removing) the FIFO prefix fitting in ``max_bytes``.

        A transaction larger than ``max_bytes`` at the head of the queue is
        returned alone rather than wedging the mempool forever — the same
        behaviour as the ideal ledger (a block is never split below one
        transaction).
        """
        selected: list[Transaction] = []
        budget = max_bytes
        for tx in self._txs.values():
            if tx.size_bytes > budget:
                if not selected and tx.size_bytes > max_bytes:
                    selected.append(tx)
                break
            selected.append(tx)
            budget -= tx.size_bytes
        return selected

    def remove_committed(self, txs: list[Transaction]) -> None:
        """Drop transactions that were included in a finalized block."""
        for tx in txs:
            existing = self._txs.pop(tx.tx_id, None)
            if existing is not None:
                self._bytes -= existing.size_bytes

    def pending(self) -> list[Transaction]:
        """All pending transactions in FIFO order (copy)."""
        return list(self._txs.values())
