"""Ideal ledger: a centralized sequencer satisfying Properties 9-11.

The ideal ledger removes consensus messaging entirely: a single sequencer
collects appended transactions and, at the configured block interval, cuts a
block (bounded by the block-size cap) and notifies every subscribed
application in the same order.  It is used to unit-test Setchain logic in
isolation and to run fast analytical-scale sweeps where consensus overhead is
not the quantity being measured.
"""

from __future__ import annotations

from collections import deque

from ..config import LedgerConfig
from ..errors import LedgerError
from ..sim.process import PeriodicTask
from ..sim.scheduler import Simulator
from .abci import Application, LedgerInterface
from .types import Block, Transaction


class IdealLedger:
    """The shared sequencer.  Each server talks to it through a :class:`IdealLedgerHandle`."""

    def __init__(self, sim: Simulator, config: LedgerConfig | None = None) -> None:
        self.sim = sim
        self.config = config if config is not None else LedgerConfig()
        # A deque: block production pops from the head, and popping a list
        # head is O(pending) — quadratic over a million-element backlog.
        self._pending: deque[Transaction] = deque()
        self._pending_ids: set[int] = set()
        self._apps: list[Application] = []
        self._height = 0
        self.blocks: list[Block] = []
        self._producer = PeriodicTask(sim, self.config.block_interval, self._produce_block)
        #: tx_id -> simulated time the transaction reached the sequencer.
        self.arrival_times: dict[int, float] = {}
        #: tx_id -> height of the block that included it.
        self.inclusion_height: dict[int, int] = {}

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin producing blocks at the configured rate."""
        self._producer.start()

    def stop(self) -> None:
        self._producer.stop()

    # -- ledger API ------------------------------------------------------------

    def handle_for(self, owner: str) -> "IdealLedgerHandle":
        """A per-server handle implementing :class:`LedgerInterface`."""
        return IdealLedgerHandle(self, owner)

    def submit(self, tx: Transaction) -> None:
        """Accept a transaction into the shared pending queue (exactly once)."""
        if tx.tx_id in self._pending_ids or tx.tx_id in self.inclusion_height:
            return
        self._pending.append(tx)
        self._pending_ids.add(tx.tx_id)
        self.arrival_times.setdefault(tx.tx_id, self.sim.now)

    def subscribe(self, app: Application) -> None:
        if app in self._apps:
            raise LedgerError("application already subscribed")
        self._apps.append(app)

    # -- block production -------------------------------------------------------

    @property
    def height(self) -> int:
        return self._height

    def pending_count(self) -> int:
        return len(self._pending)

    def _produce_block(self) -> None:
        if not self._pending:
            return
        budget = self.config.block_size_bytes
        included: list[Transaction] = []
        while self._pending:
            tx = self._pending[0]
            if tx.size_bytes > budget and included:
                break
            if tx.size_bytes > self.config.block_size_bytes:
                # A single transaction larger than a block still goes alone,
                # mirroring CometBFT's behaviour of never splitting a tx.
                if included:
                    break
            included.append(self._pending.popleft())
            self._pending_ids.discard(tx.tx_id)
            budget -= tx.size_bytes
            if budget <= 0:
                break
        self._height += 1
        block = Block(height=self._height, transactions=tuple(included),
                      proposer="sequencer", timestamp=self.sim.now)
        self.blocks.append(block)
        for tx in included:
            self.inclusion_height[tx.tx_id] = block.height
        # Durability point: the block must be persisted before any application
        # observes it, so a crash can only lose blocks no app has acted on.
        self._persist_block(block)
        for app in list(self._apps):
            app.finalize_block(block)

    def _persist_block(self, block: Block) -> None:
        """Durability hook between block cut and app notification.

        The in-memory sequencer keeps nothing; durable subclasses (the
        ``sqlite`` service backend) override this to write the block inside a
        transaction so the committed prefix survives a process crash.
        """


class IdealLedgerHandle(LedgerInterface):
    """Per-server view of the :class:`IdealLedger`."""

    def __init__(self, ledger: IdealLedger, owner: str) -> None:
        self._ledger = ledger
        self.owner = owner

    def append(self, tx: Transaction) -> None:
        self._ledger.submit(tx)

    def subscribe(self, app: Application) -> None:
        self._ledger.subscribe(app)
