"""Consensus messages and per-height vote bookkeeping."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum

from ...errors import ConsensusError
from ..types import Transaction


def block_id_for(height: int, transactions: tuple[Transaction, ...], proposer: str) -> str:
    """Deterministic identifier of a proposed block (hash of header + tx ids)."""
    hasher = hashlib.sha256()
    hasher.update(f"{height}:{proposer}:".encode())
    for tx in transactions:
        hasher.update(tx.tx_id.to_bytes(8, "big"))
    return hasher.hexdigest()


@dataclass(frozen=True, slots=True)
class Proposal:
    """A block proposal for ``(height, round)`` carrying the full transaction list."""

    height: int
    round: int
    proposer: str
    transactions: tuple[Transaction, ...]
    block_id: str
    #: Wire size, summed once at construction (broadcast reads it per message).
    size_bytes: int = field(init=False, default=0, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "size_bytes",
                           sum(tx.size_bytes for tx in self.transactions))


class VoteType(str, Enum):
    PREVOTE = "prevote"
    PRECOMMIT = "precommit"


#: Block id used in nil votes (proposal not received before timeout).
NIL_BLOCK = "<nil>"


@dataclass(frozen=True, slots=True)
class Vote:
    """A validator's prevote or precommit for a block id (or nil)."""

    height: int
    round: int
    voter: str
    vote_type: VoteType
    block_id: str

    @property
    def is_nil(self) -> bool:
        return self.block_id == NIL_BLOCK


@dataclass
class ConsensusState:
    """One node's bookkeeping for the height currently being decided."""

    height: int
    round: int = 0
    proposal: Proposal | None = None
    prevoted: bool = False
    precommitted: bool = False
    committed: bool = False
    #: (round, vote_type, block_id) -> set of voter names.
    votes: dict[tuple[int, VoteType, str], set[str]] = field(default_factory=dict)
    #: Validators entitled to vote at this height (``None`` = anyone).  With
    #: dynamic membership a vote from a validator whose epoch has not yet
    #: activated — or has already ended — must not count toward quorums.
    members: frozenset[str] | None = None

    def record_vote(self, vote: Vote) -> int:
        """Add a vote; returns the updated count for its (round, type, block).

        Votes from non-members of this height's validator epoch are ignored
        (recorded count unchanged).
        """
        if vote.height != self.height:
            raise ConsensusError(
                f"vote for height {vote.height} recorded against state at height {self.height}"
            )
        key = (vote.round, vote.vote_type, vote.block_id)
        if self.members is not None and vote.voter not in self.members:
            return len(self.votes.get(key, ()))
        voters = self.votes.setdefault(key, set())
        voters.add(vote.voter)
        return len(voters)

    def count(self, round_: int, vote_type: VoteType, block_id: str) -> int:
        return len(self.votes.get((round_, vote_type, block_id), ()))

    def round_voters(self, round_: int, vote_type: VoteType) -> int:
        """Distinct voters of ``vote_type`` in ``round_`` across all block ids.

        Used by the round-timeout liveness rules: a full set of votes split
        between a block and nil reaches no per-block quorum but still proves
        the round cannot progress.
        """
        voters: set[str] = set()
        for (vote_round, vote_kind, _block_id), names in self.votes.items():
            if vote_round == round_ and vote_kind == vote_type:
                voters.update(names)
        return len(voters)
