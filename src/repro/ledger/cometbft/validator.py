"""Validator set: membership, quorums, proposer rotation.

The set is *epoch-aware*: membership changes activate at a declared ledger
height (two blocks after the change commits, as in real Tendermint), so
proposer rotation and quorum counting are functions of the height being
decided, not of wall-clock time.  Static deployments keep a single epoch and
behave exactly as the original fixed set.
"""

from __future__ import annotations

from ...errors import ConsensusError


class ValidatorSet:
    """Equally-weighted validator membership as a step function of height.

    CometBFT tolerates ``f < n/3`` Byzantine validators; quorums are therefore
    ``2f + 1`` with ``f = (n - 1) // 3``.  Proposer selection rotates
    round-robin by ``height + round``, a simplification of CometBFT's
    weighted-priority rotation that preserves fairness for equal weights.
    """

    def __init__(self, names: list[str]) -> None:
        if not names:
            raise ConsensusError("validator set cannot be empty")
        if len(set(names)) != len(names):
            raise ConsensusError("validator names must be unique")
        #: ``(effective_height, members)`` in activation order; the first
        #: entry is the genesis set, effective from height 1 (and before).
        self._epochs: list[tuple[int, tuple[str, ...]]] = [(0, tuple(sorted(names)))]
        #: Bumped on every membership change; nodes use it to invalidate
        #: cached peer lists.
        self.version = 0

    # -- current (latest-epoch) view -------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """Members of the most recent epoch, sorted."""
        return self._epochs[-1][1]

    @property
    def size(self) -> int:
        return len(self.names)

    @property
    def max_faulty(self) -> int:
        """Largest f with f < n/3."""
        return (self.size - 1) // 3

    @property
    def quorum(self) -> int:
        """Votes needed to progress: 2f + 1."""
        return 2 * self.max_faulty + 1

    # -- height-keyed view ------------------------------------------------------

    def names_at(self, height: int) -> tuple[str, ...]:
        """The member set deciding blocks at ``height``."""
        for effective, members in reversed(self._epochs):
            if effective <= height:
                return members
        return self._epochs[0][1]

    def quorum_at(self, height: int) -> int:
        n = len(self.names_at(height))
        return 2 * ((n - 1) // 3) + 1

    def proposer(self, height: int, round_: int = 0) -> str:
        """Validator that proposes at ``(height, round)``."""
        if height < 1 or round_ < 0:
            raise ConsensusError(f"invalid (height, round) = ({height}, {round_})")
        names = self.names_at(height)
        return names[(height - 1 + round_) % len(names)]

    # -- membership changes -----------------------------------------------------

    def add_validator(self, name: str, effective_height: int) -> None:
        """Admit ``name`` to the set from ``effective_height`` on."""
        current = self._epochs[-1][1]
        if name in current:
            raise ConsensusError(f"validator {name!r} is already a member")
        effective_height = max(effective_height, self._epochs[-1][0])
        self._epochs.append((effective_height, tuple(sorted(current + (name,)))))
        self.version += 1

    def remove_validator(self, name: str, effective_height: int) -> None:
        """Retire ``name`` from the set from ``effective_height`` on."""
        current = self._epochs[-1][1]
        if name not in current:
            raise ConsensusError(f"validator {name!r} is not a member")
        members = tuple(v for v in current if v != name)
        if not members:
            raise ConsensusError("cannot remove the last validator")
        effective_height = max(effective_height, self._epochs[-1][0])
        self._epochs.append((effective_height, members))
        self.version += 1

    def epochs(self) -> list[tuple[int, tuple[str, ...]]]:
        """Every ``(effective_height, members)`` epoch, in activation order."""
        return list(self._epochs)

    def ever_members(self) -> tuple[str, ...]:
        """Every name that was a member in any epoch, sorted."""
        seen: set[str] = set()
        for _effective, members in self._epochs:
            seen.update(members)
        return tuple(sorted(seen))

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.names)
