"""Validator set: membership, quorums, proposer rotation."""

from __future__ import annotations

from ...errors import ConsensusError


class ValidatorSet:
    """The fixed, equally-weighted validator set of the simulated chain.

    CometBFT tolerates ``f < n/3`` Byzantine validators; quorums are therefore
    ``2f + 1`` with ``f = (n - 1) // 3``.  Proposer selection rotates
    round-robin by ``height + round``, a simplification of CometBFT's
    weighted-priority rotation that preserves fairness for equal weights.
    """

    def __init__(self, names: list[str]) -> None:
        if not names:
            raise ConsensusError("validator set cannot be empty")
        if len(set(names)) != len(names):
            raise ConsensusError("validator names must be unique")
        self.names = sorted(names)

    @property
    def size(self) -> int:
        return len(self.names)

    @property
    def max_faulty(self) -> int:
        """Largest f with f < n/3."""
        return (self.size - 1) // 3

    @property
    def quorum(self) -> int:
        """Votes needed to progress: 2f + 1."""
        return 2 * self.max_faulty + 1

    def proposer(self, height: int, round_: int = 0) -> str:
        """Validator that proposes at ``(height, round)``."""
        if height < 1 or round_ < 0:
            raise ConsensusError(f"invalid (height, round) = ({height}, {round_})")
        return self.names[(height - 1 + round_) % self.size]

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.names)
