"""CometBFT-style BFT replication engine (simulated).

This package stands in for CometBFT v0.38 (see DESIGN.md §2).  It reproduces
the pieces of the Tendermint protocol that determine the Setchain evaluation's
behaviour:

* a per-node mempool with flood gossip of transactions (``BroadcastTxAsync``),
* proposer rotation by height,
* propose → prevote → precommit rounds with 2f+1 quorums (f < n/3),
* block assembly bounded by the block-size cap,
* a block interval targeting the paper's ~0.8 blocks/s,
* ``FinalizeBlock`` delivery of committed blocks to the ABCI application in
  the same order on every node (Ledger Properties 9-11).
"""

from .consensus import ConsensusState, Proposal, Vote, VoteType, block_id_for
from .validator import ValidatorSet
from .engine import CometBFTNode, CometBFTNetwork

__all__ = [
    "ConsensusState",
    "Proposal",
    "Vote",
    "VoteType",
    "block_id_for",
    "ValidatorSet",
    "CometBFTNode",
    "CometBFTNetwork",
]
