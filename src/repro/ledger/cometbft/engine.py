"""The CometBFT-style node and network.

Each :class:`CometBFTNode` couples a mempool, the consensus state machine, and
an ABCI application (the Setchain server).  Nodes exchange four message types
over the simulated network:

* ``tx``        — mempool gossip (``BroadcastTxAsync`` flood, one hop),
* ``proposal``  — block proposal for a height/round,
* ``prevote`` / ``precommit`` — Tendermint votes,
* ``catchup_request`` / ``catchup_response`` — peer block-sync for nodes that
  fell behind (lossy links can swallow a proposal or commit-completing vote;
  real CometBFT recovers through continuous gossip and the blocksync
  reactor, both collapsed here into an explicit request/serve pair).

A block commits at a node when it holds the proposal and ``2f + 1`` precommits
for its block id; every correct node then delivers the block to its
application via ``FinalizeBlock`` in height order, giving the Setchain layer
Ledger Properties 9-11.
"""

from __future__ import annotations

from ...config import LedgerConfig
from ...errors import ConsensusError, MempoolFullError
from ...net.message import Message
from ...net.network import Network
from ...net.node import NetworkNode
from ...sim.process import Timer
from ...sim.scheduler import Simulator
from ..abci import Application, LedgerInterface
from ..mempool import Mempool
from ..types import Block, Transaction
from .consensus import (
    NIL_BLOCK,
    ConsensusState,
    Proposal,
    Vote,
    VoteType,
    block_id_for,
)
from .validator import ValidatorSet

#: Approximate wire size of a vote message (bytes).
_VOTE_SIZE = 100
#: If the proposer's mempool is empty, it re-checks after this fraction of the
#: block interval instead of emitting an empty block (create_empty_blocks=false).
_EMPTY_RETRY_FRACTION = 0.2
#: Round timeout as a multiple of the block interval before prevoting nil.
_ROUND_TIMEOUT_FACTOR = 4.0
#: Height gap at which a node assumes it missed commits and requests
#: block-sync from its peers.  A gap of one is normal pipelining (votes for
#: the next height arrive while this node's commit is still in flight); two
#: or more cannot happen without message loss or a crash, so the trigger is
#: unreachable in fault-free runs and their artifacts stay byte-identical.
_CATCHUP_HEIGHT_GAP = 2


class CometBFTNode(NetworkNode, LedgerInterface):
    """One validator: mempool + consensus + ABCI hookup."""

    def __init__(self, name: str, sim: Simulator, validators: ValidatorSet,
                 config: LedgerConfig) -> None:
        super().__init__(name, sim)
        if name not in validators:
            raise ConsensusError(f"{name!r} is not in the validator set")
        self.validators = validators
        self.config = config
        self.mempool = Mempool(config.mempool_max_txs, config.mempool_max_bytes)
        self.app: Application | None = None
        self.height = 1
        self.committed_blocks: list[Block] = []
        #: Buffered consensus messages for heights we have not reached yet.
        self._future: dict[int, list[Message]] = {}
        #: Proposals received for (height, round), kept across round changes.
        self._round_proposals: dict[tuple[int, int], Proposal] = {}
        self._round_timer = Timer(sim, self._on_round_timeout)
        self._propose_timer = Timer(sim, self._maybe_propose)
        self._last_commit_time = 0.0
        #: Fan-out set for consensus traffic (validators only), cached per
        #: validator-set version so membership changes refresh it lazily.
        self._peers_cache = tuple(peer for peer in validators.names
                                  if peer != name)
        self._peers_version = validators.version
        #: First height at which this validator is *no longer* in the set
        #: (``None`` = member for as long as it runs).  Set by
        #: :meth:`CometBFTNetwork.remove_validator`; past it the node follows
        #: the chain passively but neither proposes nor votes.
        self.inactive_from_height: int | None = None
        self.state = self._fresh_state(1)
        #: tx_id -> height at which this node committed the transaction.
        self.inclusion_height: dict[int, int] = {}
        #: Last time this node asked a peer for block-sync (rate limit), and
        #: the rotation cursor over peers (one request goes to one peer; a
        #: peer that cannot help is skipped on the next attempt).
        self._last_catchup_request = float("-inf")
        self._catchup_peer_index = 0
        self.on("tx", self._on_tx)
        self.on("proposal", self._on_proposal)
        self.on("prevote", self._on_vote)
        self.on("precommit", self._on_vote)
        self.on("catchup_request", self._on_catchup_request)
        self.on("catchup_response", self._on_catchup_response)

    # -- helpers ----------------------------------------------------------------

    @property
    def _peer_validators(self) -> tuple[str, ...]:
        if self._peers_version != self.validators.version:
            self._peers_version = self.validators.version
            self._peers_cache = tuple(peer for peer in self.validators.names
                                      if peer != self.name)
        return self._peers_cache

    def _fresh_state(self, height: int) -> ConsensusState:
        """Round state for ``height``, with a member filter once the set is dynamic.

        A static validator set keeps ``members=None`` (no filtering, exactly
        the original behaviour); after the first membership change every
        height's votes are counted against the epoch deciding that height.
        """
        members = None
        if self.validators.version:
            members = frozenset(self.validators.names_at(height))
        return ConsensusState(height=height, members=members)

    def _is_member(self) -> bool:
        """Whether this node is entitled to propose/vote at its current height."""
        members = self.state.members
        if members is not None:
            return self.name in members
        return (self.inactive_from_height is None
                or self.height < self.inactive_from_height)

    def _broadcast_validators(self, msg_type: str, payload: object,
                              size_bytes: int = 0) -> None:
        """Send to every other validator (not to non-validator nodes on the network)."""
        sent = self.network.multicast(self.name, msg_type, payload, size_bytes,
                                      recipients=self._peer_validators)
        self.messages_sent += sent
        self.bytes_sent += size_bytes * sent

    # -- LedgerInterface -------------------------------------------------------

    def append(self, tx: Transaction) -> None:
        """``BroadcastTxAsync``: validate, admit to the local mempool, gossip."""
        if self.crashed:
            return
        if self.app is not None and not self.app.check_tx(tx):
            return
        try:
            fresh = self.mempool.add(tx, self.sim.now)
        except MempoolFullError:
            return
        if fresh:
            self._broadcast_validators("tx", tx, size_bytes=tx.size_bytes)

    def subscribe(self, app: Application) -> None:
        if self.app is not None:
            raise ConsensusError(f"node {self.name!r} already has an application")
        self.app = app

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Arm the proposal schedule for the first height."""
        self._schedule_proposal()
        self._round_timer.start(self.config.block_interval * _ROUND_TIMEOUT_FACTOR)

    def _on_crash(self) -> None:
        """Crash-fault: stop participating entirely (no messages in or out).

        The base :class:`~repro.net.node.NetworkNode` crash state already
        silences traffic; the consensus timers are cancelled here.  The
        committed chain, the mempool contents, and the app subscription are
        durable and survive for :meth:`catch_up`.
        """
        self._round_timer.cancel()
        self._propose_timer.cancel()

    def _on_recover(self) -> None:
        """Rejoin consensus at the current height with a fresh round state.

        A bare :meth:`~repro.net.node.NetworkNode.recover` resumes at the
        pre-crash height; :meth:`CometBFTNetwork.recover_node` additionally
        block-syncs the missed chain from a live peer before resuming.
        """
        self._resume()

    def catch_up(self, blocks: "list[Block]") -> None:
        """Block-sync: adopt already-committed blocks from a peer's chain.

        Each block is committed locally exactly as :meth:`_try_commit` would
        have (chain append, inclusion heights, mempool eviction, FinalizeBlock
        to the application) and the node resumes consensus past them.
        """
        for block in blocks:
            if block.height < self.height:
                continue
            self.committed_blocks.append(block)
            for tx in block.transactions:
                self.inclusion_height[tx.tx_id] = block.height
            self.mempool.remove_committed(list(block.transactions))
            if self.app is not None:
                self.app.finalize_block(block)
            self.height = block.height + 1
        if blocks:
            self._resume()

    def _resume(self) -> None:
        """Restart consensus at ``self.height`` (fresh round, re-armed timers)."""
        self._last_commit_time = self.sim.now
        self.state = self._fresh_state(self.height)
        self._future = {height: messages
                        for height, messages in self._future.items()
                        if height >= self.height}
        self._round_timer.start(self.config.block_interval * _ROUND_TIMEOUT_FACTOR)
        self._schedule_proposal()
        for message in self._future.pop(self.height, []):
            NetworkNode.deliver(self, message)

    # -- mempool gossip ----------------------------------------------------------

    def _on_tx(self, message: Message) -> None:
        tx: Transaction = message.payload
        if tx.tx_id in self.inclusion_height:
            return
        try:
            self.mempool.add(tx, self.sim.now)
        except MempoolFullError:
            pass

    # -- proposing ----------------------------------------------------------------

    def _is_proposer(self, height: int, round_: int) -> bool:
        return self.validators.proposer(height, round_) == self.name

    def _schedule_proposal(self) -> None:
        """Arm the propose timer if this node proposes the current height/round."""
        if self.crashed or not self._is_proposer(self.height, self.state.round):
            return
        elapsed = self.sim.now - self._last_commit_time
        delay = max(0.0, self.config.block_interval - elapsed)
        self._propose_timer.start(delay)

    def _maybe_propose(self) -> None:
        if self.crashed or self.state.committed:
            return
        if not self._is_proposer(self.height, self.state.round):
            return
        if self.state.proposal is not None:
            return
        txs = self.mempool.reap(self.config.block_size_bytes)
        if not txs:
            # No transactions: retry shortly rather than emitting empty blocks.
            self._propose_timer.start(self.config.block_interval * _EMPTY_RETRY_FRACTION)
            return
        transactions = tuple(txs)
        proposal = Proposal(
            height=self.height,
            round=self.state.round,
            proposer=self.name,
            transactions=transactions,
            block_id=block_id_for(self.height, transactions, self.name),
        )
        self._broadcast_validators("proposal", proposal, size_bytes=proposal.size_bytes)
        self._handle_proposal(proposal)

    # -- consensus steps -----------------------------------------------------------

    def _on_proposal(self, message: Message) -> None:
        proposal: Proposal = message.payload
        if proposal.height > self.height:
            self._future.setdefault(proposal.height, []).append(message)
            if proposal.height - self.height >= _CATCHUP_HEIGHT_GAP:
                self._request_catch_up()
            return
        if proposal.height < self.height:
            return
        self._handle_proposal(proposal)

    def _handle_proposal(self, proposal: Proposal) -> None:
        if proposal.proposer != self.validators.proposer(proposal.height, proposal.round):
            return  # not the legitimate proposer for this round
        # Buffer by round: a proposal may arrive while we are still in an
        # earlier round (e.g. during a nil-round changeover) and must not be
        # lost when we advance.
        self._round_proposals[(proposal.height, proposal.round)] = proposal
        self._maybe_progress()

    def _cast_vote(self, vote_type: VoteType, block_id: str) -> None:
        if not self._is_member():
            # Not (yet / any more) in this height's validator epoch: follow
            # the chain passively — peers would discard the vote anyway.
            return
        vote = Vote(height=self.height, round=self.state.round, voter=self.name,
                    vote_type=vote_type, block_id=block_id)
        self._broadcast_validators(vote_type.value, vote, size_bytes=_VOTE_SIZE)
        self.state.record_vote(vote)

    def _on_vote(self, message: Message) -> None:
        vote: Vote = message.payload
        if vote.height > self.height:
            self._future.setdefault(vote.height, []).append(message)
            if vote.height - self.height >= _CATCHUP_HEIGHT_GAP:
                self._request_catch_up()
            return
        if vote.height < self.height:
            return
        self.state.record_vote(vote)
        self._maybe_progress()

    def _maybe_progress(self) -> None:
        """Drive the prevote → precommit → commit pipeline from current knowledge.

        Called whenever new information arrives (proposal, vote, round change).
        This state-driven formulation tolerates any message ordering: late
        proposals, votes recorded for a round we have not entered yet, and
        nil-round changeovers all converge.
        """
        if self.crashed or self.state.committed:
            return
        state = self.state
        quorum = self.validators.quorum_at(self.height)
        proposal = self._round_proposals.get((self.height, state.round))
        if proposal is not None and state.proposal is None:
            state.proposal = proposal
        if state.proposal is not None:
            block_id = state.proposal.block_id
            if not state.prevoted:
                state.prevoted = True
                self._cast_vote(VoteType.PREVOTE, block_id)
            if (not state.precommitted
                    and state.count(state.round, VoteType.PREVOTE, block_id) >= quorum):
                state.precommitted = True
                self._cast_vote(VoteType.PRECOMMIT, block_id)
            if (not state.committed
                    and state.count(state.round, VoteType.PRECOMMIT, block_id) >= quorum):
                self._try_commit(block_id)
                return
        # Nil-round handling: a quorum of nil prevotes means no block can reach
        # a prevote quorum in this round (each validator votes once), so we can
        # precommit nil even if a late proposal has arrived; a quorum of nil
        # precommits then moves everyone to the next round.
        if (not state.precommitted
                and state.count(state.round, VoteType.PREVOTE, NIL_BLOCK) >= quorum):
            state.precommitted = True
            self._cast_vote(VoteType.PRECOMMIT, NIL_BLOCK)
        if (not state.committed
                and state.count(state.round, VoteType.PRECOMMIT, NIL_BLOCK) >= quorum):
            self._advance_round()

    def _try_commit(self, block_id: str) -> None:
        proposal = self.state.proposal
        if proposal is None or proposal.block_id != block_id:
            # Quorum formed before the proposal arrived here; wait for it.
            return
        self.state.committed = True
        block = Block(height=self.height, transactions=proposal.transactions,
                      proposer=proposal.proposer, timestamp=self.sim.now)
        self.committed_blocks.append(block)
        for tx in block.transactions:
            self.inclusion_height[tx.tx_id] = block.height
        self.mempool.remove_committed(list(block.transactions))
        if self.app is not None:
            self.app.finalize_block(block)
        self._advance_height()

    def _advance_height(self) -> None:
        self._last_commit_time = self.sim.now
        self.height += 1
        self.state = self._fresh_state(self.height)
        self._round_proposals = {key: value for key, value in self._round_proposals.items()
                                 if key[0] >= self.height}
        self._round_timer.start(self.config.block_interval * _ROUND_TIMEOUT_FACTOR)
        self._schedule_proposal()
        # Replay any consensus traffic that arrived early for this height.
        for message in self._future.pop(self.height, []):
            super().deliver(message)

    def _advance_round(self) -> None:
        """Move to the next round after a failed one (nil precommit quorum)."""
        self.state.round += 1
        self.state.proposal = None
        self.state.prevoted = False
        self.state.precommitted = False
        self._round_timer.start(self.config.block_interval * _ROUND_TIMEOUT_FACTOR)
        self._schedule_proposal()
        # A proposal or votes for the new round may already have been recorded.
        self._maybe_progress()

    def _on_round_timeout(self) -> None:
        """Round liveness: the timeout escalates one consensus step each time.

        Mirrors Tendermint's ``timeout_propose`` → ``timeout_prevote`` →
        ``timeout_precommit`` ladder.  The prevote/precommit steps matter on
        wide-area topologies: regional jitter can race the proposal against
        the round timers so the prevotes split between the block and nil with
        neither reaching a 2f+1 quorum — without the escalation every
        validator has already voted and the round would deadlock forever.
        """
        if self.crashed or self.state.committed:
            return
        state = self.state
        if state.proposal is None and not state.prevoted:
            # timeout_propose: no proposal seen — prevote nil.
            state.prevoted = True
            self._cast_vote(VoteType.PREVOTE, NIL_BLOCK)
        elif state.prevoted and not state.precommitted:
            # timeout_prevote: we prevoted long ago and no prevote quorum
            # formed for any single value — precommit nil so the round can
            # end (always safe: this validator precommits at most once).
            state.precommitted = True
            self._cast_vote(VoteType.PRECOMMIT, NIL_BLOCK)
        elif state.precommitted:
            if self._round_is_dead():
                # timeout_precommit: no block can reach a precommit quorum in
                # this round any more — move on (_advance_round re-arms).
                self._advance_round()
                return
            # Stuck: we have precommitted and waited a full timeout, yet the
            # round neither committed nor provably died — a lossy link
            # swallowed votes or the proposal, or a straggler's votes are
            # missing for good.  Re-gossip our round state (idempotent at
            # every receiver) and ask peers for block-sync, so a lost
            # message can delay a height but never wedge it forever.
            # Unreachable in fault-free runs: with every message delivered,
            # a round always commits or goes provably dead before a second
            # timeout, so artifacts stay byte-identical.
            self._regossip_round()
            self._request_catch_up()
        self._maybe_progress()
        self._round_timer.start(self.config.block_interval * _ROUND_TIMEOUT_FACTOR)

    # -- peer block-sync (lossy-link liveness) -------------------------------------

    def _request_catch_up(self) -> None:
        """Ask one peer for block-sync (rate-limited to one per timeout).

        Fired when consensus traffic arrives ≥ :data:`_CATCHUP_HEIGHT_GAP`
        heights ahead (we demonstrably missed commits) or when a round is
        stuck past its timeout.  The peer answers with the committed blocks
        we lack; a peer at our own height re-sends its round state instead.
        Requests rotate over the validator set — one peer per attempt, like
        :meth:`CometBFTNetwork.recover_node`'s single-peer sync — so a
        straggler costs one chain transfer, not ``n - 1`` redundant ones; a
        crashed or equally-behind peer is simply skipped next attempt.
        """
        if not self._peer_validators:
            return
        now = self.sim.now
        window = self.config.block_interval * _ROUND_TIMEOUT_FACTOR
        if now - self._last_catchup_request < window:
            return
        self._last_catchup_request = now
        peer = self._peer_validators[
            self._catchup_peer_index % len(self._peer_validators)]
        self._catchup_peer_index += 1
        self.send(peer, "catchup_request", self.height, size_bytes=_VOTE_SIZE)

    def _on_catchup_request(self, message: Message) -> None:
        peer_height: int = message.payload
        blocks = tuple(self.committed_blocks[peer_height - 1:])
        if blocks:
            size = sum(tx.size_bytes for block in blocks
                       for tx in block.transactions)
            self.send(message.sender, "catchup_response", blocks,
                      size_bytes=size)
            return
        if peer_height == self.height:
            # Same height: the peer is missing round traffic, not blocks —
            # re-send our proposal and votes for the current round to it.
            self._regossip_round(to=message.sender)

    def _on_catchup_response(self, message: Message) -> None:
        blocks = [block for block in message.payload
                  if block.height >= self.height]
        if blocks:
            self.catch_up(blocks)

    def _regossip_round(self, to: str | None = None) -> None:
        """Re-send this node's proposal/votes for the current round.

        Receivers record votes into sets and proposals into a keyed map, so
        re-delivery is idempotent; ``to`` narrows the fan-out to one peer
        (catch-up replies), the default re-broadcasts to every validator.
        """
        state = self.state
        proposal = state.proposal
        if proposal is not None:
            if to is None:
                self._broadcast_validators("proposal", proposal,
                                           size_bytes=proposal.size_bytes)
            else:
                self.send(to, "proposal", proposal,
                          size_bytes=proposal.size_bytes)
        for (vote_round, vote_type, block_id), voters in state.votes.items():
            if vote_round != state.round or self.name not in voters:
                continue
            vote = Vote(height=self.height, round=vote_round, voter=self.name,
                        vote_type=vote_type, block_id=block_id)
            if to is None:
                self._broadcast_validators(vote_type.value, vote,
                                           size_bytes=_VOTE_SIZE)
            else:
                self.send(to, vote_type.value, vote, size_bytes=_VOTE_SIZE)

    def _round_is_dead(self) -> bool:
        """True when the current round provably cannot commit any block.

        Every validator precommits at most once per round, so once the
        precommits we have heard plus every still-unheard validator cannot
        push any block over the quorum, the round is decided-dead and
        advancing is safe — unlike advancing on a merely *mixed* quorum,
        which could race a block quorum still in flight and let a second
        block commit at the same height elsewhere (a fork).
        """
        state = self.state
        quorum = self.validators.quorum_at(self.height)
        heard = state.round_voters(state.round, VoteType.PRECOMMIT)
        if heard < quorum:
            return False
        unheard = len(self.validators.names_at(self.height)) - heard
        for (vote_round, kind, block_id), voters in state.votes.items():
            if (vote_round == state.round and kind == VoteType.PRECOMMIT
                    and block_id != NIL_BLOCK
                    and len(voters) + unheard >= quorum):
                return False
        return True


class CometBFTNetwork:
    """Builds and manages the full validator deployment."""

    def __init__(self, sim: Simulator, network: Network, n_validators: int,
                 config: LedgerConfig | None = None,
                 name_prefix: str = "cometbft") -> None:
        if n_validators < 1:
            raise ConsensusError("need at least one validator")
        self.sim = sim
        self.network = network
        self.config = config if config is not None else LedgerConfig()
        self.name_prefix = name_prefix
        names = [f"{name_prefix}-{i}" for i in range(n_validators)]
        self.validators = ValidatorSet(names)
        self.nodes: dict[str, CometBFTNode] = {}
        self._next_index = n_validators
        for name in names:
            node = CometBFTNode(name, sim, self.validators, self.config)
            network.register(node)
            self.nodes[name] = node

    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def node_list(self) -> list[CometBFTNode]:
        return [self.nodes[name] for name in self.validators.names
                if name in self.nodes]

    # -- dynamic membership -----------------------------------------------------

    def add_validator(self, name: str | None = None) -> CometBFTNode:
        """Admit a new validator at the next block boundary (+2 delay).

        The node is built, registered on the network, block-synced from the
        best live peer (CometBFT's blocksync as an instantaneous transfer),
        and starts following consensus immediately — but its votes only count
        from its activation height on.
        """
        if name is None:
            name = f"{self.name_prefix}-{self._next_index}"
        self._next_index += 1
        effective = max(1, self.min_committed_height() + 2)
        self.validators.add_validator(name, effective)
        node = CometBFTNode(name, self.sim, self.validators, self.config)
        self.network.register(node)
        self.nodes[name] = node
        best: CometBFTNode | None = None
        for peer in self.node_list():
            if peer is node or peer.crashed:
                continue
            if best is None or peer.height > best.height:
                best = peer
        if best is not None and best.committed_blocks:
            node.catch_up(list(best.committed_blocks))
        else:
            node.start()
        return node

    def remove_validator(self, name: str) -> int:
        """Schedule ``name``'s departure from the set (two-block delay).

        The node keeps validating until the change activates, then follows
        the chain passively; :meth:`retire_node` tears it down for good.
        Returns the activation height.
        """
        if name not in self.nodes:
            raise ConsensusError(f"unknown validator {name!r}")
        effective = max(1, self.min_committed_height() + 2)
        self.validators.remove_validator(name, effective)
        self.nodes[name].inactive_from_height = effective
        return effective

    def retire_node(self, name: str) -> None:
        """Tear a removed (or never-active) validator down for good."""
        try:
            node = self.nodes.pop(name)
        except KeyError:
            raise ConsensusError(f"unknown validator {name!r}") from None
        node._round_timer.cancel()
        node._propose_timer.cancel()
        self.network.unregister(name)

    def crash_node(self, name: str) -> None:
        """Crash-fault one validator (used by the fault injector)."""
        try:
            self.nodes[name].crash()
        except KeyError:
            raise ConsensusError(f"unknown validator {name!r}") from None

    def recover_node(self, name: str) -> None:
        """Recover a crashed validator, block-syncing from the best live peer.

        The recovering node adopts the longest chain held by any live
        validator (CometBFT's blocksync, collapsed to an instantaneous state
        transfer) before rejoining consensus; with no live peer it resumes
        from its own last committed height.
        """
        try:
            node = self.nodes[name]
        except KeyError:
            raise ConsensusError(f"unknown validator {name!r}") from None
        if not node.crashed:
            return
        best: CometBFTNode | None = None
        for peer in self.node_list():
            if peer is node or peer.crashed:
                continue
            if best is None or peer.height > best.height:
                best = peer
        node.recover()
        if best is not None:
            node.catch_up([block for block in best.committed_blocks
                           if block.height >= node.height])

    def min_committed_height(self) -> int:
        """Highest block height committed by every live current-set member.

        Removed-but-not-retired validators follow the chain passively (their
        peers no longer gossip to them), so they are excluded — a stalled
        leaver must not freeze the cluster's height.
        """
        live = [node for name, node in self.nodes.items()
                if not node.crashed and name in self.validators]
        if not live:
            return 0
        return min(len(n.committed_blocks) for n in live)
