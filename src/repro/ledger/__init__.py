"""Block-based ledger substrate.

The Setchain algorithms only require the abstract block-based ledger of paper
§2: ``append(tx)`` plus a ``new_block(B)`` notification satisfying

* Property 9  (Ledger-Add-Eventual-Notify),
* Property 10 (Ledger-Consistent-Notification),
* Property 11 (Notification-Implies-Append).

Two implementations are provided:

* :class:`~repro.ledger.ideal.IdealLedger` — a centralized sequencer with the
  same block-interval / block-size behaviour but no consensus messages.  Used
  by unit tests and fast parameter sweeps.
* :mod:`repro.ledger.cometbft` — a Tendermint-style BFT replication engine
  (mempool + gossip, proposer rotation, prevote/precommit quorums) standing in
  for CometBFT v0.38.
"""

from .types import Transaction, Block, new_transaction
from .abci import Application, LedgerInterface
from .mempool import Mempool
from .ideal import IdealLedger, IdealLedgerHandle
from .cometbft import CometBFTNode, CometBFTNetwork

__all__ = [
    "Transaction",
    "Block",
    "new_transaction",
    "Application",
    "LedgerInterface",
    "Mempool",
    "IdealLedger",
    "IdealLedgerHandle",
    "CometBFTNode",
    "CometBFTNetwork",
]
