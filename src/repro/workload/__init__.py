"""Workload substrate: Setchain elements and the clients that inject them.

The paper feeds real Arbitrum transactions (mean 438 bytes, σ 753.5) into the
Setchain at a configurable aggregate ``sending_rate``, split evenly across one
client per server for 50 seconds.  This package provides the synthetic
equivalent: an element generator matching those size statistics, client
processes that add elements to their local server at the per-client rate, and
trace record/replay helpers so a workload can be frozen and reused.
"""

from .elements import Element, make_element, element_signing_payload
from .generator import ArbitrumLikeGenerator, ElementSizeStats
from .clients import InjectionClient, ClientPool
from .traces import WorkloadTrace, record_trace, replay_trace

__all__ = [
    "Element",
    "make_element",
    "element_signing_payload",
    "ArbitrumLikeGenerator",
    "ElementSizeStats",
    "InjectionClient",
    "ClientPool",
    "WorkloadTrace",
    "record_trace",
    "replay_trace",
]
