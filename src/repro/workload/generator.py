"""Synthetic Arbitrum-like element generation.

The only element attribute the Setchain algorithms observe is the size in
bytes, so the generator's job is to match the paper's published statistics:
mean ≈ 438 bytes, standard deviation ≈ 753.5 bytes.  A log-normal distribution
(heavy right tail, strictly positive) fits that mean/σ pair well and matches
the qualitative shape of on-chain transaction sizes; sizes are clamped to a
sane minimum so no element is smaller than a bare transfer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim.rng import DeterministicRNG
from .elements import Element, make_element, make_elements

#: Smallest element the generator will emit (a minimal signed transfer).
MIN_ELEMENT_SIZE = 64


@dataclass(frozen=True)
class ElementSizeStats:
    """Target mean/σ of element sizes plus the derived log-normal parameters."""

    mean: float
    std: float

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.std < 0:
            raise ConfigurationError("element size statistics must be positive")

    @property
    def lognormal_mu(self) -> float:
        """μ of the underlying normal such that the log-normal has the target mean."""
        variance = math.log(1.0 + (self.std / self.mean) ** 2)
        return math.log(self.mean) - variance / 2.0

    @property
    def lognormal_sigma(self) -> float:
        """σ of the underlying normal matching the target coefficient of variation."""
        return math.sqrt(math.log(1.0 + (self.std / self.mean) ** 2))


class ArbitrumLikeGenerator:
    """Generate elements whose sizes follow the paper's Arbitrum statistics."""

    def __init__(self, rng: DeterministicRNG,
                 stats: ElementSizeStats | None = None) -> None:
        self.rng = rng
        self.stats = stats if stats is not None else ElementSizeStats(438.0, 753.5)
        #: Elements generated so far.
        self.generated = 0
        self._size_total = 0

    def next_size(self) -> int:
        """Draw one element size in bytes."""
        if self.stats.std == 0:
            return max(MIN_ELEMENT_SIZE, int(round(self.stats.mean)))
        size = self.rng.lognormvariate(self.stats.lognormal_mu, self.stats.lognormal_sigma)
        return max(MIN_ELEMENT_SIZE, int(round(size)))

    def next_sizes(self, count: int) -> list[int]:
        """Draw ``count`` element sizes — the same stream of draws as calling
        :meth:`next_size` ``count`` times, with the log-normal parameters
        (properties recomputing two logs per access) resolved once."""
        if count <= 0:
            return []
        if self.stats.std == 0:
            return [max(MIN_ELEMENT_SIZE, int(round(self.stats.mean)))] * count
        draw = self.rng.lognormvariate
        mu = self.stats.lognormal_mu
        sigma = self.stats.lognormal_sigma
        return [max(MIN_ELEMENT_SIZE, int(round(draw(mu, sigma))))
                for _ in range(count)]

    def next_element(self, client: str, now: float = 0.0) -> Element:
        """Generate one valid, signed-by-construction element for ``client``."""
        size = self.next_size()
        self.generated += 1
        self._size_total += size
        return make_element(client=client, size_bytes=size, created_at=now)

    def batch(self, client: str, count: int, now: float = 0.0) -> list[Element]:
        """Generate ``count`` elements at once (one size pass, one build pass)."""
        sizes = self.next_sizes(count)
        self.generated += count
        self._size_total += sum(sizes)
        return make_elements(client, sizes, created_at=now)

    @property
    def observed_mean_size(self) -> float:
        """Empirical mean size of everything generated so far (0 if nothing yet)."""
        if self.generated == 0:
            return 0.0
        return self._size_total / self.generated
