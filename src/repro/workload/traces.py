"""Workload traces: freeze a generated workload and replay it exactly.

The paper replays a fixed Arbitrum trace across experiments so algorithm
comparisons see identical inputs.  :func:`record_trace` captures the
``(time, client, size)`` schedule a generator/rate pair would produce, and
:func:`replay_trace` re-injects it against any add target.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..errors import ConfigurationError
from ..sim.rng import DeterministicRNG
from .elements import Element, make_element
from .generator import ArbitrumLikeGenerator, ElementSizeStats


@dataclass(frozen=True, slots=True)
class TraceEntry:
    """One scheduled element: when it is created, by whom, and how large it is."""

    time: float
    client: str
    size_bytes: int


@dataclass(frozen=True)
class WorkloadTrace:
    """An immutable sequence of :class:`TraceEntry`, ordered by time."""

    entries: tuple[TraceEntry, ...]

    def __post_init__(self) -> None:
        times = [entry.time for entry in self.entries]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ConfigurationError("trace entries must be ordered by time")

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.entries)

    @property
    def duration(self) -> float:
        return self.entries[-1].time if self.entries else 0.0

    @property
    def total_bytes(self) -> int:
        return sum(entry.size_bytes for entry in self.entries)

    def to_json(self, path: str | Path) -> None:
        """Serialise the trace to a JSON file."""
        payload = [[e.time, e.client, e.size_bytes] for e in self.entries]
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: str | Path) -> "WorkloadTrace":
        """Load a trace previously written by :meth:`to_json`."""
        payload = json.loads(Path(path).read_text())
        entries = tuple(TraceEntry(time=float(t), client=str(c), size_bytes=int(s))
                        for t, c, s in payload)
        return cls(entries=entries)


def record_trace(rate: float, duration: float, clients: Iterable[str],
                 seed: int = 0, mean: float = 438.0, std: float = 753.5,
                 tick: float = 0.1) -> WorkloadTrace:
    """Produce the deterministic trace a :class:`ClientPool` run would generate."""
    client_names = list(clients)
    if not client_names or rate <= 0 or duration <= 0 or tick <= 0:
        raise ConfigurationError("invalid trace parameters")
    per_client = rate / len(client_names)
    stats = ElementSizeStats(mean, std)
    entries: list[TraceEntry] = []
    for index, client in enumerate(client_names):
        generator = ArbitrumLikeGenerator(DeterministicRNG(seed).derive("trace", index), stats)
        carry = 0.0
        t = tick
        while t <= duration + 1e-9:
            due = per_client * tick + carry
            count = int(due)
            carry = due - count
            for _ in range(count):
                entries.append(TraceEntry(time=round(t, 9), client=client,
                                          size_bytes=generator.next_size()))
            t += tick
    entries.sort(key=lambda e: (e.time, e.client))
    return WorkloadTrace(entries=tuple(entries))


def replay_trace(trace: WorkloadTrace, sim, targets: dict[str, object],
                 on_element=None) -> list[Element]:  # type: ignore[no-untyped-def]
    """Schedule every trace entry against its client's target server.

    ``targets`` maps client name → object with an ``add(element)`` method.
    Returns the list of elements that will be injected (in schedule order) so
    callers can track them.

    Consecutive entries for the same client at the same instant — the common
    shape of a recorded high-rate tick — are scheduled as one storm event and
    injected through the target's ``add_many`` when it has one, so a replayed
    million-element trace does not pay one simulator event per element.
    Element ids, creation timestamps, observer calls, and add order are those
    of per-entry scheduling.
    """
    injected: list[Element] = []
    storm_key = ("trace-replay", id(injected))

    def inject_run(entries: list[TraceEntry]) -> None:
        # A storm run may span several (client, time) groups; they arrive in
        # schedule order, so regrouping here preserves per-entry order.
        start = 0
        total = len(entries)
        while start < total:
            client = entries[start].client
            stop = start + 1
            while stop < total and entries[stop].client == client:
                stop += 1
            target = targets.get(client)
            if target is None:
                raise ConfigurationError(f"no target registered for client {client!r}")
            elements = [make_element(client=client, size_bytes=entry.size_bytes,
                                     created_at=sim.now)
                        for entry in entries[start:stop]]
            injected.extend(elements)
            if on_element is not None:
                for element in elements:
                    on_element(element)
            add_many = getattr(target, "add_many", None)
            if add_many is not None:
                add_many(elements)
            else:
                for element in elements:
                    target.add(element)  # type: ignore[attr-defined]
            start = stop

    for entry in trace:
        sim.call_at_storm(entry.time, inject_run, entry, storm_key)
    return injected
