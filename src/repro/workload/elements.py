"""Setchain elements.

An element is the client-created unit stored by the Setchain (paper §2): it is
signed by its creating client, can be validated by servers for syntactic and
semantic correctness, and — by assumption — cannot be forged by a server.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import InvalidElementError

_element_counter = itertools.count()


def element_signing_payload(element_id: int, client: str, size_bytes: int,
                            body_digest: str) -> str:
    """Canonical string a client signs when creating an element."""
    return f"element|{element_id}|{client}|{size_bytes}|{body_digest}"


@dataclass(frozen=True, slots=True)
class Element:
    """A client-created Setchain element.

    Attributes
    ----------
    element_id:
        Unique identifier (stands in for the transaction hash of the Arbitrum
        trace element).
    client:
        Identifier of the creating client.
    size_bytes:
        Modelled wire size of the element (dominates all throughput results).
    body_digest:
        Digest of the element body; the simulation does not carry the raw
        payload bytes around, only their digest and size.
    signature:
        Client signature over :func:`element_signing_payload`.  Empty for
        deliberately invalid elements injected by fault tests.
    created_at:
        Simulated creation time (latency stage 0).
    valid:
        Syntactic/semantic validity flag checked by ``valid_element``.
        Byzantine clients and servers may circulate elements with
        ``valid=False``; correct servers discard them.
    """

    element_id: int
    client: str
    size_bytes: int
    body_digest: str
    signature: bytes = b""
    created_at: float = 0.0
    valid: bool = True
    #: Cached canonical encoding — every batch/epoch hash re-reads it, so it
    #: is computed once at construction (the fields are frozen).
    _canonical: bytes = field(init=False, repr=False, compare=False, default=b"")
    #: Cached ``hash()`` — elements live in epoch/history sets rebuilt on hot
    #: paths, and the fields never change.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise InvalidElementError("element size must be positive")
        object.__setattr__(self, "_canonical",
                           element_signing_payload(self.element_id, self.client,
                                                   self.size_bytes,
                                                   self.body_digest).encode())
        # Same tuple the dataclass-generated __hash__ would hash (the compare
        # fields, in declaration order), so set iteration orders are unchanged.
        object.__setattr__(
            self, "_hash",
            hash((self.element_id, self.client, self.size_bytes,
                  self.body_digest, self.signature, self.created_at,
                  self.valid)))

    def __hash__(self) -> int:
        return self._hash

    def canonical_bytes(self) -> bytes:
        """Stable encoding used for batch/epoch hashing (cached)."""
        return self._canonical

    @property
    def is_element(self) -> bool:
        """Type tag used when unpacking mixed batches (elements + epoch-proofs)."""
        return True


def make_element(client: str, size_bytes: int, body_digest: str = "",
                 created_at: float = 0.0, valid: bool = True,
                 signature: bytes = b"") -> Element:
    """Create a fresh element with a globally unique id."""
    element_id = next(_element_counter)
    return Element(element_id=element_id, client=client, size_bytes=size_bytes,
                   body_digest=body_digest or f"digest-{element_id}",
                   signature=signature, created_at=created_at, valid=valid)


def make_elements(client: str, sizes: list[int],
                  created_at: float = 0.0) -> list[Element]:
    """Create one valid element per size — ids identical to ``make_element``
    called once per size, with the constructor lookups hoisted."""
    counter = _element_counter
    make = Element
    return [make(element_id=(eid := next(counter)), client=client,
                 size_bytes=size, body_digest=f"digest-{eid}",
                 created_at=created_at)
            for size in sizes]
